//! # stats-workbench
//!
//! A production-quality Rust reproduction of *"Workload Characterization of
//! Nondeterministic Programs Parallelized by STATS"* (Deiana & Campanoni,
//! ISPASS 2019).
//!
//! The workbench implements the STATS execution model — speculative
//! parallelization of *state dependences* in nondeterministic programs — and
//! the full measurement apparatus the paper uses to characterize it:
//!
//! * [`core`] — the STATS runtime: chunk planning, alternative producers,
//!   original-state replication, speculative commit/abort.
//! * [`platform`] — a deterministic discrete-event multicore simulator
//!   standing in for the paper's 28-core dual-socket Haswell testbed.
//! * [`trace`] — span tracing and instruction accounting (the paper's
//!   timestamp methodology from §V-B).
//! * [`uarch`] — cache hierarchy and branch predictor simulators (Table II).
//! * [`workloads`] — six nondeterministic benchmark analogs.
//! * [`autotuner`] — OpenTuner-style design-space exploration.
//! * [`mod@bench`] — experiment harnesses regenerating every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use stats_workbench::core::{Config, StateDependence, UpdateCost};
//! use stats_workbench::core::runtime::sequential::run_sequential;
//! use stats_workbench::core::rng::StatsRng;
//!
//! /// A toy nondeterministic workload: a noisy moving average.
//! struct NoisyAverage;
//!
//! impl StateDependence for NoisyAverage {
//!     type State = f64;
//!     type Input = f64;
//!     type Output = f64;
//!
//!     fn fresh_state(&self) -> f64 { 0.0 }
//!
//!     fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng)
//!         -> (f64, UpdateCost)
//!     {
//!         *state = 0.5 * *state + 0.5 * (*input + rng.noise(0.01));
//!         (*state, UpdateCost::with_work(100))
//!     }
//!
//!     fn states_match(&self, a: &f64, b: &f64) -> bool { (a - b).abs() < 0.1 }
//!
//!     fn state_bytes(&self) -> usize { 8 }
//! }
//!
//! let inputs: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
//! let run = run_sequential(&NoisyAverage, &inputs, 42);
//! assert_eq!(run.outputs.len(), 64);
//! ```

pub mod cli;

pub use stats_autotuner as autotuner;
pub use stats_bench as bench;
pub use stats_core as core;
pub use stats_platform as platform;
pub use stats_telemetry as telemetry;
pub use stats_trace as trace;
pub use stats_uarch as uarch;
pub use stats_workloads as workloads;
