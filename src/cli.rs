//! Command-line interface of the `stats` binary.
//!
//! Subcommands:
//!
//! * `run <benchmark>` — execute one benchmark under its tuned (or
//!   overridden) configuration and print a run summary.
//! * `characterize <benchmark>` — the §V-B loss attribution.
//! * `tune <benchmark>` — the Fig. 3 autotuning loop.
//! * `figures [ids…]` — regenerate tables/figures (`all` by default).
//! * `export <benchmark> <path>` — write a Chrome-trace JSON of a run.
//!
//! Argument parsing is hand-rolled (the workbench's dependency policy
//! keeps the offline crate set minimal) and unit-tested.

use stats_bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_core::runtime::simulated::SimulatedRuntime;
use stats_workloads::{dispatch, Workload, WorkloadVisitor, EXTENDED_BENCHMARK_NAMES};
use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run <benchmark>`
    Run {
        /// Benchmark name.
        benchmark: String,
        /// Parsed common options.
        opts: Options,
    },
    /// `characterize <benchmark>`
    Characterize {
        /// Benchmark name.
        benchmark: String,
        /// Parsed common options.
        opts: Options,
    },
    /// `tune <benchmark>`
    Tune {
        /// Benchmark name.
        benchmark: String,
        /// Evaluation budget.
        budget: usize,
        /// Parsed common options.
        opts: Options,
    },
    /// `figures [ids…]`
    Figures {
        /// Figure/table identifiers (e.g. `fig09`, `table1`); empty = all.
        ids: Vec<String>,
        /// Parsed common options.
        opts: Options,
    },
    /// `export <benchmark> <path>`
    Export {
        /// Benchmark name.
        benchmark: String,
        /// Output path for the Chrome-trace JSON.
        path: String,
        /// Parsed common options.
        opts: Options,
    },
    /// `help`
    Help,
}

/// Options shared by the subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Input scale in `(0, 1]`.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Chunk-count override.
    pub chunks: Option<usize>,
    /// Lookback override.
    pub lookback: Option<usize>,
    /// Extra-original-states override.
    pub extra_states: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::NATIVE,
            seed: FIGURE_SEED,
            chunks: None,
            lookback: None,
            extra_states: None,
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
stats — the STATS workload-characterization workbench

USAGE:
  stats run <benchmark> [options]          execute one benchmark
  stats characterize <benchmark> [options] attribute its speedup losses
  stats tune <benchmark> [--budget N] [options]
  stats figures [fig09 fig10 … ablations scaling | all] [options]
  stats export <benchmark> <out.json> [options]
  stats help

BENCHMARKS:
  swaptions streamcluster streamclassifier bodytrack facetrack
  facedet-and-track fluidanimate (the excluded negative control)

OPTIONS:
  --scale F        input scale in (0,1]   (default 1.0)
  --seed N         master seed            (default: the figure seed)
  --chunks N       override the tuned chunk count
  --lookback N     override the tuned lookback k
  --extra-states N override the tuned extra original states m
  --budget N       tuning evaluations     (default 80; tune only)
";

fn parse_options(args: &[String]) -> Result<(Options, Vec<String>, usize), ParseError> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut budget = 80usize;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut take_value = |name: &str| -> Result<String, ParseError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--scale" => {
                let v: f64 = take_value("--scale")?
                    .parse()
                    .map_err(|_| ParseError("--scale expects a number".into()))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(ParseError("--scale must be in (0, 1]".into()));
                }
                opts.scale = Scale(v);
            }
            "--seed" => {
                opts.seed = take_value("--seed")?
                    .parse()
                    .map_err(|_| ParseError("--seed expects an integer".into()))?;
            }
            "--chunks" => {
                opts.chunks = Some(
                    take_value("--chunks")?
                        .parse()
                        .map_err(|_| ParseError("--chunks expects an integer".into()))?,
                );
            }
            "--lookback" => {
                opts.lookback = Some(
                    take_value("--lookback")?
                        .parse()
                        .map_err(|_| ParseError("--lookback expects an integer".into()))?,
                );
            }
            "--extra-states" => {
                opts.extra_states = Some(
                    take_value("--extra-states")?
                        .parse()
                        .map_err(|_| ParseError("--extra-states expects an integer".into()))?,
                );
            }
            "--budget" => {
                budget = take_value("--budget")?
                    .parse()
                    .map_err(|_| ParseError("--budget expects an integer".into()))?;
            }
            other if other.starts_with("--") => {
                return Err(ParseError(format!("unknown option {other}")));
            }
            _ => positional.push(arg.clone()),
        }
        i += 1;
    }
    Ok((opts, positional, budget))
}

fn expect_benchmark(positional: &[String]) -> Result<String, ParseError> {
    let name = positional
        .first()
        .ok_or_else(|| ParseError("missing benchmark name".into()))?;
    if !EXTENDED_BENCHMARK_NAMES.contains(&name.as_str()) {
        return Err(ParseError(format!(
            "unknown benchmark {name:?}; choose one of {EXTENDED_BENCHMARK_NAMES:?}"
        )));
    }
    Ok(name.clone())
}

/// Parse a full argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let (opts, positional, budget) = parse_options(rest)?;
    match sub.as_str() {
        "run" => Ok(Command::Run {
            benchmark: expect_benchmark(&positional)?,
            opts,
        }),
        "characterize" => Ok(Command::Characterize {
            benchmark: expect_benchmark(&positional)?,
            opts,
        }),
        "tune" => Ok(Command::Tune {
            benchmark: expect_benchmark(&positional)?,
            budget,
            opts,
        }),
        "figures" => Ok(Command::Figures {
            ids: positional,
            opts,
        }),
        "export" => {
            let benchmark = expect_benchmark(&positional)?;
            let path = positional
                .get(1)
                .cloned()
                .ok_or_else(|| ParseError("export needs an output path".into()))?;
            Ok(Command::Export {
                benchmark,
                path,
                opts,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown subcommand {other:?}"))),
    }
}

fn config_for<W: Workload>(w: &W, opts: &Options) -> stats_core::Config {
    let mut cfg = tuned_config(w, 28, opts.scale);
    if let Some(c) = opts.chunks {
        cfg.chunks = c;
    }
    if let Some(k) = opts.lookback {
        cfg.lookback = k;
    }
    if let Some(m) = opts.extra_states {
        cfg.extra_states = m;
    }
    stats_bench::pipeline::clamp_config(cfg, opts.scale.inputs_for(w))
}

struct RunCmd {
    opts: Options,
}

impl WorkloadVisitor for RunCmd {
    type Output = String;
    fn visit<W: Workload>(self, w: &W) -> String {
        let cfg = config_for(w, &self.opts);
        let n = self.opts.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, self.opts.seed);
        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                self.opts.seed,
            )
            .expect("valid configuration");
        let quality = w.quality(&inputs, &report.outputs);
        format!(
            "benchmark:     {}\n\
             configuration: {}\n\
             inputs:        {} ({}x native)\n\
             speedup:       {:.2}x on 28 cores\n\
             commit:        {} aborts over {} boundaries\n\
             threads:       {} | states: {} x {} B\n\
             extra instructions: {:+.1}%\n\
             output quality: {:.3}\n",
            w.name(),
            cfg,
            n,
            self.opts.scale.0,
            report.speedup(),
            report.aborts(),
            cfg.chunks.saturating_sub(1),
            report.accounting.threads,
            report.accounting.states,
            report.accounting.state_bytes,
            report.extra_instruction_percent(),
            quality,
        )
    }
}

struct ExportCmd {
    opts: Options,
    path: String,
}

impl WorkloadVisitor for ExportCmd {
    type Output = std::io::Result<String>;
    fn visit<W: Workload>(self, w: &W) -> std::io::Result<String> {
        let cfg = config_for(w, &self.opts);
        let n = self.opts.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, self.opts.seed);
        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                self.opts.seed,
            )
            .expect("valid configuration");
        let json = stats_trace::chrome::to_chrome_trace(&report.execution.trace);
        std::fs::write(&self.path, &json)?;
        Ok(format!(
            "wrote {} spans to {} (open in chrome://tracing or Perfetto)\n",
            report.execution.trace.spans().len(),
            self.path
        ))
    }
}

struct TuneCmd {
    opts: Options,
    budget: usize,
}

impl WorkloadVisitor for TuneCmd {
    type Output = String;
    fn visit<W: Workload>(self, w: &W) -> String {
        use stats_autotuner::{Strategy, Tuner};
        let n = self.opts.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, self.opts.seed);
        let rt = SimulatedRuntime::paper_machine();
        let space = stats_core::DesignSpace::for_inputs(n, 28, w.inner_parallelism().is_parallel());
        let tuner = Tuner::new(space, self.budget, self.opts.seed);
        let report = tuner.tune(Strategy::Ensemble, |cfg| {
            rt.run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                self.opts.seed,
            )
            .expect("valid config")
            .execution
            .makespan
            .get() as f64
        });
        let best_run = rt
            .run(
                w.name(),
                w,
                &inputs,
                report.best,
                w.inner_parallelism(),
                self.opts.seed,
            )
            .expect("valid config");
        format!(
            "benchmark: {}\nexplored:  {} configurations\nbest:      {}\nspeedup:   {:.2}x on 28 cores\n",
            w.name(),
            report.configurations_explored(),
            report.best,
            best_run.speedup(),
        )
    }
}

/// Execute a parsed command, returning its textual output.
///
/// # Errors
///
/// I/O errors from `export`; everything else is infallible.
pub fn execute(cmd: Command) -> std::io::Result<String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Run { benchmark, opts } => Ok(dispatch(&benchmark, RunCmd { opts })),
        Command::Characterize { benchmark, opts } => {
            use stats_bench::attribution::attribute;
            use stats_bench::pipeline::Machines;
            struct C {
                opts: Options,
            }
            impl WorkloadVisitor for C {
                type Output = String;
                fn visit<W: Workload>(self, w: &W) -> String {
                    let cfg = config_for(w, &self.opts);
                    let machines = Machines::paper();
                    let b = attribute(w, &machines.cores28, cfg, self.opts.scale, self.opts.seed);
                    let mut out = format!(
                        "benchmark: {}\nachieved:  {:.2}x of {:.0}x ideal ({:.1}% lost)\n\n",
                        b.benchmark,
                        b.achieved,
                        b.ideal,
                        b.total_lost_percent()
                    );
                    let mut shares = b.normalized_percent();
                    shares.sort_by(|a, c| c.1.partial_cmp(&a.1).expect("no NaN"));
                    for (cat, pct) in shares {
                        if pct > 0.05 {
                            out.push_str(&format!("  {:<16} {:>5.1}%\n", cat.name(), pct));
                        }
                    }
                    out
                }
            }
            Ok(dispatch(&benchmark, C { opts }))
        }
        Command::Tune {
            benchmark,
            budget,
            opts,
        } => Ok(dispatch(&benchmark, TuneCmd { opts, budget })),
        Command::Figures { ids, opts } => {
            let scale = opts.scale;
            let all = ids.is_empty() || ids.iter().any(|i| i == "all");
            let want = |id: &str| all || ids.iter().any(|i| i == id);
            let mut out = String::new();
            if want("table1") {
                out.push_str(&stats_bench::table1::render(scale));
            }
            if want("fig09") {
                out.push_str(&stats_bench::fig09::render(scale));
            }
            if want("fig10") {
                out.push_str(&stats_bench::fig10::render(scale));
            }
            if want("fig11") {
                out.push_str(&stats_bench::fig11::render(scale));
            }
            if want("fig12") {
                out.push_str(&stats_bench::fig12::render(scale));
            }
            if want("fig13") {
                out.push_str(&stats_bench::fig13::render(scale));
            }
            if want("fig14") {
                out.push_str(&stats_bench::fig14::render(scale));
            }
            if want("fig15") {
                out.push_str(&stats_bench::fig15::render(scale));
            }
            if want("table2") {
                out.push_str(&stats_bench::table2::render(scale));
                out.push_str(&stats_bench::table2::render_cpi(scale));
            }
            if want("fig16") {
                out.push_str(&stats_bench::fig16::render(scale, 40));
            }
            if !all && ids.iter().any(|i| i == "ablations") {
                out.push_str(&stats_bench::ablations::render(scale));
            }
            if !all && ids.iter().any(|i| i == "scaling") {
                out.push_str(&stats_bench::scaling::render());
            }
            if out.is_empty() {
                out = format!("no known figure ids in {ids:?}\n\n{USAGE}");
            }
            Ok(out)
        }
        Command::Export {
            benchmark,
            path,
            opts,
        } => dispatch(&benchmark, ExportCmd { opts, path }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_run_with_options() {
        let cmd = parse(&args("run bodytrack --scale 0.25 --seed 7 --chunks 8")).unwrap();
        match cmd {
            Command::Run { benchmark, opts } => {
                assert_eq!(benchmark, "bodytrack");
                assert_eq!(opts.scale, Scale(0.25));
                assert_eq!(opts.seed, 7);
                assert_eq!(opts.chunks, Some(8));
                assert_eq!(opts.lookback, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_benchmark_and_option() {
        assert!(parse(&args("run blackscholes")).is_err());
        assert!(parse(&args("run bodytrack --frobnicate 3")).is_err());
        assert!(parse(&args("run")).is_err());
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(parse(&args("run bodytrack --scale 0")).is_err());
        assert!(parse(&args("run bodytrack --scale 1.5")).is_err());
        assert!(parse(&args("run bodytrack --scale abc")).is_err());
    }

    #[test]
    fn empty_and_help_show_usage() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        assert!(execute(Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn parses_tune_budget_and_figures_ids() {
        match parse(&args("tune swaptions --budget 25")).unwrap() {
            Command::Tune { budget, .. } => assert_eq!(budget, 25),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args("figures fig09 table1 --scale 0.1")).unwrap() {
            Command::Figures { ids, opts } => {
                assert_eq!(ids, vec!["fig09", "table1"]);
                assert_eq!(opts.scale, Scale(0.1));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn export_requires_a_path() {
        assert!(parse(&args("export swaptions")).is_err());
        assert!(parse(&args("export swaptions /tmp/x.json")).is_ok());
    }

    #[test]
    fn run_command_executes_end_to_end() {
        let cmd = parse(&args("run swaptions --scale 0.05 --chunks 8")).unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("swaptions"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn figures_command_renders_requested_ids() {
        let cmd = parse(&args("figures table1 --scale 0.05")).unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("Table I"));
        assert!(!out.contains("Fig. 9"));
    }
}
