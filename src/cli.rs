//! Command-line interface of the `stats` binary.
//!
//! Subcommands:
//!
//! * `run <benchmark>` — execute one benchmark under its tuned (or
//!   overridden) configuration and print a run summary (`--json` for a
//!   machine-readable one, `--telemetry <path>` for a JSONL event log).
//! * `characterize <benchmark>` — the §V-B loss attribution.
//! * `tune <benchmark>` — the Fig. 3 autotuning loop.
//! * `metrics <benchmark>` — run once and render the telemetry snapshot
//!   (`--format table|prometheus|folded|json`).
//! * `figures [ids…]` — regenerate tables/figures (`all` by default).
//! * `export <benchmark> <path>` — write a Chrome-trace JSON of a run.
//! * `profile <benchmark>` — causal profile of the native pooled runtime
//!   (`--workers N --seeds K --format table|json|chrome`); `run` and
//!   `tune` accept `--profile` to attribute their native replays inline.
//!
//! Argument parsing is hand-rolled (the workbench's dependency policy
//! keeps the offline crate set minimal) and unit-tested.

use stats_bench::native_attribution::{profile_workload_faulted, render_profile_table};
use stats_bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_core::report::ChunkDecision;
use stats_core::runtime::pool::{default_workers, WorkerPool};
use stats_core::runtime::simulated::SimulatedRuntime;
use stats_core::runtime::threaded::{run_threaded_faulted_on, run_threaded_on};
use stats_core::{FaultPlan, FaultSpec, SnapshotStrategy};
use stats_telemetry::json::JsonObject;
use stats_telemetry::{
    export, Counter, Event, Profiler, TelemetrySink, WallAttribution, WallProfile,
};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, EXTENDED_BENCHMARK_NAMES};
use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run <benchmark>`
    Run {
        /// Benchmark name.
        benchmark: String,
        /// Parsed common options.
        opts: Options,
    },
    /// `characterize <benchmark>`
    Characterize {
        /// Benchmark name.
        benchmark: String,
        /// Parsed common options.
        opts: Options,
    },
    /// `tune <benchmark>`
    Tune {
        /// Benchmark name.
        benchmark: String,
        /// Evaluation budget.
        budget: usize,
        /// Parsed common options.
        opts: Options,
    },
    /// `figures [ids…]`
    Figures {
        /// Figure/table identifiers (e.g. `fig09`, `table1`); empty = all.
        ids: Vec<String>,
        /// Parsed common options.
        opts: Options,
    },
    /// `metrics <benchmark> [--format …]`
    Metrics {
        /// Benchmark name.
        benchmark: String,
        /// Output rendering.
        format: MetricsFormat,
        /// Parsed common options.
        opts: Options,
    },
    /// `export <benchmark> <path>`
    Export {
        /// Benchmark name.
        benchmark: String,
        /// Output path for the Chrome-trace JSON.
        path: String,
        /// Parsed common options.
        opts: Options,
    },
    /// `profile <benchmark> [--workers N] [--seeds K] [--format …]`
    Profile {
        /// Benchmark name.
        benchmark: String,
        /// Output rendering.
        format: ProfileFormat,
        /// Number of seeds profiled (mean ± CI aggregation).
        seeds: usize,
        /// Parsed common options.
        opts: Options,
    },
    /// `help`
    Help,
}

/// How `stats metrics` renders the post-run telemetry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Human-readable counter table (the default).
    #[default]
    Table,
    /// Prometheus text exposition format.
    Prometheus,
    /// Folded stacks for `flamegraph.pl` / `inferno-flamegraph`.
    Folded,
    /// The snapshot as one JSON object.
    Json,
}

impl MetricsFormat {
    fn from_arg(s: &str) -> Result<Self, ParseError> {
        match s {
            "table" => Ok(MetricsFormat::Table),
            "prometheus" => Ok(MetricsFormat::Prometheus),
            "folded" => Ok(MetricsFormat::Folded),
            "json" => Ok(MetricsFormat::Json),
            other => Err(ParseError(format!(
                "--format expects table|prometheus|folded|json, got {other:?}"
            ))),
        }
    }
}

/// How `stats profile` renders the causal profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileFormat {
    /// Human-readable attribution + what-if table (the default).
    #[default]
    Table,
    /// The aggregated profile report as one JSON object.
    Json,
    /// Chrome trace-event JSON of the captured wall-clock spans (real
    /// pool threads, named; open in `chrome://tracing` or Perfetto).
    Chrome,
}

impl ProfileFormat {
    fn from_arg(s: &str) -> Result<Self, ParseError> {
        match s {
            "table" => Ok(ProfileFormat::Table),
            "json" => Ok(ProfileFormat::Json),
            "chrome" => Ok(ProfileFormat::Chrome),
            other => Err(ParseError(format!(
                "--format expects table|json|chrome, got {other:?}"
            ))),
        }
    }
}

/// Options shared by the subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Input scale in `(0, 1]`.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Chunk-count override.
    pub chunks: Option<usize>,
    /// Lookback override.
    pub lookback: Option<usize>,
    /// Extra-original-states override.
    pub extra_states: Option<usize>,
    /// Write a JSONL telemetry event log to this path.
    pub telemetry: Option<String>,
    /// Print a machine-readable JSON summary instead of the text one.
    pub json: bool,
    /// Execute natively on a worker pool of this width (run/metrics
    /// record telemetry from the threaded runtime; tune replays the
    /// winner natively). `None` keeps the simulated-only behavior.
    pub workers: Option<usize>,
    /// Attach the wall-clock profiler to native replays (run/tune with
    /// `--workers`) and append a causal attribution to the summary.
    pub profile: bool,
    /// Snapshot-strategy override (`--snapshot deep|cow`). `None` keeps
    /// the benchmark's tuned strategy; on `tune`, `cow` also adds the
    /// snapshot dimension to the searched design space.
    pub snapshot: Option<SnapshotStrategy>,
    /// Speculation-breadth override (`--breadth k`): run k alternative
    /// candidates per speculative chunk. `None` keeps the tuned breadth
    /// (1); on `tune`, any explicit breadth adds the breadth dimension
    /// to the searched design space.
    pub breadth: Option<usize>,
    /// Split each mispeculation rerun into pool segments so recovery
    /// overlaps with downstream validation (`--overlap-rerun`).
    pub overlap_rerun: bool,
    /// Seeded fault injection into the native run (`--faults COUNT[@SEED]`):
    /// the plan is resolved against the run's configuration, and recovery
    /// must leave decisions/outputs bit-identical.
    pub faults: Option<FaultSpec>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::NATIVE,
            seed: FIGURE_SEED,
            chunks: None,
            lookback: None,
            extra_states: None,
            telemetry: None,
            json: false,
            workers: None,
            profile: false,
            snapshot: None,
            breadth: None,
            overlap_rerun: false,
            faults: None,
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
stats — the STATS workload-characterization workbench

USAGE:
  stats run <benchmark> [options]          execute one benchmark
  stats characterize <benchmark> [options] attribute its speedup losses
  stats tune <benchmark> [--budget N] [options]
  stats metrics <benchmark> [--format F] [options]
  stats figures [fig09 fig10 … ablations scaling | all] [options]
  stats export <benchmark> <out.json> [options]
  stats profile <benchmark> [--workers N] [--seeds K] [--format F] [options]
  stats help

BENCHMARKS:
  swaptions streamcluster streamclassifier bodytrack facetrack
  facedet-and-track fluidanimate (the excluded negative control)

OPTIONS:
  --scale F        input scale in (0,1]   (default 1.0)
  --seed N         master seed            (default: the figure seed)
  --chunks N       override the tuned chunk count
  --lookback N     override the tuned lookback k
  --extra-states N override the tuned extra original states m
  --snapshot S     chunk-boundary state snapshots: deep | cow
                   (run/metrics/profile: override; tune with cow: the
                   searched design space gains the snapshot dimension)
  --breadth K      run K alternative candidates per speculative chunk
                   (run/metrics/profile: override; tune: the searched
                   design space gains the breadth dimension 1|2|K)
  --overlap-rerun  split mispeculation reruns into pool segments so
                   recovery overlaps with downstream validation
  --faults C[@S]   inject C seeded recoverable faults (plan seed S,
                   default 0) into the native run; recovery must leave
                   results bit-identical (run with --workers; profile)
  --budget N       tuning evaluations     (default 80; tune only)
  --telemetry PATH write a JSONL telemetry event log (run/tune)
  --json           machine-readable run summary   (run only)
  --format F       metrics rendering: table | prometheus | folded | json
                   profile rendering: table | json | chrome
  --seeds K        seeds profiled for mean ± CI   (default 3; profile only)
  --profile        attribute the native replay's wall-clock speedup loss
                   (run/tune with --workers; `stats profile` is the
                   multi-seed version under the benchmark's tuned config)
  --workers N      use an N-wide worker pool (one pool per invocation)
                   (run/metrics: native execution, telemetry from the
                   threaded runtime; tune: the design-space search is
                   sharded across the pool, the winner's seed-ensemble
                   replay too, and the winner is replayed natively;
                   folded metrics keep using the simulated trace)
";

/// Everything `parse_options` extracts besides the shared [`Options`]:
/// positionals plus the subcommand-specific flags.
struct ParsedArgs {
    opts: Options,
    positional: Vec<String>,
    budget: usize,
    /// Raw `--format` value; each subcommand accepts a different set, so
    /// conversion happens once the subcommand is known.
    format: Option<String>,
    seeds: usize,
}

fn parse_options(args: &[String]) -> Result<ParsedArgs, ParseError> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut budget = 80usize;
    let mut format = None;
    let mut seeds = 3usize;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut take_value = |name: &str| -> Result<String, ParseError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--scale" => {
                let v: f64 = take_value("--scale")?
                    .parse()
                    .map_err(|_| ParseError("--scale expects a number".into()))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(ParseError("--scale must be in (0, 1]".into()));
                }
                opts.scale = Scale(v);
            }
            "--seed" => {
                opts.seed = take_value("--seed")?
                    .parse()
                    .map_err(|_| ParseError("--seed expects an integer".into()))?;
            }
            "--chunks" => {
                opts.chunks = Some(
                    take_value("--chunks")?
                        .parse()
                        .map_err(|_| ParseError("--chunks expects an integer".into()))?,
                );
            }
            "--lookback" => {
                opts.lookback = Some(
                    take_value("--lookback")?
                        .parse()
                        .map_err(|_| ParseError("--lookback expects an integer".into()))?,
                );
            }
            "--extra-states" => {
                opts.extra_states = Some(
                    take_value("--extra-states")?
                        .parse()
                        .map_err(|_| ParseError("--extra-states expects an integer".into()))?,
                );
            }
            "--budget" => {
                budget = take_value("--budget")?
                    .parse()
                    .map_err(|_| ParseError("--budget expects an integer".into()))?;
            }
            "--telemetry" => {
                opts.telemetry = Some(take_value("--telemetry")?);
            }
            "--workers" => {
                let n: usize = take_value("--workers")?
                    .parse()
                    .map_err(|_| ParseError("--workers expects an integer".into()))?;
                if n == 0 {
                    return Err(ParseError("--workers must be at least 1".into()));
                }
                opts.workers = Some(n);
            }
            "--json" => {
                opts.json = true;
            }
            "--profile" => {
                opts.profile = true;
            }
            "--snapshot" => {
                opts.snapshot =
                    Some(SnapshotStrategy::parse(&take_value("--snapshot")?).map_err(ParseError)?);
            }
            "--breadth" => {
                let k: usize = take_value("--breadth")?
                    .parse()
                    .map_err(|_| ParseError("--breadth expects an integer".into()))?;
                if k == 0 {
                    return Err(ParseError("--breadth must be at least 1".into()));
                }
                opts.breadth = Some(k);
            }
            "--overlap-rerun" => {
                opts.overlap_rerun = true;
            }
            "--faults" => {
                opts.faults = Some(FaultSpec::parse(&take_value("--faults")?).map_err(ParseError)?);
            }
            "--seeds" => {
                seeds = take_value("--seeds")?
                    .parse()
                    .map_err(|_| ParseError("--seeds expects an integer".into()))?;
                if seeds == 0 {
                    return Err(ParseError("--seeds must be at least 1".into()));
                }
            }
            "--format" => {
                format = Some(take_value("--format")?);
            }
            other if other.starts_with("--") => {
                return Err(ParseError(format!("unknown option {other}")));
            }
            _ => positional.push(arg.clone()),
        }
        i += 1;
    }
    Ok(ParsedArgs {
        opts,
        positional,
        budget,
        format,
        seeds,
    })
}

fn expect_benchmark(positional: &[String]) -> Result<String, ParseError> {
    let name = positional
        .first()
        .ok_or_else(|| ParseError("missing benchmark name".into()))?;
    if !EXTENDED_BENCHMARK_NAMES.contains(&name.as_str()) {
        return Err(ParseError(format!(
            "unknown benchmark {name:?}; choose one of {EXTENDED_BENCHMARK_NAMES:?}"
        )));
    }
    Ok(name.clone())
}

/// Parse a full argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let ParsedArgs {
        opts,
        positional,
        budget,
        format,
        seeds,
    } = parse_options(rest)?;
    if opts.profile && opts.workers.is_none() && matches!(sub.as_str(), "run" | "tune") {
        return Err(ParseError(
            "--profile attributes the native replay, so it requires --workers".into(),
        ));
    }
    if opts.faults.is_some() && opts.workers.is_none() && sub == "run" {
        return Err(ParseError(
            "--faults injects into the native pooled runtime, so it requires --workers".into(),
        ));
    }
    if opts.faults.is_some() && !matches!(sub.as_str(), "run" | "profile") {
        return Err(ParseError(
            "--faults applies to run and profile only".into(),
        ));
    }
    match sub.as_str() {
        "run" => Ok(Command::Run {
            benchmark: expect_benchmark(&positional)?,
            opts,
        }),
        "characterize" => Ok(Command::Characterize {
            benchmark: expect_benchmark(&positional)?,
            opts,
        }),
        "tune" => Ok(Command::Tune {
            benchmark: expect_benchmark(&positional)?,
            budget,
            opts,
        }),
        "metrics" => Ok(Command::Metrics {
            benchmark: expect_benchmark(&positional)?,
            format: match format.as_deref() {
                Some(s) => MetricsFormat::from_arg(s)?,
                None => MetricsFormat::default(),
            },
            opts,
        }),
        "profile" => Ok(Command::Profile {
            benchmark: expect_benchmark(&positional)?,
            format: match format.as_deref() {
                Some(s) => ProfileFormat::from_arg(s)?,
                None => ProfileFormat::default(),
            },
            seeds,
            opts,
        }),
        "figures" => Ok(Command::Figures {
            ids: positional,
            opts,
        }),
        "export" => {
            let benchmark = expect_benchmark(&positional)?;
            let path = positional
                .get(1)
                .cloned()
                .ok_or_else(|| ParseError("export needs an output path".into()))?;
            Ok(Command::Export {
                benchmark,
                path,
                opts,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown subcommand {other:?}"))),
    }
}

fn config_for<W: Workload>(w: &W, opts: &Options) -> stats_core::Config {
    let mut cfg = tuned_config(w, 28, opts.scale);
    if let Some(c) = opts.chunks {
        cfg.chunks = c;
    }
    if let Some(k) = opts.lookback {
        cfg.lookback = k;
    }
    if let Some(m) = opts.extra_states {
        cfg.extra_states = m;
    }
    if let Some(s) = opts.snapshot {
        cfg.snapshot = s;
    }
    if let Some(k) = opts.breadth {
        cfg.spec_breadth = k;
    }
    if opts.overlap_rerun {
        cfg.overlap_rerun = true;
    }
    stats_bench::pipeline::clamp_config(cfg, opts.scale.inputs_for(w))
}

/// Build the telemetry sink for a run: one counter shard per chunk
/// (the simulated runtime shards protocol counters by chunk index),
/// with a buffered JSONL writer attached when `--telemetry` was given.
fn sink_for(cfg: &stats_core::Config, telemetry: Option<&str>) -> std::io::Result<TelemetrySink> {
    let sink = TelemetrySink::new(cfg.chunks.max(1));
    Ok(match telemetry {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            sink.with_event_writer(Box::new(std::io::BufWriter::new(file)))
        }
        None => sink,
    })
}

/// Attribute one profiled native run (the `--profile` flag): assemble
/// the captured spans into a wall-clock profile and run the causal
/// attribution. `None` when the sink carries no profiler.
fn attribute_native<O>(
    sink: &TelemetrySink,
    run: &stats_core::runtime::threaded::ThreadedRun<O>,
    breadth: usize,
) -> Option<WallAttribution> {
    let prof = sink.profiler()?;
    let aborted = run
        .decisions
        .iter()
        .map(|d| *d == ChunkDecision::Aborted)
        .collect();
    let elapsed_ns = u64::try_from(run.elapsed.as_nanos()).unwrap_or(u64::MAX);
    Some(WallProfile::assemble_with_breadth(prof, aborted, breadth, elapsed_ns).attribute())
}

/// The one-line attribution summary `--profile` appends to run/tune
/// text output.
fn profile_line(a: &WallAttribution) -> String {
    format!(
        "profile:       projected {:.2}x of {:.2}x ideal | dominant loss {} | 2x workers -> {:.2}x\n",
        a.projected,
        a.ideal,
        a.dominant().name(),
        a.whatifs.double_workers,
    )
}

struct RunCmd<'p> {
    opts: Options,
    pool: Option<&'p WorkerPool>,
}

impl WorkloadVisitor for RunCmd<'_> {
    type Output = std::io::Result<String>;
    fn visit<W: Workload>(self, w: &W) -> std::io::Result<String> {
        let cfg = config_for(w, &self.opts);
        let n = self.opts.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, self.opts.seed);
        let mut sink = sink_for(&cfg, self.opts.telemetry.as_deref())?;
        if self.opts.profile {
            if let Some(pool) = self.pool {
                sink = sink.with_profiler(Profiler::new(pool.workers()));
            }
        }
        sink.event(&Event::RunStarted {
            benchmark: w.name().to_string(),
            runtime: if self.opts.workers.is_some() {
                "threaded"
            } else {
                "simulated"
            },
            inputs: n,
            chunks: cfg.chunks,
            lookback: cfg.lookback,
            extra_states: cfg.extra_states,
            seed: self.opts.seed,
        });
        let rt = SimulatedRuntime::paper_machine();
        // With --workers the live telemetry comes from the pooled threaded
        // runtime; the simulated run still supplies the model metrics
        // (speedup, accounting) and the parity cross-check. --faults
        // resolves its seeded plan here and injects into the native run;
        // the parity check below then doubles as the recovery contract.
        let faults = self.opts.faults.map(|spec| spec.plan(&cfg, inputs.len()));
        let native = self.pool.map(|pool| match &faults {
            Some(plan) => {
                run_threaded_faulted_on(pool, w, &inputs, cfg, self.opts.seed, plan, Some(&sink))
            }
            None => run_threaded_on(pool, w, &inputs, cfg, self.opts.seed, Some(&sink)),
        });
        let report = rt
            .run_observed(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                self.opts.seed,
                if native.is_some() { None } else { Some(&sink) },
            )
            .expect("valid configuration");
        let decisions_match = native
            .as_ref()
            .is_none_or(|t| t.decisions == report.decisions);
        let wall = native
            .as_ref()
            .and_then(|t| attribute_native(&sink, t, cfg.spec_breadth));
        let quality = w.quality(&inputs, &report.outputs);
        let snap = sink.snapshot();
        sink.event(&Event::Snapshot {
            json: snap.to_json(),
        });
        sink.flush();
        if self.opts.json {
            let mut o = JsonObject::new();
            o.str("benchmark", w.name())
                .str(
                    "runtime",
                    if native.is_some() {
                        "threaded"
                    } else {
                        "simulated"
                    },
                )
                .u64("inputs", n as u64)
                .f64("scale", self.opts.scale.0)
                .u64("seed", self.opts.seed)
                .u64("chunks", cfg.chunks as u64)
                .u64("lookback", cfg.lookback as u64)
                .u64("extra_states", cfg.extra_states as u64)
                .bool("combine_inner_tlp", cfg.combine_inner_tlp)
                .str("snapshot", cfg.snapshot.token())
                .u64("spec_breadth", cfg.spec_breadth as u64)
                .bool("overlap_rerun", cfg.overlap_rerun)
                .f64("speedup", report.speedup())
                .u64("aborts", report.aborts() as u64)
                .u64("threads", report.accounting.threads as u64)
                .u64("states", report.accounting.states as u64)
                .u64("state_bytes", report.accounting.state_bytes as u64)
                .f64(
                    "extra_instruction_percent",
                    report.extra_instruction_percent(),
                )
                .f64("quality", quality)
                .raw("telemetry", &snap.to_json());
            if let Some(t) = &native {
                o.u64("workers", t.workers as u64)
                    .f64("native_ms", t.elapsed.as_secs_f64() * 1e3)
                    .bool("decisions_match", decisions_match);
            }
            if let Some(plan) = &faults {
                let mut f = JsonObject::new();
                f.u64("planned", plan.injections().len() as u64)
                    .u64("injected", snap.get(Counter::FaultsInjected))
                    .u64("retries", snap.get(Counter::RetriesScheduled))
                    .u64("workers_lost", snap.get(Counter::WorkersLost));
                o.raw("faults", &f.finish());
            }
            if let Some(a) = &wall {
                o.raw("profile", &a.to_json());
            }
            return Ok(format!("{}\n", o.finish()));
        }
        let mut out = format!(
            "benchmark:     {}\n\
             configuration: {}\n\
             inputs:        {} ({}x native)\n\
             speedup:       {:.2}x on 28 cores\n\
             commit:        {} aborts over {} boundaries\n\
             threads:       {} | states: {} x {} B\n\
             extra instructions: {:+.1}%\n\
             output quality: {:.3}\n",
            w.name(),
            cfg,
            n,
            self.opts.scale.0,
            report.speedup(),
            report.aborts(),
            cfg.chunks.saturating_sub(1),
            report.accounting.threads,
            report.accounting.states,
            report.accounting.state_bytes,
            report.extra_instruction_percent(),
            quality,
        );
        if let Some(t) = &native {
            out.push_str(&format!(
                "native:        {:.1} ms on {} pooled workers (decisions {} simulated)\n",
                t.elapsed.as_secs_f64() * 1e3,
                t.workers,
                if decisions_match {
                    "match"
                } else {
                    "DIVERGE from"
                },
            ));
        }
        if let Some(plan) = &faults {
            out.push_str(&format!(
                "faults:        {} planned | {} injected, {} retries, {} workers lost\n",
                plan.injections().len(),
                snap.get(Counter::FaultsInjected),
                snap.get(Counter::RetriesScheduled),
                snap.get(Counter::WorkersLost),
            ));
        }
        if let Some(a) = &wall {
            out.push_str(&profile_line(a));
        }
        if let Some(path) = &self.opts.telemetry {
            out.push_str(&format!(
                "telemetry:     {} events -> {}\n",
                snap.events_emitted + 1, // + the final snapshot event
                path
            ));
        }
        Ok(out)
    }
}

struct MetricsCmd<'p> {
    opts: Options,
    format: MetricsFormat,
    pool: Option<&'p WorkerPool>,
}

impl WorkloadVisitor for MetricsCmd<'_> {
    type Output = std::io::Result<String>;
    fn visit<W: Workload>(self, w: &W) -> std::io::Result<String> {
        let cfg = config_for(w, &self.opts);
        let n = self.opts.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, self.opts.seed);
        let sink = sink_for(&cfg, self.opts.telemetry.as_deref())?;
        // Snapshot formats can record from the real threaded runtime
        // (--workers); the folded export is a trace rendering, which only
        // the simulated runtime produces, so it always runs simulated.
        let native_snapshot = self.pool.filter(|_| self.format != MetricsFormat::Folded);
        if let Some(pool) = native_snapshot {
            run_threaded_on(pool, w, &inputs, cfg, self.opts.seed, Some(&sink));
            sink.flush();
            let snap = sink.snapshot();
            return Ok(match self.format {
                MetricsFormat::Table => export::table(&snap),
                MetricsFormat::Prometheus => export::prometheus(&snap),
                MetricsFormat::Json => format!("{}\n", snap.to_json()),
                MetricsFormat::Folded => unreachable!("folded runs simulated"),
            });
        }
        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run_observed(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                self.opts.seed,
                Some(&sink),
            )
            .expect("valid configuration");
        sink.flush();
        let snap = sink.snapshot();
        Ok(match self.format {
            MetricsFormat::Table => export::table(&snap),
            MetricsFormat::Prometheus => export::prometheus(&snap),
            MetricsFormat::Folded => export::folded(&report.execution.trace),
            MetricsFormat::Json => format!("{}\n", snap.to_json()),
        })
    }
}

struct ExportCmd {
    opts: Options,
    path: String,
}

impl WorkloadVisitor for ExportCmd {
    type Output = std::io::Result<String>;
    fn visit<W: Workload>(self, w: &W) -> std::io::Result<String> {
        let cfg = config_for(w, &self.opts);
        let n = self.opts.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, self.opts.seed);
        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                self.opts.seed,
            )
            .expect("valid configuration");
        let json = stats_trace::chrome::to_chrome_trace(&report.execution.trace);
        std::fs::write(&self.path, &json)?;
        Ok(format!(
            "wrote {} spans to {} (open in chrome://tracing or Perfetto)\n",
            report.execution.trace.spans().len(),
            self.path
        ))
    }
}

/// Seeds the best configuration is replayed over after tuning, to
/// expose nondeterministic run-to-run speedup variance in the log.
const TUNE_REPLAY_SEEDS: usize = 5;

struct TuneCmd<'p> {
    opts: Options,
    budget: usize,
    pool: Option<&'p WorkerPool>,
}

impl WorkloadVisitor for TuneCmd<'_> {
    type Output = std::io::Result<String>;
    fn visit<W: Workload>(self, w: &W) -> std::io::Result<String> {
        use stats_autotuner::{Strategy, Tuner};
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = self.opts.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, self.opts.seed);
        let rt = SimulatedRuntime::paper_machine();
        let mut space =
            stats_core::DesignSpace::for_inputs(n, 28, w.inner_parallelism().is_parallel());
        if self.opts.snapshot == Some(SnapshotStrategy::CopyOnWrite) {
            space.snapshot_choices =
                vec![SnapshotStrategy::DeepClone, SnapshotStrategy::CopyOnWrite];
        }
        if let Some(k) = self.opts.breadth {
            // An explicit --breadth opts the search into the breadth
            // dimension: the historical narrow space, pairwise, and the
            // requested width (deduplicated and sorted for determinism).
            let mut choices = vec![1, 2, k];
            choices.sort_unstable();
            choices.dedup();
            space.breadth_choices = choices;
        }
        let tuner = Tuner::new(space, self.budget, self.opts.seed);
        // One counter shard per worker evaluating tuning batches.
        let mut sink = TelemetrySink::new(self.pool.map_or(1, WorkerPool::workers));
        if let Some(path) = &self.opts.telemetry {
            let file = std::fs::File::create(path)?;
            sink = sink.with_event_writer(Box::new(std::io::BufWriter::new(file)));
        }
        // The objective runs on pool workers under --workers, so its
        // bookkeeping is atomic; `iteration` stamps arrival order of the
        // quality events, which under a pool may differ from the
        // searcher-visible proposal order (the trajectory itself stays
        // worker-count independent — see DESIGN.md §10).
        let iteration = AtomicUsize::new(0);
        let objective = |cfg: stats_core::Config| {
            let run = rt
                .run(
                    w.name(),
                    w,
                    &inputs,
                    cfg,
                    w.inner_parallelism(),
                    self.opts.seed,
                )
                .expect("valid config");
            sink.event(&Event::TuneEvaluated {
                iteration: iteration.fetch_add(1, Ordering::Relaxed) + 1,
                speedup: run.speedup(),
                quality: w.quality(&inputs, &run.outputs),
            });
            run.execution.makespan.get() as f64
        };
        let report = match self.pool {
            // Shard each proposal batch across the pool: the report is
            // bit-identical to the sequential path for any pool width.
            Some(pool) => tuner.tune_parallel_on(pool, Strategy::Ensemble, objective, Some(&sink)),
            None => tuner.tune_observed(Strategy::Ensemble, objective, Some(&sink)),
        };
        // Replay the winner across several seeds: nondeterministic programs
        // have per-run variance the single tuning seed hides. Replays are
        // independent, so the pool shards them too (slot-indexed results
        // keep the reported ensemble identical at any width).
        let replay = |s: u64| {
            let seed = self.opts.seed.wrapping_add(s);
            let replay_inputs = w.generate_inputs(n, seed);
            rt.run(
                w.name(),
                w,
                &replay_inputs,
                report.best,
                w.inner_parallelism(),
                seed,
            )
            .expect("valid config")
            .speedup()
        };
        let mut speedups = [0.0f64; TUNE_REPLAY_SEEDS];
        match self.pool {
            Some(pool) => pool.scope(|scope| {
                for (s, slot) in speedups.iter_mut().enumerate() {
                    let replay = &replay;
                    scope.spawn(move || *slot = replay(s as u64));
                }
            }),
            None => {
                for (s, slot) in speedups.iter_mut().enumerate() {
                    *slot = replay(s as u64);
                }
            }
        }
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let variance =
            speedups.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / speedups.len() as f64;
        sink.event(&Event::TuneFinished {
            chunks: report.best.chunks,
            lookback: report.best.lookback,
            extra_states: report.best.extra_states,
            combine_inner_tlp: report.best.combine_inner_tlp,
            seeds: TUNE_REPLAY_SEEDS,
            mean_speedup: mean,
            speedup_variance: variance,
        });
        sink.flush();
        let mut out = format!(
            "benchmark: {}\nexplored:  {} configurations\nbest:      {}\nspeedup:   {:.2}x mean over {} seeds (variance {:.4})\n",
            w.name(),
            report.configurations_explored(),
            report.best,
            mean,
            TUNE_REPLAY_SEEDS,
            variance,
        );
        // With --workers, replay the winner on real threads so the tuned
        // configuration's native behavior is visible next to the model's;
        // --profile rides the wall-clock profiler on that replay and
        // appends its causal attribution.
        if let Some(pool) = self.pool {
            let psink = self.opts.profile.then(|| {
                TelemetrySink::new(report.best.chunks.max(1))
                    .with_profiler(Profiler::new(pool.workers()))
            });
            let native = run_threaded_on(
                pool,
                w,
                &inputs,
                report.best,
                self.opts.seed,
                psink.as_ref(),
            );
            out.push_str(&format!(
                "native:    {:.1} ms on {} pooled workers ({} aborts)\n",
                native.elapsed.as_secs_f64() * 1e3,
                native.workers,
                native.aborts(),
            ));
            if let Some(a) = psink
                .as_ref()
                .and_then(|s| attribute_native(s, &native, report.best.spec_breadth))
            {
                out.push_str(&profile_line(&a));
            }
        }
        Ok(out)
    }
}

struct ProfileCmd<'p> {
    opts: Options,
    format: ProfileFormat,
    seeds: usize,
    pool: Option<&'p WorkerPool>,
}

impl WorkloadVisitor for ProfileCmd<'_> {
    type Output = std::io::Result<String>;
    fn visit<W: Workload>(self, w: &W) -> std::io::Result<String> {
        let pool = self.pool.expect("execute() builds a pool for profile");
        let seeds: Vec<u64> = (0..self.seeds as u64)
            .map(|i| self.opts.seed.wrapping_add(i))
            .collect();
        let mut cfg = tuned_config(w, 28, self.opts.scale);
        if let Some(s) = self.opts.snapshot {
            cfg.snapshot = s;
        }
        if let Some(k) = self.opts.breadth {
            cfg.spec_breadth = k;
        }
        if self.opts.overlap_rerun {
            cfg.overlap_rerun = true;
        }
        let plan = self.opts.faults.map_or_else(FaultPlan::none, |spec| {
            spec.plan(&cfg, self.opts.scale.inputs_for(w))
        });
        let report = profile_workload_faulted(w, pool, self.opts.scale, &seeds, cfg, &plan);
        Ok(match self.format {
            ProfileFormat::Table => render_profile_table(&report),
            ProfileFormat::Json => format!("{}\n", report.to_json()),
            ProfileFormat::Chrome => {
                let trace = report
                    .profile
                    .to_trace(w.name())
                    .expect("captured spans form a valid trace");
                stats_trace::chrome::to_chrome_trace_with_names(
                    &trace,
                    &report.profile.thread_names(),
                )
            }
        })
    }
}

/// Execute a parsed command, returning its textual output.
///
/// # Errors
///
/// I/O errors from `export` and from `--telemetry` log files; everything
/// else is infallible.
pub fn execute(cmd: Command) -> std::io::Result<String> {
    // Lifetime rule: one `WorkerPool` per CLI invocation, built here and
    // lent to every stage of the command (tune: search batches, the
    // seed-ensemble replay, and the native winner replay all share it) —
    // never one pool per stage, which would re-pay thread spawning.
    let pool = match &cmd {
        Command::Run { opts, .. } | Command::Metrics { opts, .. } | Command::Tune { opts, .. } => {
            opts.workers.map(WorkerPool::new)
        }
        // Profiling is native by definition: no --workers means "the
        // host's natural pool width".
        Command::Profile { opts, .. } => Some(WorkerPool::new(
            opts.workers.unwrap_or_else(default_workers),
        )),
        _ => None,
    };
    let pool = pool.as_ref();
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Run { benchmark, opts } => dispatch(&benchmark, RunCmd { opts, pool }),
        Command::Metrics {
            benchmark,
            format,
            opts,
        } => dispatch(&benchmark, MetricsCmd { opts, format, pool }),
        Command::Characterize { benchmark, opts } => {
            use stats_bench::attribution::attribute;
            use stats_bench::pipeline::Machines;
            struct C {
                opts: Options,
            }
            impl WorkloadVisitor for C {
                type Output = String;
                fn visit<W: Workload>(self, w: &W) -> String {
                    let cfg = config_for(w, &self.opts);
                    let machines = Machines::paper();
                    let b = attribute(w, &machines.cores28, cfg, self.opts.scale, self.opts.seed);
                    let mut out = format!(
                        "benchmark: {}\nachieved:  {:.2}x of {:.0}x ideal ({:.1}% lost)\n\n",
                        b.benchmark,
                        b.achieved,
                        b.ideal,
                        b.total_lost_percent()
                    );
                    let mut shares = b.normalized_percent();
                    shares.sort_by(|a, c| c.1.partial_cmp(&a.1).expect("no NaN"));
                    for (cat, pct) in shares {
                        if pct > 0.05 {
                            out.push_str(&format!("  {:<16} {:>5.1}%\n", cat.name(), pct));
                        }
                    }
                    out
                }
            }
            Ok(dispatch(&benchmark, C { opts }))
        }
        Command::Tune {
            benchmark,
            budget,
            opts,
        } => dispatch(&benchmark, TuneCmd { opts, budget, pool }),
        Command::Figures { ids, opts } => {
            let scale = opts.scale;
            let all = ids.is_empty() || ids.iter().any(|i| i == "all");
            let want = |id: &str| all || ids.iter().any(|i| i == id);
            let mut out = String::new();
            if want("table1") {
                out.push_str(&stats_bench::table1::render(scale));
            }
            if want("fig09") {
                out.push_str(&stats_bench::fig09::render(scale));
            }
            if want("fig10") {
                out.push_str(&stats_bench::fig10::render(scale));
            }
            if want("fig11") {
                out.push_str(&stats_bench::fig11::render(scale));
            }
            if want("fig12") {
                out.push_str(&stats_bench::fig12::render(scale));
            }
            if want("fig13") {
                out.push_str(&stats_bench::fig13::render(scale));
            }
            if want("fig14") {
                out.push_str(&stats_bench::fig14::render(scale));
            }
            if want("fig15") {
                out.push_str(&stats_bench::fig15::render(scale));
            }
            if want("table2") {
                out.push_str(&stats_bench::table2::render(scale));
                out.push_str(&stats_bench::table2::render_cpi(scale));
            }
            if want("fig16") {
                out.push_str(&stats_bench::fig16::render(scale, 40));
            }
            if !all && ids.iter().any(|i| i == "ablations") {
                out.push_str(&stats_bench::ablations::render(scale));
            }
            if !all && ids.iter().any(|i| i == "scaling") {
                out.push_str(&stats_bench::scaling::render());
            }
            if out.is_empty() {
                out = format!("no known figure ids in {ids:?}\n\n{USAGE}");
            }
            Ok(out)
        }
        Command::Export {
            benchmark,
            path,
            opts,
        } => dispatch(&benchmark, ExportCmd { opts, path }),
        Command::Profile {
            benchmark,
            format,
            seeds,
            opts,
        } => dispatch(
            &benchmark,
            ProfileCmd {
                opts,
                format,
                seeds,
                pool,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_run_with_options() {
        let cmd = parse(&args("run bodytrack --scale 0.25 --seed 7 --chunks 8")).unwrap();
        match cmd {
            Command::Run { benchmark, opts } => {
                assert_eq!(benchmark, "bodytrack");
                assert_eq!(opts.scale, Scale(0.25));
                assert_eq!(opts.seed, 7);
                assert_eq!(opts.chunks, Some(8));
                assert_eq!(opts.lookback, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_benchmark_and_option() {
        assert!(parse(&args("run blackscholes")).is_err());
        assert!(parse(&args("run bodytrack --frobnicate 3")).is_err());
        assert!(parse(&args("run")).is_err());
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(parse(&args("run bodytrack --scale 0")).is_err());
        assert!(parse(&args("run bodytrack --scale 1.5")).is_err());
        assert!(parse(&args("run bodytrack --scale abc")).is_err());
    }

    #[test]
    fn empty_and_help_show_usage() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        assert!(execute(Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn parses_tune_budget_and_figures_ids() {
        match parse(&args("tune swaptions --budget 25")).unwrap() {
            Command::Tune { budget, .. } => assert_eq!(budget, 25),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args("figures fig09 table1 --scale 0.1")).unwrap() {
            Command::Figures { ids, opts } => {
                assert_eq!(ids, vec!["fig09", "table1"]);
                assert_eq!(opts.scale, Scale(0.1));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn export_requires_a_path() {
        assert!(parse(&args("export swaptions")).is_err());
        assert!(parse(&args("export swaptions /tmp/x.json")).is_ok());
    }

    #[test]
    fn run_command_executes_end_to_end() {
        let cmd = parse(&args("run swaptions --scale 0.05 --chunks 8")).unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("swaptions"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn figures_command_renders_requested_ids() {
        let cmd = parse(&args("figures table1 --scale 0.05")).unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("Table I"));
        assert!(!out.contains("Fig. 9"));
    }

    #[test]
    fn parses_telemetry_json_and_format() {
        match parse(&args("run swaptions --telemetry /tmp/t.jsonl --json")).unwrap() {
            Command::Run { opts, .. } => {
                assert_eq!(opts.telemetry.as_deref(), Some("/tmp/t.jsonl"));
                assert!(opts.json);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args("metrics swaptions --format prometheus")).unwrap() {
            Command::Metrics { format, .. } => assert_eq!(format, MetricsFormat::Prometheus),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&args("metrics swaptions --format xml")).is_err());
        assert!(parse(&args("run swaptions --telemetry")).is_err());
    }

    #[test]
    fn run_json_summary_is_valid_json() {
        let cmd = parse(&args("run swaptions --scale 0.05 --chunks 8 --json")).unwrap();
        let out = execute(cmd).unwrap();
        stats_telemetry::json::validate(out.trim())
            .unwrap_or_else(|e| panic!("invalid --json summary: {e}\n{out}"));
        assert!(out.contains("\"benchmark\":\"swaptions\""));
        assert!(out.contains("\"speedup\":"));
        // The embedded telemetry snapshot rides along.
        assert!(out.contains("\"telemetry\":{"));
        assert!(out.contains("\"chunks_started\":8"));
    }

    #[test]
    fn metrics_command_renders_each_format() {
        for (fmt, needle) in [
            ("table", "chunks_committed"),
            ("prometheus", "stats_chunks_committed_total"),
            ("folded", ";chunk-compute "),
            ("json", "\"state_comparisons\":"),
        ] {
            let cmd = parse(&args(&format!(
                "metrics swaptions --scale 0.05 --format {fmt}"
            )))
            .unwrap();
            let out = execute(cmd).unwrap();
            assert!(
                out.contains(needle),
                "--format {fmt} missing {needle:?}:\n{out}"
            );
        }
    }

    #[test]
    fn run_telemetry_writes_a_jsonl_event_log() {
        let path = std::env::temp_dir().join("stats-cli-telemetry-test.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let cmd = parse(&args(&format!(
            "run swaptions --scale 0.05 --chunks 8 --telemetry {path_str}"
        )))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("telemetry:"));
        let log = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = log.lines().collect();
        assert!(lines.len() >= 2, "expected a full lifecycle, got:\n{log}");
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\"type\":\"run_started\""));
        assert!(lines[0].contains("\"benchmark\":\"swaptions\""));
        assert!(lines[lines.len() - 1].contains("\"type\":\"snapshot\""));
        for line in &lines {
            stats_telemetry::json::validate(line)
                .unwrap_or_else(|e| panic!("invalid event line: {e}\n{line}"));
        }
    }

    #[test]
    fn parses_and_validates_workers() {
        match parse(&args("run swaptions --workers 4")).unwrap() {
            Command::Run { opts, .. } => assert_eq!(opts.workers, Some(4)),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&args("run swaptions --workers 0")).is_err());
        assert!(parse(&args("run swaptions --workers abc")).is_err());
        assert!(parse(&args("run swaptions --workers")).is_err());
    }

    #[test]
    fn run_with_workers_executes_natively_and_matches() {
        let cmd = parse(&args("run swaptions --scale 0.05 --chunks 8 --workers 2")).unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("native:"));
        assert!(out.contains("2 pooled workers"));
        assert!(
            out.contains("decisions match simulated"),
            "threaded must agree with simulated:\n{out}"
        );
    }

    #[test]
    fn run_json_with_workers_records_pool_width() {
        let cmd = parse(&args(
            "run swaptions --scale 0.05 --chunks 8 --workers 2 --json",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        stats_telemetry::json::validate(out.trim())
            .unwrap_or_else(|e| panic!("invalid --json summary: {e}\n{out}"));
        assert!(out.contains("\"runtime\":\"threaded\""));
        assert!(out.contains("\"workers\":2"));
        assert!(out.contains("\"native_ms\":"));
        assert!(out.contains("\"decisions_match\":true"));
        // The embedded snapshot now comes from the threaded runtime and
        // still carries the full protocol counter set.
        assert!(out.contains("\"chunks_started\":8"));
    }

    #[test]
    fn metrics_with_workers_snapshots_the_threaded_runtime() {
        let cmd = parse(&args(
            "metrics swaptions --scale 0.05 --chunks 8 --workers 2 --format json",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("\"chunks_started\":8"));
        // Folded is a simulated-trace export; it must still work with
        // --workers rather than erroring out.
        let folded = parse(&args(
            "metrics swaptions --scale 0.05 --workers 2 --format folded",
        ))
        .unwrap();
        assert!(execute(folded).unwrap().contains(";chunk-compute "));
    }

    #[test]
    fn tune_with_workers_replays_winner_natively() {
        let cmd = parse(&args("tune swaptions --scale 0.05 --budget 3 --workers 2")).unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("native:"));
        assert!(out.contains("2 pooled workers"));
    }

    #[test]
    fn tune_with_workers_shards_the_search_and_matches_sequential() {
        // Same (seed, budget, batch) → identical report whether the
        // search batches run serially or sharded over a pool. The visible
        // output (explored count, best configuration, seed-ensemble
        // stats) must therefore be identical too.
        let seq =
            execute(parse(&args("tune swaptions --scale 0.05 --budget 12")).unwrap()).unwrap();
        let par =
            execute(parse(&args("tune swaptions --scale 0.05 --budget 12 --workers 4")).unwrap())
                .unwrap();
        let strip_native = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("native:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip_native(&seq), strip_native(&par));
        assert!(par.contains("native:"), "winner replayed natively:\n{par}");
    }

    #[test]
    fn tune_telemetry_logs_batches_under_workers() {
        let path = std::env::temp_dir().join("stats-cli-tune-batch-telemetry-test.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let cmd = parse(&args(&format!(
            "tune swaptions --scale 0.05 --budget 9 --workers 2 --telemetry {path_str}"
        )))
        .unwrap();
        execute(cmd).unwrap();
        let log = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(
            log.contains("\"type\":\"tune_batch\"") && log.contains("\"workers\":2"),
            "expected pool-width-stamped tune_batch events:\n{log}"
        );
    }

    #[test]
    fn parses_profile_with_options() {
        match parse(&args(
            "profile swaptions --workers 2 --seeds 4 --format json",
        ))
        .unwrap()
        {
            Command::Profile {
                benchmark,
                format,
                seeds,
                opts,
            } => {
                assert_eq!(benchmark, "swaptions");
                assert_eq!(format, ProfileFormat::Json);
                assert_eq!(seeds, 4);
                assert_eq!(opts.workers, Some(2));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: table rendering, 3 seeds, host-width pool.
        match parse(&args("profile swaptions")).unwrap() {
            Command::Profile { format, seeds, .. } => {
                assert_eq!(format, ProfileFormat::Table);
                assert_eq!(seeds, 3);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&args("profile swaptions --format prometheus")).is_err());
        assert!(parse(&args("profile swaptions --seeds 0")).is_err());
        assert!(parse(&args("profile")).is_err());
    }

    #[test]
    fn profile_flag_requires_workers_on_run_and_tune() {
        assert!(parse(&args("run swaptions --profile")).is_err());
        assert!(parse(&args("tune swaptions --profile")).is_err());
        assert!(parse(&args("run swaptions --profile --workers 2")).is_ok());
        // `stats profile` itself needs no flag.
        assert!(parse(&args("profile swaptions")).is_ok());
    }

    #[test]
    fn profile_command_renders_each_format() {
        let table = execute(
            parse(&args(
                "profile swaptions --scale 0.05 --workers 2 --seeds 2",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(table.contains("causal profile: swaptions"));
        assert!(table.contains("speedup lost to:"));
        assert!(table.contains("what-if projections:"));

        let json = execute(
            parse(&args(
                "profile swaptions --scale 0.05 --workers 2 --format json",
            ))
            .unwrap(),
        )
        .unwrap();
        stats_telemetry::json::validate(json.trim())
            .unwrap_or_else(|e| panic!("invalid profile json: {e}\n{json}"));
        assert!(json.contains("\"losses\":"));
        assert!(json.contains("\"whatifs\":"));

        let chrome = execute(
            parse(&args(
                "profile swaptions --scale 0.05 --workers 2 --format chrome",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(chrome.trim_start().starts_with('['));
        assert!(chrome.contains("\"thread_name\""));
        assert!(chrome.contains("stats-pool-0"));
        assert!(chrome.contains("coordinator"));
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn run_with_profile_appends_attribution() {
        let cmd = parse(&args(
            "run swaptions --scale 0.05 --chunks 8 --workers 2 --profile",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("profile:"), "missing attribution:\n{out}");
        assert!(out.contains("dominant loss"));
        // JSON summary embeds the full attribution object.
        let cmd = parse(&args(
            "run swaptions --scale 0.05 --chunks 8 --workers 2 --profile --json",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        stats_telemetry::json::validate(out.trim())
            .unwrap_or_else(|e| panic!("invalid --json summary: {e}\n{out}"));
        assert!(out.contains("\"profile\":{"));
        assert!(out.contains("\"losses\":"));
    }

    #[test]
    fn tune_with_profile_attributes_the_native_replay() {
        let cmd = parse(&args(
            "tune swaptions --scale 0.05 --budget 3 --workers 2 --profile",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("native:"));
        assert!(out.contains("profile:"), "missing attribution:\n{out}");
    }

    #[test]
    fn parses_snapshot_strategy() {
        match parse(&args("run bodytrack --snapshot cow")).unwrap() {
            Command::Run { opts, .. } => {
                assert_eq!(opts.snapshot, Some(SnapshotStrategy::CopyOnWrite));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args("profile bodytrack --snapshot deep")).unwrap() {
            Command::Profile { opts, .. } => {
                assert_eq!(opts.snapshot, Some(SnapshotStrategy::DeepClone));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(
            parse(&args("run bodytrack")).map(|c| match c {
                Command::Run { opts, .. } => opts.snapshot,
                _ => unreachable!(),
            }),
            Ok(None)
        );
        assert!(parse(&args("run bodytrack --snapshot shallow")).is_err());
        assert!(parse(&args("run bodytrack --snapshot")).is_err());
    }

    #[test]
    fn run_with_cow_snapshots_matches_simulated_decisions() {
        // The keystone bit-identity contract, exercised end to end through
        // the CLI: COW snapshots must not change a single decision.
        let cmd = parse(&args(
            "run bodytrack --scale 0.05 --chunks 4 --workers 2 --snapshot cow",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(
            out.contains("cow snapshots"),
            "config line shows cow:\n{out}"
        );
        assert!(
            out.contains("decisions match simulated"),
            "cow threaded must agree with cow simulated:\n{out}"
        );
    }

    #[test]
    fn run_json_reports_snapshot_strategy() {
        let cmd = parse(&args(
            "run swaptions --scale 0.05 --chunks 8 --snapshot cow --json",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("\"snapshot\":\"cow\""));
        // Byte counters ride along in the embedded telemetry snapshot.
        assert!(out.contains("\"state_bytes_logical\":"));
        assert!(out.contains("\"state_bytes_copied\":"));
    }

    #[test]
    fn parses_breadth_and_overlap() {
        match parse(&args("run bodytrack --breadth 2 --overlap-rerun")).unwrap() {
            Command::Run { opts, .. } => {
                assert_eq!(opts.breadth, Some(2));
                assert!(opts.overlap_rerun);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args("profile bodytrack --breadth 4")).unwrap() {
            Command::Profile { opts, .. } => {
                assert_eq!(opts.breadth, Some(4));
                assert!(!opts.overlap_rerun);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(
            parse(&args("run bodytrack")).map(|c| match c {
                Command::Run { opts, .. } => opts.breadth,
                _ => unreachable!(),
            }),
            Ok(None)
        );
        assert!(parse(&args("run bodytrack --breadth 0")).is_err());
        assert!(parse(&args("run bodytrack --breadth wide")).is_err());
        assert!(parse(&args("run bodytrack --breadth")).is_err());
    }

    #[test]
    fn parses_faults_spec() {
        match parse(&args("run swaptions --workers 2 --faults 4@7")).unwrap() {
            Command::Run { opts, .. } => {
                assert_eq!(opts.faults, Some(FaultSpec { count: 4, seed: 7 }));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Bare COUNT defaults the plan seed to 0; profile is always
        // native, so it needs no --workers.
        match parse(&args("profile swaptions --faults 3")).unwrap() {
            Command::Profile { opts, .. } => {
                assert_eq!(opts.faults, Some(FaultSpec { count: 3, seed: 0 }));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&args("run swaptions --workers 2 --faults 0")).is_err());
        assert!(parse(&args("run swaptions --workers 2 --faults x@1")).is_err());
        assert!(parse(&args("run swaptions --workers 2 --faults")).is_err());
        // Injection happens in the pooled runtime: run needs --workers,
        // and the other subcommands reject the flag outright.
        assert!(parse(&args("run swaptions --faults 4")).is_err());
        assert!(parse(&args("tune swaptions --faults 4 --workers 2")).is_err());
        assert!(parse(&args("metrics swaptions --faults 4")).is_err());
    }

    #[test]
    fn run_with_faults_recovers_invisibly() {
        // The recovery contract end to end through the CLI: the injected
        // faults fire (visible in the fault counters) yet the decision
        // sequence still matches the fault-free simulated run.
        let cmd = parse(&args(
            "run swaptions --scale 0.05 --chunks 8 --workers 2 --faults 5@9",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("faults:"), "missing fault line:\n{out}");
        assert!(out.contains("5 planned"), "plan size echoed:\n{out}");
        assert!(
            out.contains("decisions match simulated"),
            "faulted threaded must agree with fault-free simulated:\n{out}"
        );
    }

    #[test]
    fn run_json_reports_fault_plane() {
        let cmd = parse(&args(
            "run swaptions --scale 0.05 --chunks 8 --workers 2 --faults 5@9 --json",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        stats_telemetry::json::validate(out.trim())
            .unwrap_or_else(|e| panic!("invalid --json summary: {e}\n{out}"));
        assert!(out.contains("\"faults\":{"));
        assert!(out.contains("\"planned\":5"));
        assert!(out.contains("\"decisions_match\":true"));
        // The fault counters also ride along in the embedded snapshot.
        assert!(out.contains("\"faults_injected\":"));
    }

    #[test]
    fn profile_with_faults_prints_the_fault_plane() {
        let cmd = parse(&args(
            "profile swaptions --scale 0.05 --workers 2 --seeds 2 --faults 4@7",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("fault plane:"), "missing fault plane:\n{out}");
        assert!(out.contains("4 planned"), "plan size echoed:\n{out}");
        let json = execute(
            parse(&args(
                "profile swaptions --scale 0.05 --workers 2 --faults 4@7 --format json",
            ))
            .unwrap(),
        )
        .unwrap();
        stats_telemetry::json::validate(json.trim())
            .unwrap_or_else(|e| panic!("invalid profile json: {e}\n{json}"));
        assert!(json.contains("\"faults\":{"));
    }

    #[test]
    fn run_with_breadth_matches_simulated_decisions() {
        // The breadth bit-identity contract end to end through the CLI:
        // alternative candidates plus overlapped recovery must leave the
        // native decision sequence exactly where the model puts it.
        let cmd = parse(&args(
            "run bodytrack --scale 0.05 --chunks 4 --workers 2 --breadth 2 --overlap-rerun",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(
            out.contains("breadth 2") && out.contains("overlapped reruns"),
            "config line shows the breadth knobs:\n{out}"
        );
        assert!(
            out.contains("decisions match simulated"),
            "breadth-2 threaded must agree with breadth-2 simulated:\n{out}"
        );
    }

    #[test]
    fn run_json_reports_breadth_and_overlap() {
        let cmd = parse(&args(
            "run swaptions --scale 0.05 --chunks 8 --breadth 3 --json",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("\"spec_breadth\":3"));
        assert!(out.contains("\"overlap_rerun\":false"));
        // Candidate counters ride along in the embedded telemetry
        // snapshot: 7 speculative chunks x 3 candidates each.
        assert!(out.contains("\"spec_candidates\":21"));
    }

    #[test]
    fn tune_with_breadth_searches_the_breadth_dimension() {
        let out =
            execute(parse(&args("tune swaptions --scale 0.05 --budget 6 --breadth 4")).unwrap())
                .unwrap();
        // The searched space gained the dimension; the winner is still a
        // sound configuration whatever breadth it lands on.
        assert!(out.contains("explored:"), "tune ran:\n{out}");
        assert!(out.contains("best:"), "tune reported a winner:\n{out}");
    }

    #[test]
    fn tune_with_cow_searches_the_snapshot_dimension() {
        let cmd = parse(&args(
            "tune bodytrack --scale 0.05 --budget 16 --snapshot cow",
        ))
        .unwrap();
        let out = execute(cmd).unwrap();
        // Under the byte-proportional cost model COW strictly cheapens
        // bodytrack's 500 KB copies, so the winner adopts it.
        assert!(
            out.contains("cow snapshots"),
            "expected the tuner to pick cow for the copy-heavy tracker:\n{out}"
        );
    }

    #[test]
    fn tune_telemetry_logs_iterations_and_finish() {
        let path = std::env::temp_dir().join("stats-cli-tune-telemetry-test.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let cmd = parse(&args(&format!(
            "tune swaptions --scale 0.05 --budget 5 --telemetry {path_str}"
        )))
        .unwrap();
        let out = execute(cmd).unwrap();
        assert!(out.contains("mean over 5 seeds"));
        let log = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let evaluated = log.matches("\"type\":\"tune_evaluated\"").count();
        let iterations = log.matches("\"type\":\"tune_iteration\"").count();
        assert_eq!(
            evaluated, iterations,
            "one evaluation per iteration:\n{log}"
        );
        assert!(evaluated >= 1);
        assert_eq!(log.matches("\"type\":\"tune_finished\"").count(), 1);
        for line in log.lines() {
            stats_telemetry::json::validate(line)
                .unwrap_or_else(|e| panic!("invalid event line: {e}\n{line}"));
        }
    }
}
