//! The `stats` command-line interface. See `stats help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match stats_workbench::cli::parse(&args) {
        Ok(cmd) => match stats_workbench::cli::execute(cmd) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", stats_workbench::cli::USAGE);
            std::process::exit(2);
        }
    }
}
