//! Standard and uniform sampling, mirroring the upstream module layout
//! (`rand::distributions::uniform`).

use crate::RngCore;

/// Types with a canonical "standard" distribution: what `rng.gen::<T>()`
/// draws. Integers take uniform bits, floats take `[0, 1)`, `bool` a
/// fair coin.
pub trait StandardSample: Sized {
    /// Draw one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform range sampling (`SampleUniform` + `SampleRange`).

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform draw from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform draw from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Range types usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one value.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_inclusive(rng, low, high)
        }
    }

    /// Uniform `u64` in `[0, span)` via 128-bit multiply-shift
    /// (Lemire's method without the rejection step; the bias is
    /// < 2^-64 per draw, far below anything the workbench can observe).
    fn span_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as u64).wrapping_sub(low as u64);
                    low.wrapping_add(span_u64(rng, span) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as u64).wrapping_sub(low as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(span_u64(rng, span + 1) as $t)
                }
            }
        )*};
    }

    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as i64).wrapping_sub(low as i64) as u64;
                    (low as i64).wrapping_add(span_u64(rng, span) as i64) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as i64).wrapping_sub(low as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i64).wrapping_add(span_u64(rng, span + 1) as i64) as $t
                }
            }
        )*};
    }

    uniform_int!(i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    let v = low + (high - low) * unit;
                    // Floating rounding can land exactly on `high`; fold
                    // that measure-zero case back inside the half-open
                    // contract.
                    if v >= high { low } else { v }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                    low + (high - low) * unit
                }
            }
        )*};
    }

    uniform_float!(f32, f64);

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        struct Lcg(u64);
        impl RngCore for Lcg {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.0
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for b in dest.iter_mut() {
                    *b = self.next_u64() as u8;
                }
            }
        }

        #[test]
        fn integer_ranges_hit_all_values() {
            let mut r = Lcg(99);
            let mut seen = [false; 5];
            for _ in 0..500 {
                seen[r.gen_range(0usize..5)] = true;
            }
            assert!(seen.iter().all(|s| *s), "{seen:?}");
        }

        #[test]
        fn negative_ranges_work() {
            let mut r = Lcg(5);
            for _ in 0..200 {
                let v: i64 = r.gen_range(-10i64..-2);
                assert!((-10..-2).contains(&v));
            }
        }

        #[test]
        fn float_half_open_excludes_high() {
            let mut r = Lcg(17);
            for _ in 0..10_000 {
                let v: f64 = r.gen_range(0.0..1e-300);
                assert!(v < 1e-300);
            }
        }
    }
}
