//! Offline stand-in for the `rand` crate.
//!
//! The workbench builds in hermetic environments with no crates.io
//! access, so the workspace vendors the *exact* API surface it uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and the
//! [`distributions::uniform`] sampling traits. Semantics follow the
//! upstream contracts (half-open ranges, `[0, 1)` floats); bit-exact
//! compatibility with upstream streams is explicitly *not* a goal —
//! every consumer in this workspace derives its determinism from its
//! own seeds, never from upstream rand's stream layout.

#![forbid(unsafe_code)]

use std::fmt;

pub mod distributions;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::StandardSample;

/// Error type carried by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible; this exists so trait
/// signatures match upstream.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 — the same
    /// scheme upstream uses, so small seeds still produce well-mixed
    /// key material.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Extension methods every [`RngCore`] gets for free.
pub trait Rng: RngCore {
    /// A value drawn from the standard distribution of `T` (uniform bits
    /// for integers, `[0, 1)` for floats, a fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform draw from a range (`low..high` half-open or
    /// `low..=high` inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);
    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so value-level tests see mixed bits.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Counting(1);
        for _ in 0..1_000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = r.gen_range(0..4u8);
            assert!(y < 4);
            let f: f64 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut r = Counting(7);
        for _ in 0..1_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut r = Counting(3);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn seed_from_u64_expands_whole_seed() {
        struct Grab([u8; 32]);
        impl SeedableRng for Grab {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Grab(seed)
            }
        }
        let a = Grab::seed_from_u64(0);
        let b = Grab::seed_from_u64(1);
        assert_ne!(a.0, b.0);
        assert_ne!(&a.0[8..16], &a.0[0..8], "blocks must differ");
    }
}
