//! Offline stand-in for `criterion`.
//!
//! Keeps the workbench's `[[bench]]` targets compiling and *usefully
//! runnable* in hermetic environments: each benchmark is warmed up,
//! then timed over a fixed iteration budget, and a single
//! median-of-batches line is printed per benchmark. No statistical
//! analysis, no HTML reports, no comparison to saved baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box, the only one upstream's users
/// actually need.
pub use std::hint::black_box;

/// Throughput annotation; printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark context passed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }

    /// Accepted for compatibility; the stand-in's iteration budget is
    /// fixed.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for compatibility; the stand-in's timing budget is fixed.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; warm-up happens inside [`run_one`].
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }
}

/// A group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the stand-in's iteration budget is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.throughput, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this batch's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm up and pick an iteration count targeting ~40 ms per batch.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(20));
    let iters =
        (Duration::from_millis(40).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    // Median of three timed batches.
    let mut times = Vec::with_capacity(3);
    for _ in 0..3 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_nanos() as u64 / iters.max(1));
    }
    times.sort_unstable();
    let ns = times[1];

    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0 => {
            format!("  {:.1} Melem/s", n as f64 / ns as f64 * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns > 0 => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / ns as f64 * 1e9 / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("  {name}: {ns} ns/iter ({iters} iters){rate}");
}

/// Declare a group function compatible with upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_accept_throughput_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10))
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
