//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::distributions::StandardSample;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// Generate one canonical value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as StandardSample>::standard_sample(rng)
            }
        }
    )*};
}

arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_full_width_values() {
        let mut rng = TestRng::for_case("arbitrary-tests", 0);
        let ints = any::<u64>();
        let mut high_bits = false;
        for _ in 0..64 {
            if ints.generate(&mut rng) > u64::MAX / 2 {
                high_bits = true;
            }
        }
        assert!(high_bits, "no draw ever used the top bit");
    }

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = TestRng::for_case("arbitrary-tests", 1);
        let coins = any::<bool>();
        let heads = (0..100).filter(|_| coins.generate(&mut rng)).count();
        assert!((10..90).contains(&heads));
    }
}
