//! The [`Strategy`] trait and the combinators built on it.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream, a strategy here is a plain generator — there is no
/// value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy that regenerates until `pred` accepts the value.
    ///
    /// Gives up (panics) after 1 000 consecutive rejections, like
    /// upstream's "too many local rejects".
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// A strategy that regenerates until `f` returns `Some`, producing
    /// the mapped value.
    ///
    /// Gives up (panics) after 1 000 consecutive rejections.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// A strategy built from each generated value.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..1_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_tuples_compose() {
        let mut r = rng();
        let s = (0usize..10, 0.0f64..1.0, 5u64..=6);
        for _ in 0..100 {
            let (a, b, c) = s.generate(&mut r);
            assert!(a < 10);
            assert!((0.0..1.0).contains(&b));
            assert!((5..=6).contains(&c));
        }
    }

    #[test]
    fn map_and_filter_apply() {
        let mut r = rng();
        let evens = (0u32..1_000).prop_map(|v| v * 2);
        let filtered = (0u32..1_000).prop_filter("odd", |v| v % 2 == 1);
        for _ in 0..50 {
            assert_eq!(evens.generate(&mut r) % 2, 0);
            assert_eq!(filtered.generate(&mut r) % 2, 1);
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut r = rng();
        assert_eq!(Just(41).generate(&mut r), 41);
    }

    #[test]
    fn flat_map_chains_generation() {
        let mut r = rng();
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n));
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((1..5).contains(&v.len()));
        }
    }
}
