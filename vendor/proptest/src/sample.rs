//! Sampling helpers (`prop::sample::Index`).

/// A position into a collection whose size is unknown at generation
/// time: generated as raw entropy, resolved against a length later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wrap raw entropy.
    pub fn new(raw: u64) -> Self {
        Index(raw)
    }

    /// Resolve against a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero (same contract as upstream).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        // Multiply-shift keeps the distribution uniform for small lens.
        ((u128::from(self.0) * len as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_cover_the_range() {
        let mut seen = [false; 7];
        for i in 0..1_000u64 {
            // Spread raw values over the full 64-bit range.
            let raw = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            seen[Index::new(raw).index(7)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_collections_are_rejected() {
        Index::new(1).index(0);
    }
}
