//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: either an exact
/// size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

/// A strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_case("collection-tests", 0);
        let exact = vec(0u8..5, 4usize);
        let ranged = vec(0u8..5, 1..20);
        for _ in 0..100 {
            assert_eq!(exact.generate(&mut rng).len(), 4);
            let v = ranged.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn nested_vecs_compose() {
        let mut rng = TestRng::for_case("collection-tests", 1);
        let grid = vec(vec(-1.0f64..1.0, 4usize), 2..5);
        let g = grid.generate(&mut rng);
        assert!((2..5).contains(&g.len()));
        assert!(g.iter().all(|row| row.len() == 4));
    }
}
