//! The deterministic case runner behind the `proptest!` macro.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is falsified.
    Fail(String),
    /// A precondition (`prop_assume!`) rejected the inputs.
    Reject(&'static str),
}

impl TestCaseError {
    /// A falsification with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A precondition rejection.
    pub fn reject(what: &'static str) -> Self {
        TestCaseError::Reject(what)
    }
}

/// The RNG handed to strategies: a ChaCha8 stream seeded from the test
/// name and case index, so every failure is reproducible by rerunning
/// the same test binary — no state files.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// The stream for `(test, case)`.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

/// Drive one property through `config.cases` accepted cases.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when a case falsifies the
/// property, or when rejections exhaust the global budget
/// (`cases * 20`, minimum 1000) like upstream's `max_global_rejects`.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut accepted: u64 = 0;
    let mut rejected: u64 = 0;
    let reject_budget = u64::from(config.cases.max(50)) * 20;
    let mut stream: u64 = 0;
    while accepted < u64::from(config.cases) {
        let mut rng = TestRng::for_case(test_name, stream);
        stream += 1;
        match property(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "{test_name}: too many precondition rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property falsified at case {accepted} \
                     (deterministic stream {}): {msg}",
                    stream - 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn runner_counts_accepted_cases() {
        let mut runs = 0;
        run_cases(&ProptestConfig::with_cases(17), "counts", |_| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 17);
    }

    #[test]
    fn rejections_do_not_consume_the_case_budget() {
        let mut accepted = 0;
        let mut seen = 0;
        run_cases(&ProptestConfig::with_cases(10), "rejects", |rng| {
            seen += 1;
            if rng.gen::<bool>() {
                return Err(TestCaseError::reject("coin"));
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, 10);
        assert!(seen >= 10);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_the_message() {
        run_cases(&ProptestConfig::with_cases(5), "fails", |_| {
            Err(TestCaseError::fail("boom".into()))
        });
    }

    #[test]
    fn streams_are_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("same", 3);
        let mut b = TestRng::for_case("same", 3);
        let mut c = TestRng::for_case("same", 4);
        let mut d = TestRng::for_case("other", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
        assert_ne!(b.next_u64(), d.next_u64());
    }
}
