//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait over ranges, tuples, collections,
//! and mapped/filtered strategies; [`arbitrary::any`]; the `proptest!`,
//! `prop_assert*!` and `prop_assume!` macros; and a deterministic
//! runner. Two deliberate simplifications versus upstream:
//!
//! 1. **No shrinking.** A failing case reports its inputs (via the
//!    panic message) and the deterministic seed reproduces it exactly,
//!    which is what a hermetic CI needs most.
//! 2. **Derived seeding.** Cases are seeded from a hash of the test
//!    name and the case index, so failures are stable across runs and
//!    machines — there is no persistence file.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a property-test file conventionally imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Namespaced re-exports (`prop::sample`, `prop::collection`).
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Run one property as a closure over generated inputs: the expansion
/// target of the [`proptest!`] macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case (it does not count toward the case budget)
/// unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
