//! Offline stand-in for `serde_derive`.
//!
//! Emits *empty marker impls* of the stand-in `serde::Serialize` /
//! `serde::Deserialize` traits. The derive input is parsed with a small
//! token walker (no `syn` in the hermetic build): enough to recover the
//! type name, its generic parameters, and an optional `where` clause.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the token walker recovers from a derive input.
struct Target {
    name: String,
    /// Full generics as written, without the angle brackets
    /// (e.g. `T: Clone, 'a, const N: usize`).
    params: String,
    /// Parameter names only, for the type position (e.g. `T, 'a, N`).
    args: String,
    /// `where ...` clause, if any (without the trailing body).
    where_clause: String,
}

fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    // `struct` / `enum` / `union` keyword, then the type name.
    match tokens.get(i) {
        Some(TokenTree::Ident(kw))
            if matches!(kw.to_string().as_str(), "struct" | "enum" | "union") =>
        {
            i += 1
        }
        other => panic!("derive input is not a struct/enum/union: {other:?}"),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;

    // Generic parameter list.
    let mut params = String::new();
    let mut args = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut body: Vec<TokenTree> = Vec::new();
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        depth += 1;
                        body.push(tokens[i].clone());
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth > 0 {
                            body.push(tokens[i].clone());
                        }
                    }
                    Some(t) => body.push(t.clone()),
                    None => panic!("unbalanced generics in derive input"),
                }
                i += 1;
            }
            params = body
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            args = param_names(&body).join(", ");
        }
    }

    // Optional where clause: everything from `where` up to the body
    // (brace group), tuple body (paren group), or unit `;`.
    let mut where_clause = String::new();
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "where" {
            let mut parts = Vec::new();
            while let Some(t) = tokens.get(i) {
                let done = matches!(t, TokenTree::Group(g)
                        if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis))
                    || matches!(t, TokenTree::Punct(p) if p.as_char() == ';');
                if done {
                    break;
                }
                parts.push(t.to_string());
                i += 1;
            }
            where_clause = parts.join(" ");
        }
    }

    Target {
        name,
        params,
        args,
        where_clause,
    }
}

/// Extract parameter *names* from a generics body: the leading lifetime
/// or identifier of each comma-separated parameter at depth zero
/// (skipping a `const` keyword).
fn param_names(body: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0usize;
    let mut at_param_start = true;
    let mut pending_lifetime = false;
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                at_param_start = true;
                pending_lifetime = false;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 0 && at_param_start => {
                pending_lifetime = true;
            }
            TokenTree::Ident(id) if at_param_start => {
                let text = id.to_string();
                if pending_lifetime {
                    names.push(format!("'{text}"));
                    at_param_start = false;
                    pending_lifetime = false;
                } else if text == "const" {
                    // The next ident is the parameter name.
                } else {
                    names.push(text);
                    at_param_start = false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    names
}

fn marker_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let t = parse_target(input);
    let mut impl_params = String::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push_str(lt);
    }
    if !t.params.is_empty() {
        if !impl_params.is_empty() {
            impl_params.push_str(", ");
        }
        impl_params.push_str(&t.params);
    }
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{impl_params}>")
    };
    let ty_generics = if t.args.is_empty() {
        String::new()
    } else {
        format!("<{}>", t.args)
    };
    let code = format!(
        "impl{impl_generics} {trait_path} for {}{ty_generics} {} {{}}",
        t.name, t.where_clause
    );
    code.parse().expect("generated marker impl parses")
}

/// Derive the stand-in `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", None)
}

/// Derive the stand-in `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'de>", Some("'de"))
}
