//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the [`rand`] traits.
//!
//! This is a faithful ChaCha core (RFC 8439 state layout, 8 double
//! rounds) — not a toy LCG — because the workbench's statistical tests
//! (Box–Muller moments, Bernoulli frequencies, uniform coverage) need a
//! generator of real quality. Word-stream compatibility with upstream
//! `rand_chacha` is *not* promised; every consumer seeds its own
//! streams and depends only on determinism, independence, and quality.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 double rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state words (RFC 8439 layout).
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k".
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(hi) << 32 | u64::from(lo)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn words_are_unbiased_per_bit() {
        // Every output bit position should be set ~half the time.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 4_096;
        let mut ones = [0u32; 64];
        for _ in 0..n {
            let w = rng.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((w >> bit) & 1) as u32;
            }
        }
        for (bit, count) in ones.iter().enumerate() {
            let frac = f64::from(*count) / f64::from(n);
            assert!((0.45..0.55).contains(&frac), "bit {bit}: {frac}");
        }
    }

    #[test]
    fn gen_integrates_with_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let v: usize = rng.gen_range(10..20);
        assert!((10..20).contains(&v));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
