//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the synthetic-input codec uses: [`BytesMut`]
//! as a growable write buffer, [`Bytes`] as a cheaply cloneable read
//! view with cursor-advancing `get_*` calls, and the [`Buf`]/[`BufMut`]
//! traits carrying little-endian accessors. Zero-copy slicing is
//! preserved (an `Arc` per buffer, ranges per view); the upstream
//! vtable machinery is not.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read access with cursor-advancing little-endian accessors.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access with little-endian appenders.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A cheaply cloneable, sliceable read view over immutable bytes.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Unread length of this view.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view has drained.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this view (zero-copy), with `range` relative to
    /// the current cursor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`len`](Bytes::len).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
}

/// A growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    v: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            v: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.v)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { v: src.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.v
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.v
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.v.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(-1234.5678);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -1234.5678);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let s = b.slice(1..3);
        assert_eq!(&*s, &[3, 4]);
        // The parent view is unaffected.
        assert_eq!(&*b, &[2, 3, 4, 5]);
    }

    #[test]
    fn clones_share_storage_but_not_cursor() {
        let mut a = Bytes::from(vec![9, 8, 7]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.remaining(), 1);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn bytesmut_is_mutably_indexable() {
        let mut m = BytesMut::from(&[1u8, 2, 3][..]);
        m[0] ^= 0xFF;
        assert_eq!(&*m, &[0xFE, 2, 3]);
    }
}
