//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to
//! mark them wire-ready, but — with `serde_json` outside the allowed
//! dependency set — never drives an actual serializer (the trace test
//! suite round-trips through `Debug` instead). This stand-in therefore
//! ships the two trait names and derive macros with *no data model*:
//! deriving compiles to empty marker impls. If a future PR adds a real
//! serializer, replace this crate with a vendored full serde.

#![forbid(unsafe_code)]

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

// Blanket impls for the std types the workspace composes into derived
// containers (fields are not visited by the empty derives, but generic
// containers like `Vec<Span>` still name these bounds in user code).
macro_rules! mark_primitive {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

mark_primitive!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
