//! Offline stand-in for `crossbeam`.
//!
//! The workbench uses exactly one crossbeam facility — bounded channels
//! in the threaded STATS runtime — so this stand-in implements a small
//! MPMC bounded channel on `Mutex` + `Condvar`. Disconnection semantics
//! match upstream: `send` fails once every receiver is gone, `recv`
//! fails once every sender is gone *and* the queue has drained.

#![forbid(unsafe_code)]

pub mod channel {
    //! Bounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when space frees up (senders wait on this).
        not_full: Condvar,
        /// Signalled when a value arrives (receivers wait on this).
        not_empty: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value like upstream.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a bounded channel with space for `cap` queued values.
    /// A capacity of zero is rounded up to one (upstream implements a
    /// rendezvous; the workbench never requests one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until the value is queued or every receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns the value back when all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < state.cap {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).expect("channel lock");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is gone.
        ///
        /// # Errors
        ///
        /// Fails only when the queue is empty and all senders have been
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn values_cross_threads_in_order() {
            let (tx, rx) = bounded::<u32>(2);
            let producer = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_capacity_blocks_until_drained() {
            let (tx, rx) = bounded::<u64>(1);
            let producer = thread::spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap(); // must wait for the first recv
                3u64
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(producer.join().unwrap(), 3);
        }

        #[test]
        fn many_producers_one_consumer() {
            let (tx, rx) = bounded::<usize>(4);
            let mut handles = Vec::new();
            for p in 0..8 {
                let tx = tx.clone();
                handles.push(thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 50 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut seen = vec![false; 400];
            while let Ok(v) = rx.recv() {
                seen[v] = true;
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(seen.iter().all(|s| *s));
        }
    }
}
