//! Watch a STATS run through the telemetry layer: stream the JSONL event
//! log to stderr while the run executes, then render the counter snapshot
//! as a table, as Prometheus exposition text, and as a folded-stacks
//! profile ready for a flamegraph tool.
//!
//! ```sh
//! cargo run --release --example live_telemetry [benchmark]
//! ```

use stats_telemetry::{export, Event, TelemetrySink};
use stats_workbench::bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

struct Watch;

impl WorkloadVisitor for Watch {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        let scale = Scale(0.1);
        let n = scale.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(w, 28, scale);

        // One counter shard per chunk; lifecycle events stream to stderr
        // as they happen (a file writer works the same way — this is what
        // `stats run --telemetry <path>` wires up).
        let sink = TelemetrySink::new(cfg.chunks).with_event_writer(Box::new(std::io::stderr()));
        sink.event(&Event::RunStarted {
            benchmark: w.name().to_string(),
            runtime: "simulated",
            inputs: n,
            chunks: cfg.chunks,
            lookback: cfg.lookback,
            extra_states: cfg.extra_states,
            seed: FIGURE_SEED,
        });

        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run_observed(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                FIGURE_SEED,
                Some(&sink),
            )
            .expect("valid configuration");
        sink.flush();

        let snap = sink.snapshot();
        println!("== counter table ==\n{}", export::table(&snap));
        println!("== prometheus exposition ==\n{}", export::prometheus(&snap));
        println!(
            "== folded stacks (pipe into a flamegraph tool) ==\n{}",
            export::folded(&report.execution.trace)
        );
        println!(
            "run: {:.2}x speedup, {} aborts, commit rate {:.2}",
            report.speedup(),
            report.aborts(),
            snap.commit_rate()
        );
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "swaptions".into());
    assert!(
        BENCHMARK_NAMES.contains(&name.as_str()),
        "unknown benchmark {name:?}; choose one of {BENCHMARK_NAMES:?}"
    );
    dispatch(&name, Watch);
}
