//! Energy profile of the three TLP configurations (the STATS profiler of
//! §II-C "collects profiling information such as execution time and
//! energy consumption"; §IV-A gives the machine's 120 W-per-socket
//! envelope).
//!
//! ```sh
//! cargo run --release --example energy_profile [benchmark]
//! ```
//!
//! Shows the race-to-idle effect: parallel runs burn more instantaneous
//! power but finish so much sooner that total energy drops.

use stats_workbench::bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::core::Config;
use stats_workbench::platform::{EnergyModel, Topology};
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

struct Profile;

impl WorkloadVisitor for Profile {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        let scale = Scale(0.5);
        let n = scale.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let rt = SimulatedRuntime::paper_machine();
        let model = EnergyModel::paper_machine();
        let topo = Topology::paper_machine();
        println!(
            "benchmark: {} | machine peak power {:.0} W\n",
            w.name(),
            model.peak_watts(&topo)
        );
        println!(
            "{:<22} {:>9} {:>12} {:>12} {:>14}",
            "configuration", "speedup", "time [ms]", "energy [J]", "EDP [J*s]"
        );
        let tuned = tuned_config(w, 28, scale);
        for (label, cfg) in [
            ("sequential", Config::sequential()),
            ("original TLP", Config::original_only()),
            (
                "Seq. STATS",
                Config {
                    combine_inner_tlp: false,
                    ..tuned
                },
            ),
            ("Par. STATS", tuned),
        ] {
            let report = rt
                .run(
                    w.name(),
                    w,
                    &inputs,
                    cfg,
                    w.inner_parallelism(),
                    FIGURE_SEED,
                )
                .expect("valid configuration");
            let trace = &report.execution.trace;
            let seconds = report.execution.makespan.get() as f64 / model.frequency_hz;
            println!(
                "{:<22} {:>8.2}x {:>12.2} {:>12.3} {:>14.5}",
                label,
                report.speedup(),
                seconds * 1e3,
                model.energy_joules(trace, &topo),
                model.energy_delay(trace, &topo),
            );
        }
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "swaptions".to_string());
    assert!(
        BENCHMARK_NAMES.contains(&name.as_str()),
        "unknown benchmark {name:?}; choose one of {BENCHMARK_NAMES:?}"
    );
    dispatch(&name, Profile);
}
