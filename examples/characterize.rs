//! Characterize one benchmark's overhead the way the paper does (§V-B):
//! run it on the modeled 28-core machine, then perform the what-if
//! critical-path analysis that attributes every lost speedup point to an
//! overhead source.
//!
//! ```sh
//! cargo run --release --example characterize [benchmark] [scale]
//! ```
//!
//! `benchmark` defaults to `facedet-and-track` (the paper's sync-bound
//! case); `scale` (0..=1) scales the native input count.

use stats_workbench::bench::attribution::{attribute, LossBreakdown};
use stats_workbench::bench::pipeline::{run_benchmark, tuned_config, Machines, Scale, FIGURE_SEED};
use stats_workbench::trace::histogram::render_span_stats;
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

struct Characterize {
    scale: Scale,
}

impl WorkloadVisitor for Characterize {
    type Output = LossBreakdown;
    fn visit<W: Workload>(self, w: &W) -> LossBreakdown {
        let machines = Machines::paper();
        let cfg = tuned_config(w, 28, self.scale);
        println!(
            "benchmark: {} | tuned config: {} chunks, lookback {}, {} extra states, combined TLP: {}",
            w.name(),
            cfg.chunks,
            cfg.lookback,
            cfg.extra_states,
            cfg.combine_inner_tlp
        );
        attribute(w, &machines.cores28, cfg, self.scale, FIGURE_SEED)
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "facedet-and-track".to_string());
    let scale = Scale(
        std::env::args()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0),
    );
    assert!(
        BENCHMARK_NAMES.contains(&name.as_str()),
        "unknown benchmark {name:?}; choose one of {BENCHMARK_NAMES:?}"
    );

    let breakdown = dispatch(&name, Characterize { scale });
    println!(
        "\nachieved speedup: {:.2}x of an ideal {:.0}x ({:.1}% lost); commit rate {:.0}%\n",
        breakdown.achieved,
        breakdown.ideal,
        breakdown.total_lost_percent(),
        breakdown.commit_rate * 100.0
    );
    println!("speedup lost per overhead source (normalized to the total):");
    let mut shares = breakdown.normalized_percent();
    shares.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    for (cat, pct) in shares {
        if pct > 0.05 {
            let bar = "#".repeat((pct * 1.5).round() as usize);
            println!("  {:<16} {:>5.1}%  {}", cat.name(), pct, bar);
        }
    }
    println!("\ndominant source: {}", breakdown.dominant().name());

    // Span-level statistics of the instrumented trace (§V-B's raw data).
    struct Spans {
        scale: Scale,
    }
    impl WorkloadVisitor for Spans {
        type Output = String;
        fn visit<W: Workload>(self, w: &W) -> String {
            let machines = Machines::paper();
            let cfg = tuned_config(w, 28, self.scale);
            let report = run_benchmark(w, &machines.cores28, cfg, self.scale, FIGURE_SEED);
            render_span_stats(&report.execution.trace)
        }
    }
    println!("\nspan durations by category (cycles):");
    println!("{}", dispatch(&name, Spans { scale }));
}
