//! Visualize a STATS execution the way the paper draws Figs. 4-8: one row
//! per logical thread, time flowing left to right, with each overhead
//! category as its own glyph — then replay the benchmark's memory/branch
//! behaviour through the microarchitecture simulators.
//!
//! ```sh
//! cargo run --release --example timeline_view [benchmark]
//! ```

use stats_workbench::bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::trace::timeline::{render_timeline, TimelineOptions};
use stats_workbench::uarch::{HierarchyConfig, MultiCore};
use stats_workbench::workloads::{dispatch, ExecMode, Workload, WorkloadVisitor, BENCHMARK_NAMES};

struct Show;

impl WorkloadVisitor for Show {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        // A small slice of the stream keeps the timeline legible.
        let scale = Scale(0.1);
        let n = scale.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(w, 28, scale);
        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                FIGURE_SEED,
            )
            .expect("valid configuration");

        println!(
            "{}",
            render_timeline(
                &report.execution.trace,
                &TimelineOptions {
                    width: 100,
                    max_threads: 20,
                }
            )
        );
        println!(
            "speedup {:.2}x on 28 cores, utilization {:.0}%\n",
            report.speedup(),
            report.execution.utilization() * 100.0
        );

        // Microarchitectural view (Table II's instruments).
        for mode in [ExecMode::Sequential, ExecMode::StatsTlp] {
            let (cores, sockets) = match mode {
                ExecMode::Sequential => (1, 1),
                _ => (28, 2),
            };
            let mut mc = MultiCore::new(cores, sockets, &HierarchyConfig::haswell());
            for (i, mut p) in w.uarch_profiles(mode).into_iter().enumerate() {
                p.accesses /= 50; // sample for the demo
                p.branches /= 50;
                mc.replay(i % cores, &p, i as u64);
            }
            let c = mc.counters();
            println!(
                "{mode:?}: L1D miss {:.1}%, LLC miss {:.1}%, branch mispredict {:.1}%",
                c.l1d.miss_rate() * 100.0,
                c.llc.miss_rate() * 100.0,
                c.branch_rate() * 100.0
            );
        }
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "facedet-and-track".to_string());
    assert!(
        BENCHMARK_NAMES.contains(&name.as_str()),
        "unknown benchmark {name:?}; choose one of {BENCHMARK_NAMES:?}"
    );
    dispatch(&name, Show);
}
