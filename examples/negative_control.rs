//! The benchmark the paper excluded, run anyway: `fluidanimate`.
//!
//! ```sh
//! cargo run --release --example negative_control
//! ```
//!
//! §IV-C: "We did not consider fluidanimate because the STATS
//! parallelization had no significant impact in the program's
//! performance." The fluid state has *long* memory — an alternative
//! producer replaying a handful of frames cannot reconstruct the velocity
//! field — so every speculation aborts and the execution degenerates to
//! serial-plus-overhead. This example demonstrates that the workbench's
//! speculation machinery fails honestly where it should.

use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::core::{Config, InnerParallelism};
use stats_workbench::workloads::fluidanimate::FluidAnimate;
use stats_workbench::workloads::Workload;

fn main() {
    let w = FluidAnimate::paper();
    let inputs = w.generate_inputs(600, 3);
    let rt = SimulatedRuntime::paper_machine();

    println!("fluidanimate: the paper's excluded benchmark\n");
    println!(
        "{:<28} {:>9} {:>13} {:>9}",
        "configuration", "speedup", "commit rate", "aborts"
    );
    for (label, cfg) in [
        ("original TLP only", Config::original_only()),
        ("STATS, 4 chunks, k=8", Config::stats_only(4, 8, 1)),
        ("STATS, 14 chunks, k=16", Config::stats_only(14, 16, 2)),
        ("STATS, 28 chunks, k=8", Config::stats_only(28, 8, 4)),
    ] {
        let inner = if cfg.combine_inner_tlp {
            w.inner_parallelism()
        } else {
            InnerParallelism::none()
        };
        let report = rt
            .run("fluidanimate", &w, &inputs, cfg, inner, 9)
            .expect("valid configuration");
        let boundaries = cfg.chunks.saturating_sub(1);
        let commit = if boundaries == 0 {
            1.0
        } else {
            1.0 - report.aborts() as f64 / boundaries as f64
        };
        println!(
            "{:<28} {:>8.2}x {:>12.0}% {:>6}/{}",
            label,
            report.speedup(),
            commit * 100.0,
            report.aborts(),
            boundaries
        );
    }
    println!(
        "\nEvery speculative configuration aborts its way back to a serial \
         chain:\nthe short-memory property does not hold, so STATS has \
         nothing to extract —\nexactly the paper's reason for excluding it (§IV-C)."
    );
}
