//! The STATS autotuning loop of Fig. 3: explore the design space of a
//! benchmark with the OpenTuner-style ensemble, profiling each candidate
//! configuration on the simulated 28-core machine.
//!
//! ```sh
//! cargo run --release --example autotune [benchmark] [budget]
//! ```

use stats_workbench::autotuner::{Strategy, Tuner};
use stats_workbench::bench::pipeline::{Scale, FIGURE_SEED};
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::core::DesignSpace;
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

struct Tune {
    budget: usize,
}

impl WorkloadVisitor for Tune {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        // Training inputs are distinct from the evaluation inputs (§IV-C:
        // "To find the best configuration for a benchmark we used training
        // inputs, which are different from the native inputs").
        let scale = Scale(0.25);
        let n = scale.inputs_for(w);
        let inputs = w.generate_inputs(n, 0x7EA1_1216);
        let rt = SimulatedRuntime::paper_machine();
        let space = DesignSpace::for_inputs(n, 28, w.inner_parallelism().is_parallel());
        println!(
            "benchmark: {} | design space: {} valid configurations | budget: {}",
            w.name(),
            space.size(),
            self.budget
        );

        let tuner = Tuner::new(space, self.budget, FIGURE_SEED);
        let mut evals = 0usize;
        let report = tuner.tune(Strategy::Ensemble, |cfg| {
            evals += 1;
            let run = rt
                .run(
                    "autotune",
                    w,
                    &inputs,
                    cfg,
                    w.inner_parallelism(),
                    FIGURE_SEED,
                )
                .expect("valid config");
            // The profiler's objective: execution time in cycles.
            run.execution.makespan.get() as f64
        });

        println!(
            "explored {} configurations",
            report.configurations_explored()
        );
        let conv = report.convergence();
        for (i, cost) in conv.iter().enumerate() {
            if i == 0 || i + 1 == conv.len() || (i % (conv.len() / 8).max(1)) == 0 {
                println!(
                    "  after {:>3} evaluations: best makespan {:>12.0} cycles",
                    i + 1,
                    cost
                );
            }
        }
        let best = report.best;
        println!(
            "best configuration: {} chunks, lookback {}, {} extra states, combined TLP: {}",
            best.chunks, best.lookback, best.extra_states, best.combine_inner_tlp
        );
        let final_run = rt
            .run(
                "autotuned",
                w,
                &inputs,
                best,
                w.inner_parallelism(),
                FIGURE_SEED,
            )
            .expect("valid config");
        println!(
            "autotuned speedup: {:.2}x on 28 cores\n",
            final_run.speedup()
        );
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "swaptions".to_string());
    let budget = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    assert!(
        BENCHMARK_NAMES.contains(&name.as_str()),
        "unknown benchmark {name:?}; choose one of {BENCHMARK_NAMES:?}"
    );
    dispatch(&name, Tune { budget });
}
