//! The paper's driving example (§II-A): bodytrack's particle filter
//! parallelized across frames by STATS.
//!
//! ```sh
//! cargo run --release --example bodytrack_tracking
//! ```
//!
//! Generates a synthetic 600-frame body-motion stream, tracks it
//! sequentially and under STATS, and reports tracking quality (mean
//! Euclidean error vs. the stream's ground truth) and the simulated
//! 28-core speedup — demonstrating that speculation preserves output
//! quality while the chunks run in parallel.

use stats_workbench::core::runtime::sequential::run_sequential;
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::core::speculation::run_speculative;
use stats_workbench::workloads::bodytrack::BodyTrack;
use stats_workbench::workloads::quality::mean_euclidean;
use stats_workbench::workloads::Workload;

fn main() {
    let tracker = BodyTrack::paper();
    let frames = tracker.generate_inputs(600, 7);
    let truths: Vec<Vec<f64>> = frames.iter().map(|f| f.truth.clone()).collect();
    let seed = 99;

    // Sequential tracking (the original program).
    let seq = run_sequential(&tracker, &frames, seed);
    let seq_err = mean_euclidean(&seq.outputs[20..], &truths[20..]);
    println!("sequential tracking error: {seq_err:.4} (16-D pose units)");

    // STATS-parallel tracking: 12 chunks, lookback 5 frames, 4 extra
    // original states per boundary (the tuned configuration).
    let config = tracker.tuned_config(28);
    let outcome = run_speculative(&tracker, &frames, config, seed);
    let stats_err = mean_euclidean(&outcome.outputs[20..], &truths[20..]);
    println!(
        "STATS tracking error:      {stats_err:.4}  (commit rate {:.0}%)",
        outcome.commit_rate() * 100.0
    );

    // Quality is preserved: the speculative chunks track as well as the
    // sequential chain (Fig. 16's observation).
    let q_seq = tracker.quality(&frames, &seq.outputs);
    let q_stats = tracker.quality(&frames, &outcome.outputs);
    println!("quality scores: sequential {q_seq:.3}, STATS {q_stats:.3}");

    // And the simulated 28-core machine shows the speedup this buys.
    let rt = SimulatedRuntime::paper_machine();
    let report = rt
        .run(
            "bodytrack",
            &tracker,
            &frames,
            config,
            tracker.inner_parallelism(),
            seed,
        )
        .expect("valid configuration");
    println!(
        "simulated speedup on 28 cores: {:.2}x ({} threads, {:.1} MB of states)",
        report.speedup(),
        report.accounting.threads,
        report.accounting.state_footprint() as f64 / 1e6,
    );
}
