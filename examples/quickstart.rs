//! Quickstart: parallelize your own nondeterministic computation with the
//! STATS execution model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The example defines a small nondeterministic stream program (a noisy
//! exponential moving average), exposes its state dependence through the
//! [`StateDependence`] trait, and runs it three ways: sequentially, under
//! the simulated STATS runtime on a modeled 28-core machine, and under the
//! real threaded STATS runtime on the host.

use stats_workbench::core::rng::StatsRng;
use stats_workbench::core::runtime::sequential::run_sequential;
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::core::runtime::threaded::run_threaded;
use stats_workbench::core::{Config, InnerParallelism, StateDependence, UpdateCost};

/// A noisy sensor-smoothing stream: the state is the smoothed estimate,
/// and each update blends in one new reading plus measurement noise.
struct Smoother;

impl StateDependence for Smoother {
    type State = f64;
    type Input = f64;
    type Output = f64;

    fn fresh_state(&self) -> f64 {
        0.0
    }

    fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
        // Nondeterministic: real sensor pipelines dither their filters.
        *state = 0.6 * *state + 0.4 * (*input + rng.noise(0.01));
        // Pretend each update costs ~200k cycles of native work.
        (*state, UpdateCost::with_work(200_000))
    }

    fn states_match(&self, a: &f64, b: &f64) -> bool {
        // Application-specific acceptance: estimates within 5% of the
        // signal amplitude are interchangeable.
        (a - b).abs() < 0.05
    }

    fn state_bytes(&self) -> usize {
        8
    }
}

fn main() {
    let inputs: Vec<f64> = (0..2_800).map(|i| (i as f64 * 0.01).sin()).collect();
    let seed = 42;

    // 1. The program as written: one dependence chain.
    let seq = run_sequential(&Smoother, &inputs, seed);
    println!(
        "sequential: {} outputs, final state {:.4}",
        seq.outputs.len(),
        seq.final_state
    );

    // 2. STATS on the paper's modeled 28-core machine: the chain is split
    //    into 28 chunks; alternative producers exploit the smoother's
    //    short memory (~16 inputs) to speculate each chunk's start state.
    let config = Config::stats_only(28, 16, 2);
    let rt = SimulatedRuntime::paper_machine();
    let report = rt
        .run(
            "quickstart",
            &Smoother,
            &inputs,
            config,
            InnerParallelism::none(),
            seed,
        )
        .expect("valid configuration");
    println!(
        "simulated STATS: speedup {:.2}x on 28 cores, {} aborts, {} threads, {} states",
        report.speedup(),
        report.aborts(),
        report.accounting.threads,
        report.accounting.states,
    );

    // 3. The same protocol on real host threads. Decisions are identical
    //    to the simulation because every random stream is derived from
    //    (seed, role), never from scheduling.
    let threaded = run_threaded(&Smoother, &inputs, config, seed);
    println!(
        "threaded STATS: {} outputs in {:?}, {} aborts (same decisions as simulated: {})",
        threaded.outputs.len(),
        threaded.elapsed,
        threaded.aborts(),
        threaded.decisions == report.decisions,
    );
    assert_eq!(threaded.outputs, report.outputs);
    println!("outputs are bit-identical across runtimes ✓");
}
