//! Online clustering under STATS: the `streamcluster` scenario.
//!
//! ```sh
//! cargo run --release --example stream_clustering
//! ```
//!
//! Clusters a drifting point stream sequentially and under STATS, showing
//! the paper's counterintuitive §V-C effect: the chunked execution does
//! *less* total work, because freshly seeded chunk states carry less
//! inertia and adapt to the drift in fewer refinement passes.

use stats_workbench::core::runtime::sequential::run_sequential;
use stats_workbench::core::speculation::run_speculative;
use stats_workbench::workloads::streamcluster::StreamCluster;
use stats_workbench::workloads::Workload;

fn main() {
    let clusterer = StreamCluster::paper();
    let batches = clusterer.generate_inputs(2_800, 3);
    let seed = 5;

    let seq = run_sequential(&clusterer, &batches, seed);
    let seq_cost = seq.outputs[2_000..].iter().sum::<f64>() / 800.0;
    println!(
        "sequential: clustering cost {seq_cost:.4}, total work {:.2}G cycles",
        seq.cost.work as f64 / 1e9
    );

    let config = clusterer.tuned_config(28);
    let outcome = run_speculative(&clusterer, &batches, config, seed);
    let stats_cost = outcome.outputs[2_000..].iter().sum::<f64>() / 800.0;
    println!(
        "STATS ({} chunks): clustering cost {stats_cost:.4}, realized work {:.2}G cycles",
        config.chunks,
        outcome.realized_work() as f64 / 1e9
    );

    let ratio = outcome.realized_work() as f64 / seq.cost.work as f64;
    println!(
        "work ratio STATS/sequential: {ratio:.3} — the parallel version \
         converges faster (Fig. 14's negative bar)",
    );
    println!(
        "commit rate: {:.0}% over {} speculative chunks",
        outcome.commit_rate() * 100.0,
        config.chunks - 1
    );

    // Quality check: both clusterings serve the stream equally well.
    let q_seq = clusterer.quality(&batches, &seq.outputs);
    let q_stats = clusterer.quality(&batches, &outcome.outputs);
    println!("quality: sequential {q_seq:.3}, STATS {q_stats:.3}");
}
