//! A lightweight item-level Rust parser on top of [`crate::lex`].
//!
//! The hermetic build has no `syn`, so the interprocedural passes work on
//! a structure recovered directly from the token stream: modules, `impl`
//! and `trait` blocks, `use` aliases, and `fn` items with their signature
//! and body as token ranges. This is exactly enough structure for the
//! call graph and taint engine — it is *not* a general Rust parser:
//!
//! * Function bodies are opaque token ranges; nested `fn` items inside a
//!   body are attributed to the enclosing function (a sound
//!   over-approximation for taint: the nested body's tokens stay in the
//!   enclosing function's scan range).
//! * Const-generic braces in signatures (`fn f<const N: usize>() ->
//!   [u8; {N}]`) would be taken for a body start; the workspace does not
//!   use them.
//! * `#[cfg(test)]` modules and `#[test]` functions are marked
//!   `test_only` so the workspace passes can exclude deliberately
//!   nondeterministic test code.

use crate::lex::{lex, LexedFile, Tok, TokKind};

/// One `use` declaration leaf: the name it binds in this file's scope
/// and the path segments it stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// Local name (last segment, or the `as` rename).
    pub alias: String,
    /// Full path segments as written (including the head crate/`crate`).
    pub segs: Vec<String>,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`update`).
    pub name: String,
    /// Fully qualified segments: `crate :: modules… :: [SelfTy] :: name`.
    pub segs: Vec<String>,
    /// The `impl` type this function belongs to, if any.
    pub self_ty: Option<String>,
    /// The trait being implemented/declared, if any.
    pub trait_name: Option<String>,
    /// Token range `[start, end)` of the signature: from the `fn` token
    /// up to (excluding) the body `{` or the terminating `;`.
    pub sig: (usize, usize),
    /// Token range `[start, end)` strictly inside the body braces, or
    /// `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` token.
    pub line: usize,
    /// 1-based column of the `fn` token.
    pub col: usize,
    /// Whether this item lives under `#[cfg(test)]` or is a `#[test]`.
    pub test_only: bool,
    /// Parameter names, in order (`self` receivers excluded).
    pub params: Vec<String>,
    /// The subset of `params` with callable types (`impl Fn…`, `dyn
    /// Fn…`, `fn(…)`, or a generic parameter bounded by `Fn…`).
    pub fn_like_params: Vec<String>,
}

impl FnDef {
    /// `segs` joined with `::`, for messages.
    pub fn display(&self) -> String {
        self.segs.join("::")
    }
}

/// One parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Display path (used for rule path scoping and diagnostics).
    pub path: String,
    /// The underlying token stream and side tables.
    pub lexed: LexedFile,
    /// Canonical crate identifier this file belongs to (see
    /// [`module_path_of`]).
    pub crate_ident: String,
    /// Module segments of this file within its crate.
    pub module: Vec<String>,
    /// All function items, in source order.
    pub fns: Vec<FnDef>,
    /// All `use` aliases visible in this file.
    pub uses: Vec<UseAlias>,
}

/// Derive `(crate_ident, module_segments)` from a file path.
///
/// `crates/core/src/runtime/pool.rs` → (`core`, `["runtime", "pool"]`);
/// `lib.rs`/`main.rs`/`mod.rs` contribute no segment of their own. When
/// the path has no `src` component the file stem becomes a single-file
/// crate. Hyphens in directory names become underscores.
pub fn module_path_of(path: &str) -> (String, Vec<String>) {
    let comps: Vec<&str> = path.split(['/', '\\']).filter(|c| !c.is_empty()).collect();
    let src_pos = comps.iter().rposition(|c| *c == "src");
    match src_pos {
        Some(p) => {
            let crate_dir = if p > 0 { comps[p - 1] } else { "crate" };
            let mut module: Vec<String> = comps[p + 1..]
                .iter()
                .map(|c| c.trim_end_matches(".rs").replace('-', "_"))
                .collect();
            if matches!(
                module.last().map(String::as_str),
                Some("lib" | "main" | "mod")
            ) {
                module.pop();
            }
            (crate_dir.replace('-', "_"), module)
        }
        None => {
            let stem = comps
                .last()
                .map(|c| c.trim_end_matches(".rs"))
                .unwrap_or("crate");
            (stem.replace('-', "_"), Vec::new())
        }
    }
}

/// Parse one file. Never fails: unparseable stretches are skipped token
/// by token, so the linter degrades gracefully on any input.
pub fn parse_file(path: &str, source: &str) -> ParsedFile {
    let lexed = lex(source);
    let (crate_ident, module) = module_path_of(path);
    let mut root_segs = vec![crate_ident.clone()];
    root_segs.extend(module.iter().cloned());
    let mut p = Parser {
        toks: &lexed.tokens,
        i: 0,
        fns: Vec::new(),
        uses: Vec::new(),
    };
    let end = lexed.tokens.len();
    p.items(&root_segs, false, None, None, end);
    ParsedFile {
        path: path.to_string(),
        crate_ident,
        module,
        fns: p.fns,
        uses: p.uses,
        lexed,
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    fns: Vec<FnDef>,
    uses: Vec<UseAlias>,
}

impl<'a> Parser<'a> {
    fn at_punct(&self, c: char) -> bool {
        self.toks.get(self.i).is_some_and(|t| t.is_punct(c))
    }

    /// Index just past the brace matching `toks[open]` (which must be
    /// `{`); `toks.len()` when unterminated.
    fn brace_end(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.toks.len() {
            if self.toks[j].is_punct('{') {
                depth += 1;
            } else if self.toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Index just past the paren matching `toks[open]` (`(`).
    fn paren_end(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.toks.len() {
            if self.toks[j].is_punct('(') {
                depth += 1;
            } else if self.toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Skip a balanced generic argument list starting at `<`. Honors the
    /// `->` arrow (its `>` is not a closer). Returns the index just past
    /// the matching `>`.
    fn angle_end(&self, open: usize) -> usize {
        let mut depth = 0isize;
        let mut j = open;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = j > 0 && self.toks[j - 1].is_punct('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            } else if t.is_punct('(') {
                j = self.paren_end(j);
                continue;
            } else if t.is_punct(';') || t.is_punct('{') {
                // Malformed generics: bail rather than eat the file.
                return j;
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Parse items in `[self.i, end)`.
    fn items(
        &mut self,
        path: &[String],
        test_only: bool,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        end: usize,
    ) {
        // Whether the next item carries `#[cfg(test)]` / `#[test]`.
        let mut pending_test = false;
        while self.i < end {
            let t = &self.toks[self.i];
            // Attributes: `#[…]` and inner `#![…]`.
            if t.is_punct('#') {
                let mut j = self.i + 1;
                if self.toks.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if self.toks.get(j).is_some_and(|t| t.is_punct('[')) {
                    let close = self.bracket_end(j);
                    let attr_toks = &self.toks[j..close];
                    let is_cfg_test = attr_toks.windows(4).any(|w| {
                        w[0].is_ident("cfg") && w[1].is_punct('(') && w[2].is_ident("test")
                    }) || attr_toks.iter().take(2).any(|t| t.is_ident("test"));
                    if is_cfg_test {
                        pending_test = true;
                    }
                    self.i = close;
                } else {
                    self.i += 1;
                }
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "mod" => {
                        let name = self.ident_at(self.i + 1);
                        self.i += 1;
                        if let Some(name) = name {
                            self.i += 1;
                            if self.at_punct('{') {
                                let close = self.brace_end(self.i);
                                let mut sub = path.to_vec();
                                sub.push(name);
                                self.i += 1;
                                self.items(
                                    &sub,
                                    test_only || pending_test,
                                    None,
                                    None,
                                    close.saturating_sub(1),
                                );
                                self.i = close;
                            } else if self.at_punct(';') {
                                self.i += 1;
                            }
                        }
                        pending_test = false;
                        continue;
                    }
                    "impl" => {
                        let (ty, tr, body_open) = self.impl_header(self.i + 1);
                        match body_open {
                            Some(open) => {
                                let close = self.brace_end(open);
                                self.i = open + 1;
                                self.items(
                                    path,
                                    test_only || pending_test,
                                    ty.as_deref(),
                                    tr.as_deref(),
                                    close.saturating_sub(1),
                                );
                                self.i = close;
                            }
                            None => self.i += 1,
                        }
                        pending_test = false;
                        continue;
                    }
                    "trait" => {
                        let name = self.ident_at(self.i + 1);
                        // Scan to the body `{` (bounds may hold generics).
                        let mut j = self.i + 1;
                        while j < end {
                            if self.toks[j].is_punct('<') {
                                j = self.angle_end(j);
                                continue;
                            }
                            if self.toks[j].is_punct('{') || self.toks[j].is_punct(';') {
                                break;
                            }
                            j += 1;
                        }
                        if j < end && self.toks[j].is_punct('{') {
                            let close = self.brace_end(j);
                            self.i = j + 1;
                            self.items(
                                path,
                                test_only || pending_test,
                                None,
                                name.as_deref(),
                                close.saturating_sub(1),
                            );
                            self.i = close;
                        } else {
                            self.i = (j + 1).min(end);
                        }
                        pending_test = false;
                        continue;
                    }
                    "fn" => {
                        self.fn_item(path, test_only || pending_test, self_ty, trait_name, end);
                        pending_test = false;
                        continue;
                    }
                    "use" => {
                        self.use_item(end);
                        pending_test = false;
                        continue;
                    }
                    "struct" | "enum" | "union" => {
                        // Skip to `;` or past a balanced `{…}` at depth 0.
                        let mut j = self.i + 1;
                        while j < end {
                            if self.toks[j].is_punct('<') {
                                j = self.angle_end(j);
                                continue;
                            }
                            if self.toks[j].is_punct('(') {
                                j = self.paren_end(j);
                                continue;
                            }
                            if self.toks[j].is_punct(';') {
                                j += 1;
                                break;
                            }
                            if self.toks[j].is_punct('{') {
                                j = self.brace_end(j);
                                break;
                            }
                            j += 1;
                        }
                        self.i = j;
                        pending_test = false;
                        continue;
                    }
                    "macro_rules" => {
                        // `macro_rules! name { … }`
                        let mut j = self.i + 1;
                        while j < end && !self.toks[j].is_punct('{') && !self.toks[j].is_punct('(')
                        {
                            j += 1;
                        }
                        self.i = if j < end && self.toks[j].is_punct('{') {
                            self.brace_end(j)
                        } else if j < end {
                            self.paren_end(j)
                        } else {
                            j
                        };
                        pending_test = false;
                        continue;
                    }
                    "static" | "const" | "type" => {
                        // `const fn` is a modifier, not an item of its own.
                        if t.text == "const"
                            && self.toks.get(self.i + 1).is_some_and(|n| n.is_ident("fn"))
                        {
                            self.i += 1;
                            continue;
                        }
                        let mut j = self.i + 1;
                        let mut depth = 0usize;
                        while j < end {
                            if self.toks[j].is_punct('{') || self.toks[j].is_punct('(') {
                                depth += 1;
                            } else if self.toks[j].is_punct('}') || self.toks[j].is_punct(')') {
                                depth = depth.saturating_sub(1);
                            } else if self.toks[j].is_punct(';') && depth == 0 {
                                j += 1;
                                break;
                            }
                            j += 1;
                        }
                        self.i = j;
                        pending_test = false;
                        continue;
                    }
                    // Modifiers: fall through to the next token.
                    "pub" | "async" | "unsafe" | "extern" | "default" => {
                        self.i += 1;
                        // `pub(crate)` etc.
                        if self.at_punct('(') {
                            self.i = self.paren_end(self.i);
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            // Anything else (stray braces from malformed input, macros at
            // item level, …): skip balanced groups so we never descend
            // into non-item token soup.
            if t.is_punct('{') {
                self.i = self.brace_end(self.i);
            } else {
                self.i += 1;
            }
        }
    }

    fn bracket_end(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.toks.len() {
            if self.toks[j].is_punct('[') {
                depth += 1;
            } else if self.toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    fn ident_at(&self, j: usize) -> Option<String> {
        self.toks
            .get(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
    }

    /// Parse an `impl` header starting just after the `impl` token.
    /// Returns `(self_ty, trait_name, body_open_index)`.
    fn impl_header(&self, mut j: usize) -> (Option<String>, Option<String>, Option<usize>) {
        // Skip `impl<…>` generics.
        if self.toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.angle_end(j);
        }
        // Collect the path(s) up to the body. `impl Trait for Type {` or
        // `impl Type {`.
        let mut first: Vec<String> = Vec::new();
        let mut second: Vec<String> = Vec::new();
        let mut saw_for = false;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct('{') {
                let (trait_name, ty) = if saw_for {
                    (first.last().cloned(), second.last().cloned())
                } else {
                    (None, first.last().cloned())
                };
                return (ty, trait_name, Some(j));
            }
            if t.is_punct(';') {
                return (None, None, None);
            }
            if t.is_punct('<') {
                j = self.angle_end(j);
                continue;
            }
            if t.is_ident("for") {
                saw_for = true;
                j += 1;
                continue;
            }
            if t.is_ident("where") {
                // Bounds may mention other types; the names are fixed now.
                let ty_path = if saw_for { &second } else { &first };
                let ty = ty_path.last().cloned();
                let trait_name = if saw_for { first.last().cloned() } else { None };
                // Scan on to the body brace.
                let mut k = j;
                while k < self.toks.len() && !self.toks[k].is_punct('{') {
                    if self.toks[k].is_punct('<') {
                        k = self.angle_end(k);
                        continue;
                    }
                    if self.toks[k].is_punct(';') {
                        return (None, None, None);
                    }
                    k += 1;
                }
                if k < self.toks.len() {
                    return (ty, trait_name, Some(k));
                }
                return (None, None, None);
            }
            if t.kind == TokKind::Ident && !t.is_ident("dyn") {
                if saw_for {
                    second.push(t.text.clone());
                } else {
                    first.push(t.text.clone());
                }
            }
            j += 1;
        }
        (None, None, None)
    }

    /// Parse a `fn` item starting at the `fn` token.
    fn fn_item(
        &mut self,
        path: &[String],
        test_only: bool,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        end: usize,
    ) {
        let fn_tok = self.i;
        let name = match self.ident_at(self.i + 1) {
            Some(n) => n,
            None => {
                self.i += 1;
                return;
            }
        };
        let mut j = self.i + 2;
        // Generics.
        if self.toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.angle_end(j);
        }
        // Parameters.
        let mut params: Vec<String> = Vec::new();
        let mut param_types: Vec<Vec<String>> = Vec::new();
        let params_open = j;
        if self.toks.get(j).is_some_and(|t| t.is_punct('(')) {
            let close = self.paren_end(j);
            self.split_params(params_open + 1, close - 1, &mut params, &mut param_types);
            j = close;
        }
        // Return type / where clause: scan to the body `{` or `;`.
        let sig_tail_start = j;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct('<') {
                j = self.angle_end(j);
                continue;
            }
            if t.is_punct('(') {
                j = self.paren_end(j);
                continue;
            }
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let sig = (fn_tok, j.min(end));
        let body = if j < end && self.toks[j].is_punct('{') {
            let close = self.brace_end(j);
            let b = Some((j + 1, close.saturating_sub(1)));
            self.i = close;
            b
        } else {
            self.i = (j + 1).min(end);
            None
        };
        // Callable params: type mentions Fn/FnMut/FnOnce/`fn`, or is a
        // single generic ident bounded by one of those in the signature
        // (generics or where clause).
        let bound_region: Vec<&Tok> = self.toks[fn_tok..params_open]
            .iter()
            .chain(self.toks[sig_tail_start..sig.1].iter())
            .collect();
        let fn_like = |ty: &[String]| -> bool {
            if ty
                .iter()
                .any(|s| matches!(s.as_str(), "Fn" | "FnMut" | "FnOnce" | "fn"))
            {
                return true;
            }
            // Single generic ident: look for `T : … Fn…` in the bounds.
            let ident_count = ty.iter().filter(|s| !s.is_empty()).count();
            if ident_count == 1 {
                let t_name = &ty[0];
                let mut k = 0;
                while k < bound_region.len() {
                    if bound_region[k].is_ident(t_name)
                        && bound_region.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    {
                        // Scan the bound until `,`, `>`, `{`, or another
                        // `ident :` at the same level.
                        for t in bound_region[k + 1..].iter() {
                            if t.is_punct(',') || t.is_punct('{') {
                                break;
                            }
                            if matches!(t.text.as_str(), "Fn" | "FnMut" | "FnOnce") {
                                return true;
                            }
                        }
                    }
                    k += 1;
                }
            }
            false
        };
        let fn_like_params = params
            .iter()
            .zip(&param_types)
            .filter(|(_, ty)| fn_like(ty))
            .map(|(p, _)| p.clone())
            .collect();
        let mut segs = path.to_vec();
        if let Some(ty) = self_ty {
            segs.push(ty.to_string());
        }
        segs.push(name.clone());
        self.fns.push(FnDef {
            name,
            segs,
            self_ty: self_ty.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            sig,
            body,
            line: self.toks[fn_tok].line,
            col: self.toks[fn_tok].col,
            test_only,
            params,
            fn_like_params,
        });
    }

    /// Split a parameter list `[start, end)` (inside the parens) into
    /// names and type token texts.
    fn split_params(
        &self,
        start: usize,
        end: usize,
        names: &mut Vec<String>,
        types: &mut Vec<Vec<String>>,
    ) {
        let mut j = start;
        let mut chunk_start = j;
        let flush = |a: usize, b: usize, names: &mut Vec<String>, types: &mut Vec<Vec<String>>| {
            let toks = &self.toks[a..b.min(end)];
            if toks.is_empty() || toks.iter().any(|t| t.is_ident("self")) {
                return;
            }
            // name = first ident before the top-level `:`; type = the rest.
            let colon = toks.iter().position(|t| t.is_punct(':'));
            if let Some(c) = colon {
                let name = toks[..c]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"));
                if let Some(name) = name {
                    names.push(name.text.clone());
                    types.push(
                        toks[c + 1..]
                            .iter()
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone())
                            .collect(),
                    );
                }
            }
        };
        while j < end {
            let t = &self.toks[j];
            if t.is_punct('<') {
                j = self.angle_end(j);
                continue;
            }
            if t.is_punct('(') {
                j = self.paren_end(j);
                continue;
            }
            if t.is_punct('[') {
                j = self.bracket_end(j);
                continue;
            }
            if t.is_punct(',') {
                flush(chunk_start, j, names, types);
                chunk_start = j + 1;
            }
            j += 1;
        }
        flush(chunk_start, end, names, types);
    }

    /// Parse a `use` declaration starting at the `use` token, recording
    /// every leaf alias.
    fn use_item(&mut self, end: usize) {
        let mut j = self.i + 1;
        let stop = {
            let mut k = j;
            let mut depth = 0usize;
            while k < end {
                if self.toks[k].is_punct('{') {
                    depth += 1;
                } else if self.toks[k].is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if self.toks[k].is_punct(';') && depth == 0 {
                    break;
                }
                k += 1;
            }
            k
        };
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut j, stop, &mut prefix);
        self.i = (stop + 1).min(end);
    }

    /// Parse one use-tree at `[*j, stop)` with `prefix` already read.
    fn use_tree(&mut self, j: &mut usize, stop: usize, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        while *j < stop {
            let t = &self.toks[*j];
            if t.kind == TokKind::Ident && t.text != "as" {
                prefix.push(t.text.clone());
                *j += 1;
                continue;
            }
            if t.is_ident("as") || (t.kind == TokKind::Ident && t.text == "as") {
                // `path as alias`
                if let Some(alias) = self.ident_at(*j + 1) {
                    self.uses.push(UseAlias {
                        alias,
                        segs: prefix.clone(),
                    });
                    prefix.truncate(depth_at_entry);
                    *j += 2;
                    // Consume to the next `,` or `}`.
                    while *j < stop && !self.toks[*j].is_punct(',') && !self.toks[*j].is_punct('}')
                    {
                        *j += 1;
                    }
                    continue;
                }
                *j += 1;
                continue;
            }
            if t.is_punct(':') {
                *j += 1;
                continue;
            }
            if t.is_punct('{') {
                *j += 1;
                self.use_tree(j, stop, prefix);
                continue;
            }
            if t.is_punct(',') {
                if prefix.len() > depth_at_entry {
                    self.flush_use_leaf(prefix);
                    prefix.truncate(depth_at_entry);
                }
                *j += 1;
                continue;
            }
            if t.is_punct('}') {
                if prefix.len() > depth_at_entry {
                    self.flush_use_leaf(prefix);
                    prefix.truncate(depth_at_entry);
                }
                *j += 1;
                return;
            }
            if t.is_punct('*') {
                // Glob import: nothing nameable to record.
                prefix.truncate(depth_at_entry);
                *j += 1;
                continue;
            }
            *j += 1;
        }
        if prefix.len() > depth_at_entry {
            self.flush_use_leaf(prefix);
            prefix.truncate(depth_at_entry);
        }
    }

    fn flush_use_leaf(&mut self, segs: &[String]) {
        if let Some(alias) = segs.last() {
            // `use x::y::self` binds `y`.
            let (alias, segs) = if alias == "self" && segs.len() > 1 {
                (segs[segs.len() - 2].clone(), &segs[..segs.len() - 1])
            } else {
                (alias.clone(), segs)
            };
            self.uses.push(UseAlias {
                alias,
                segs: segs.to_vec(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/demo/src/lib.rs", src)
    }

    fn fn_named<'a>(f: &'a ParsedFile, name: &str) -> &'a FnDef {
        f.fns
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found in {:?}", f.fns))
    }

    #[test]
    fn module_paths_from_file_layout() {
        assert_eq!(
            module_path_of("crates/core/src/runtime/pool.rs"),
            (
                "core".to_string(),
                vec!["runtime".to_string(), "pool".to_string()]
            )
        );
        assert_eq!(
            module_path_of("crates/core/src/lib.rs"),
            ("core".to_string(), vec![])
        );
        assert_eq!(
            module_path_of("crates/core/src/runtime/mod.rs"),
            ("core".to_string(), vec!["runtime".to_string()])
        );
        assert_eq!(
            module_path_of("standalone.rs"),
            ("standalone".to_string(), vec![])
        );
    }

    #[test]
    fn free_fns_and_impl_methods_get_qualified_names() {
        let f = parse(
            "pub fn helper(x: u64) -> u64 { x }\n\
             struct W;\n\
             impl W { fn update(&self) { helper(1); } }\n\
             impl Clone for W { fn clone(&self) -> W { W } }",
        );
        assert_eq!(fn_named(&f, "helper").display(), "demo::helper");
        let update = fn_named(&f, "update");
        assert_eq!(update.display(), "demo::W::update");
        assert_eq!(update.self_ty.as_deref(), Some("W"));
        let clone = fn_named(&f, "clone");
        assert_eq!(clone.self_ty.as_deref(), Some("W"));
        assert_eq!(clone.trait_name.as_deref(), Some("Clone"));
    }

    #[test]
    fn inline_modules_extend_the_path() {
        let f = parse("mod inner { pub mod deep { pub fn leaf() {} } }");
        assert_eq!(fn_named(&f, "leaf").display(), "demo::inner::deep::leaf");
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_marked() {
        let f = parse(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn check() { prod(); }\n  fn aux() {}\n}",
        );
        assert!(!fn_named(&f, "prod").test_only);
        assert!(fn_named(&f, "check").test_only);
        assert!(fn_named(&f, "aux").test_only);
    }

    #[test]
    fn trait_decls_have_no_body_but_defaults_do() {
        let f = parse("trait T { fn must(&self); fn dflt(&self) { self.must() } }");
        assert!(fn_named(&f, "must").body.is_none());
        assert!(fn_named(&f, "dflt").body.is_some());
        assert_eq!(fn_named(&f, "dflt").trait_name.as_deref(), Some("T"));
    }

    #[test]
    fn generic_signatures_do_not_derail_body_detection() {
        let f = parse(
            "fn run<W: Clone, F>(w: &W, obj: F) -> Vec<u64>\n\
             where F: FnMut(u64) -> u64 { vec![obj(1)] }",
        );
        let run = fn_named(&f, "run");
        assert!(run.body.is_some());
        assert_eq!(run.params, ["w", "obj"]);
        assert_eq!(run.fn_like_params, ["obj"]);
    }

    #[test]
    fn fn_like_params_detect_impl_dyn_and_pointer_types() {
        let f = parse(
            "fn a(cb: impl Fn(u64) -> u64) { cb(1); }\n\
             fn b(cb: &dyn FnMut(u64)) {}\n\
             fn c(cb: fn(u64) -> u64) {}\n\
             fn d(plain: u64) {}",
        );
        assert_eq!(fn_named(&f, "a").fn_like_params, ["cb"]);
        assert_eq!(fn_named(&f, "b").fn_like_params, ["cb"]);
        assert_eq!(fn_named(&f, "c").fn_like_params, ["cb"]);
        assert!(fn_named(&f, "d").fn_like_params.is_empty());
    }

    #[test]
    fn use_aliases_flatten_groups_and_renames() {
        let f = parse(
            "use std::collections::BTreeMap;\n\
             use crate::runtime::{pool::WorkerPool, threaded as th};\n\
             use other_crate::helpers::jitter;",
        );
        let find = |alias: &str| {
            f.uses
                .iter()
                .find(|u| u.alias == alias)
                .unwrap_or_else(|| panic!("alias {alias} missing: {:?}", f.uses))
        };
        assert_eq!(find("BTreeMap").segs, ["std", "collections", "BTreeMap"]);
        assert_eq!(
            find("WorkerPool").segs,
            ["crate", "runtime", "pool", "WorkerPool"]
        );
        assert_eq!(find("th").segs, ["crate", "runtime", "threaded"]);
        assert_eq!(find("jitter").segs, ["other_crate", "helpers", "jitter"]);
    }

    #[test]
    fn raw_identifier_fn_names_do_not_open_keyword_bodies() {
        // `r#fn` is an identifier, not the `fn` keyword: the parser must
        // not treat `r#fn` as starting a function item.
        let f = parse("fn caller() { let r#fn = 1; helper(r#fn); }\nfn helper(x: i32) {}");
        assert_eq!(f.fns.len(), 2);
        assert!(fn_named(&f, "caller").body.is_some());
    }

    #[test]
    fn impl_trait_for_type_with_generics() {
        let f = parse("impl<T: Clone> Searcher for Grid<T> { fn ask(&mut self) {} }");
        let ask = fn_named(&f, "ask");
        assert_eq!(ask.self_ty.as_deref(), Some("Grid"));
        assert_eq!(ask.trait_name.as_deref(), Some("Searcher"));
    }

    #[test]
    fn bodies_are_token_ranges_inside_the_braces() {
        let f = parse("fn f() { inner_call(); }");
        let d = fn_named(&f, "f");
        let (a, b) = d.body.unwrap();
        let texts: Vec<&str> = f.lexed.tokens[a..b]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(texts, ["inner_call", "(", ")", ";"]);
    }
}
