//! Protocol model checker for the STATS speculation protocol (§II-B).
//!
//! The semantic layer ([`stats_core::speculation`]) and the threaded
//! runtime both claim the same property: for a fixed `(workload, inputs,
//! config, master_seed)`, every commit/abort decision and every output is
//! determined — no matter how the runtime schedules the work. This module
//! *checks* that claim on small inputs by re-executing the protocol
//! through the public API only (`fresh_state`/`update`/`states_match` and
//! the per-role streams) and exploring the schedules the runtimes never
//! take:
//!
//! * **replay-decisions** — an independent serial re-execution of the
//!   protocol must reproduce the semantic layer's outputs and decisions
//!   exactly (sequential commit order, abort-rerun state equivalence);
//! * **schedule-independence** — the threaded runtime must agree with the
//!   semantic layer (the paper's determinism claim across runtimes);
//! * **completion-order** — computing the chunk workers in *every*
//!   permutation of completion order must yield identical worker results
//!   and identical coordinated outcomes (catches hidden state shared
//!   between updates);
//! * **validation-invariance** — at every chunk boundary, the
//!   commit/abort verdict must not depend on the order the original
//!   states are compared in, and `states_match` must be pure.

use stats_core::rng::{StatsRng, StreamRole};
use stats_core::runtime::threaded::run_threaded;
use stats_core::{
    plan_balanced, run_speculative, ChunkDecision, ChunkPlan, Config, StateDependence,
};
use stats_workloads::Workload;
use std::fmt;
use std::ops::Range;

/// Outcome of one model-checker property.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Property name (`replay-decisions`, …).
    pub name: &'static str,
    /// Whether the property held.
    pub passed: bool,
    /// What was verified, or how it failed.
    pub detail: String,
}

/// All properties checked for one `(workload, inputs, config, seed)`.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Benchmark name.
    pub workload: String,
    /// Input-stream length checked.
    pub inputs: usize,
    /// Configuration checked.
    pub config: Config,
    /// Master seed checked.
    pub seed: u64,
    /// Per-property results.
    pub results: Vec<CheckResult>,
}

impl CheckReport {
    /// Whether every property held.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model check: {} (n={}, chunks={}, lookback={}, extra_states={}, seed={})",
            self.workload,
            self.inputs,
            self.config.chunks,
            self.config.lookback,
            self.config.extra_states,
            self.seed
        )?;
        for (i, r) in self.results.iter().enumerate() {
            let status = if r.passed { "PASS" } else { "FAIL" };
            let sep = if i + 1 == self.results.len() {
                ""
            } else {
                "\n"
            };
            write!(f, "  {status} {:<22} {}{sep}", r.name, r.detail)?;
        }
        Ok(())
    }
}

/// One chunk worker's product, computed through the public API exactly as
/// the threaded runtime's worker phase does: alternative producer over the
/// `k` preceding inputs, then the speculative run of the chunk.
struct WorkerOut<S, O> {
    /// The speculative (alt-producer) state validation compares; `None`
    /// for chunk 0, which starts from the true fresh state.
    spec_state: Option<S>,
    outputs: Vec<O>,
    /// State snapshot before the last `k` inputs (replica replay point).
    snapshot: S,
    final_state: S,
}

impl<S: Clone, O: Clone> Clone for WorkerOut<S, O> {
    fn clone(&self) -> Self {
        WorkerOut {
            spec_state: self.spec_state.clone(),
            outputs: self.outputs.clone(),
            snapshot: self.snapshot.clone(),
            final_state: self.final_state.clone(),
        }
    }
}

impl<S: PartialEq, O: PartialEq> PartialEq for WorkerOut<S, O> {
    fn eq(&self, other: &Self) -> bool {
        self.spec_state == other.spec_state
            && self.outputs == other.outputs
            && self.snapshot == other.snapshot
            && self.final_state == other.final_state
    }
}

/// Run `inputs[range]` serially from `start`, snapshotting the state
/// before the last `k` inputs — the public-API mirror of the runtimes'
/// segment execution.
fn run_segment_public<W: StateDependence>(
    workload: &W,
    start: W::State,
    inputs: &[W::Input],
    range: Range<usize>,
    k: usize,
    rng: &mut StatsRng,
) -> (Vec<W::Output>, W::State, W::State) {
    let split = range.len().saturating_sub(k);
    let mut state = start;
    let mut snapshot = state.clone();
    let mut outputs = Vec::with_capacity(range.len());
    for (i, idx) in range.enumerate() {
        if i == split {
            snapshot = state.clone();
        }
        let (out, _) = workload.update(&mut state, &inputs[idx], rng);
        outputs.push(out);
    }
    (outputs, snapshot, state)
}

fn run_worker<W: StateDependence>(
    workload: &W,
    inputs: &[W::Input],
    plan: &ChunkPlan,
    c: usize,
    k: usize,
    seed: u64,
) -> WorkerOut<W::State, W::Output> {
    let range = plan.chunk(c);
    let (spec_state, start) = if c == 0 {
        (None, workload.fresh_state())
    } else {
        let mut rng = StatsRng::derive(seed, StreamRole::AltProducer(c));
        let mut st = workload.fresh_state();
        for input in &inputs[range.start - k..range.start] {
            let _ = workload.update(&mut st, input, &mut rng);
        }
        (Some(st.clone()), st)
    };
    let mut rng = StatsRng::derive(seed, StreamRole::Chunk(c));
    let (outputs, snapshot, final_state) =
        run_segment_public(workload, start, inputs, range, k, &mut rng);
    WorkerOut {
        spec_state,
        outputs,
        snapshot,
        final_state,
    }
}

/// The coordinator's view of one chunk boundary: the speculative state and
/// the original states it was compared against (producer's final state
/// first, then the replicas in stream order).
struct Boundary<S> {
    spec: S,
    originals: Vec<S>,
}

/// A full coordinated run assembled from worker results.
struct CoordRun<S, O> {
    outputs: Vec<O>,
    decisions: Vec<ChunkDecision>,
    boundaries: Vec<Boundary<S>>,
}

/// Run the sequential-order commit protocol over precomputed worker
/// results, exactly as both runtimes' coordinators do.
fn coordinate<W: StateDependence>(
    workload: &W,
    inputs: &[W::Input],
    plan: &ChunkPlan,
    config: Config,
    seed: u64,
    workers: Vec<WorkerOut<W::State, W::Output>>,
) -> CoordRun<W::State, W::Output> {
    let k = config.lookback;
    let m = config.extra_states;
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut decisions = Vec::with_capacity(workers.len());
    let mut boundaries = Vec::new();
    let mut prev_final = workload.fresh_state();
    let mut prev_snapshot = workload.fresh_state();
    for (c, wk) in workers.into_iter().enumerate() {
        if c == 0 {
            decisions.push(ChunkDecision::First);
            outputs.extend(wk.outputs);
            prev_final = wk.final_state;
            prev_snapshot = wk.snapshot;
            continue;
        }
        let spec = wk
            .spec_state
            .clone()
            .expect("speculative chunk has an alt state");
        // Original states: the producer's realized final state, then m
        // replicas replaying its last k inputs from the snapshot with
        // independent streams.
        let prev_range = plan.chunk(c - 1);
        let replay_start = prev_range.end.saturating_sub(k).max(prev_range.start);
        let mut originals = vec![prev_final.clone()];
        for j in 0..m {
            let mut rng = StatsRng::derive(
                seed,
                StreamRole::OriginalState {
                    chunk: c - 1,
                    replica: j,
                },
            );
            let mut st = prev_snapshot.clone();
            for input in &inputs[replay_start..prev_range.end] {
                let _ = workload.update(&mut st, input, &mut rng);
            }
            originals.push(st);
        }
        let matched = originals.iter().any(|o| workload.states_match(&spec, o));
        boundaries.push(Boundary { spec, originals });
        if matched {
            decisions.push(ChunkDecision::Committed);
            outputs.extend(wk.outputs);
            prev_final = wk.final_state;
            prev_snapshot = wk.snapshot;
        } else {
            decisions.push(ChunkDecision::Aborted);
            let mut rng = StatsRng::derive(seed, StreamRole::Rerun(c));
            let (out, snapshot, final_state) = run_segment_public(
                workload,
                prev_final.clone(),
                inputs,
                plan.chunk(c),
                k,
                &mut rng,
            );
            outputs.extend(out);
            prev_final = final_state;
            prev_snapshot = snapshot;
        }
    }
    CoordRun {
        outputs,
        decisions,
        boundaries,
    }
}

/// All permutations of `0..n` (Heap's algorithm), capped at `cap`.
fn permutations(n: usize, cap: usize) -> Vec<Vec<usize>> {
    fn heap(k: usize, arr: &mut Vec<usize>, out: &mut Vec<Vec<usize>>, cap: usize) {
        if out.len() >= cap {
            return;
        }
        if k <= 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, arr, out, cap);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap(n, &mut arr, &mut out, cap);
    out
}

/// Check every protocol property for one workload at one operating point.
///
/// Generic over any [`Workload`] whose state and output support equality —
/// true of every benchmark in the suite (use [`check_benchmark`] for
/// dispatch by name).
pub fn check_workload<W>(workload: &W, n: usize, config: Config, seed: u64) -> CheckReport
where
    W: Workload,
    W::State: PartialEq,
    W::Output: PartialEq + Clone,
{
    config
        .validate(n)
        .expect("invalid configuration for the check's input length");
    let inputs = workload.generate_inputs(n, seed);
    let plan = plan_balanced(n, config.chunks);
    let k = config.lookback;
    let chunks = plan.len();
    let mut results = Vec::new();

    // Reference: workers in index order, then the sequential coordinator.
    let ref_workers: Vec<_> = (0..chunks)
        .map(|c| run_worker(workload, &inputs, &plan, c, k, seed))
        .collect();
    let reference = coordinate(workload, &inputs, &plan, config, seed, ref_workers.clone());
    let semantic = run_speculative(workload, &inputs, config, seed);
    let semantic_decisions: Vec<_> = semantic.chunks.iter().map(|c| c.decision).collect();
    let aborts = semantic.aborts();

    // 1. replay-decisions: the independent public-API re-execution agrees
    // with the semantic layer on every output and decision.
    let replay_ok =
        reference.outputs == semantic.outputs && reference.decisions == semantic_decisions;
    results.push(CheckResult {
        name: "replay-decisions",
        passed: replay_ok,
        detail: if replay_ok {
            format!("serial replay reproduces {chunks} chunks, {aborts} abort(s), {n} outputs")
        } else {
            format!(
                "replay diverged: decisions {:?} vs {:?}, outputs equal: {}",
                reference.decisions,
                semantic_decisions,
                reference.outputs == semantic.outputs
            )
        },
    });

    // 2. schedule-independence: the threaded runtime takes the same
    // decisions and produces the same outputs as the semantic layer.
    let threaded = run_threaded(workload, &inputs, config, seed);
    let sched_ok = threaded.outputs == semantic.outputs && threaded.decisions == semantic_decisions;
    results.push(CheckResult {
        name: "schedule-independence",
        passed: sched_ok,
        detail: if sched_ok {
            "threaded and simulated runtimes agree on all decisions and outputs".to_string()
        } else {
            format!(
                "threaded diverged: decisions {:?} vs {:?}, outputs equal: {}",
                threaded.decisions,
                semantic_decisions,
                threaded.outputs == semantic.outputs
            )
        },
    });

    // 3. completion-order: computing workers in any completion order must
    // change nothing (workers share no state, only inputs and streams).
    const PERM_CAP: usize = 24;
    let perms = permutations(chunks, PERM_CAP);
    let mut order_failure: Option<String> = None;
    for order in &perms {
        let mut slots: Vec<Option<WorkerOut<W::State, W::Output>>> =
            (0..chunks).map(|_| None).collect();
        for &c in order {
            slots[c] = Some(run_worker(workload, &inputs, &plan, c, k, seed));
        }
        let workers: Vec<_> = slots
            .into_iter()
            .map(|s| s.expect("all chunks computed"))
            .collect();
        if workers != ref_workers {
            order_failure = Some(format!(
                "worker results changed when computed in order {order:?}"
            ));
            break;
        }
        let run = coordinate(workload, &inputs, &plan, config, seed, workers);
        if run.outputs != reference.outputs || run.decisions != reference.decisions {
            order_failure = Some(format!("coordinated outcome changed under order {order:?}"));
            break;
        }
    }
    results.push(CheckResult {
        name: "completion-order",
        passed: order_failure.is_none(),
        detail: order_failure.unwrap_or_else(|| {
            format!(
                "{} completion order(s) of {chunks} workers yield identical outcomes",
                perms.len()
            )
        }),
    });

    // 4. validation-invariance: at every boundary the verdict is the same
    // whichever order the original states are compared in, and repeated
    // `states_match` calls are stable (purity).
    let mut validation_failure: Option<String> = None;
    'boundaries: for (i, b) in reference.boundaries.iter().enumerate() {
        let forward: Vec<bool> = b
            .originals
            .iter()
            .map(|o| workload.states_match(&b.spec, o))
            .collect();
        for (j, o) in b.originals.iter().enumerate() {
            if workload.states_match(&b.spec, o) != forward[j] {
                validation_failure = Some(format!(
                    "states_match is unstable at chunk {} original {j}",
                    i + 1
                ));
                break 'boundaries;
            }
        }
        let reversed_any = b
            .originals
            .iter()
            .rev()
            .any(|o| workload.states_match(&b.spec, o));
        if reversed_any != forward.iter().any(|&m| m) {
            validation_failure = Some(format!(
                "verdict at chunk {} depends on comparison order",
                i + 1
            ));
            break;
        }
    }
    let boundaries_checked = reference.boundaries.len();
    results.push(CheckResult {
        name: "validation-invariance",
        passed: validation_failure.is_none(),
        detail: validation_failure.unwrap_or_else(|| {
            format!("{boundaries_checked} boundary verdicts order-invariant, states_match pure")
        }),
    });

    CheckReport {
        workload: workload.name().to_string(),
        inputs: n,
        config,
        seed,
        results,
    }
}

/// Run [`check_workload`] against a benchmark by suite name.
///
/// Dispatch is a concrete match (not [`stats_workloads::dispatch`])
/// because the checks need `State: PartialEq` bounds the generic visitor
/// cannot express.
///
/// # Panics
///
/// Panics if `name` is not one of
/// [`stats_workloads::EXTENDED_BENCHMARK_NAMES`].
pub fn check_benchmark(name: &str, n: usize, config: Config, seed: u64) -> CheckReport {
    match name {
        "swaptions" => check_workload(
            &stats_workloads::swaptions::Swaptions::paper(),
            n,
            config,
            seed,
        ),
        "streamcluster" => check_workload(
            &stats_workloads::streamcluster::StreamCluster::paper(),
            n,
            config,
            seed,
        ),
        "streamclassifier" => check_workload(
            &stats_workloads::streamclassifier::StreamClassifier::paper(),
            n,
            config,
            seed,
        ),
        "bodytrack" => check_workload(
            &stats_workloads::bodytrack::BodyTrack::paper(),
            n,
            config,
            seed,
        ),
        "facetrack" => check_workload(
            &stats_workloads::facetrack::FaceTrack::paper(),
            n,
            config,
            seed,
        ),
        "facedet-and-track" => check_workload(
            &stats_workloads::facedet_and_track::FaceDetAndTrack::paper(),
            n,
            config,
            seed,
        ),
        "fluidanimate" => check_workload(
            &stats_workloads::fluidanimate::FluidAnimate::paper(),
            n,
            config,
            seed,
        ),
        other => panic!("unknown benchmark {other:?}; see EXTENDED_BENCHMARK_NAMES"),
    }
}

/// The default operating point for `stats-analyzer check`: small enough
/// to enumerate all 24 completion orders, big enough to speculate.
pub fn default_check_config() -> (usize, Config) {
    (32, Config::stats_only(4, 2, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutations_enumerate_and_cap() {
        assert_eq!(permutations(3, 24).len(), 6);
        assert_eq!(permutations(4, 24).len(), 24);
        assert_eq!(permutations(5, 24).len(), 24);
        let perms = permutations(3, 24);
        let mut unique = perms.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn swaptions_passes_all_checks() {
        let (n, cfg) = default_check_config();
        let report = check_benchmark("swaptions", n, cfg, 7);
        assert!(report.passed(), "{report}");
        assert_eq!(report.results.len(), 4);
    }

    #[test]
    fn report_renders_pass_lines() {
        let (n, cfg) = default_check_config();
        let report = check_benchmark("streamclassifier", n, cfg, 7);
        let text = report.to_string();
        assert!(text.contains("model check: streamclassifier"));
        assert!(text.contains("replay-decisions"));
        assert!(text.contains("schedule-independence"));
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        check_benchmark("blackscholes", 32, Config::stats_only(4, 2, 2), 1);
    }

    #[test]
    fn negative_control_still_satisfies_protocol_invariants() {
        // fluidanimate aborts everywhere (long memory), but the protocol
        // invariants hold regardless of the commit rate.
        let report = check_benchmark("fluidanimate", 32, Config::stats_only(4, 2, 1), 3);
        assert!(report.passed(), "{report}");
    }
}
