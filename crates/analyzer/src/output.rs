//! Machine-readable renderings of a lint [`Report`]: a JSON document for
//! artifacts/tooling and GitHub Actions error annotations for CI.
//!
//! The JSON is hand-rolled (the workspace is hermetic — no serde); the
//! schema is small and stable:
//!
//! ```json
//! {
//!   "findings": [
//!     { "rule": "ND009", "message": "…", "file": "…", "line": 1,
//!       "col": 1, "len": 1, "snippet": "…", "hint": "…",
//!       "waived": false, "waiver_reason": null,
//!       "chain": [ { "label": "…", "file": "…", "line": 1, "col": 1 } ] }
//!   ],
//!   "summary": {
//!     "total": 0, "unwaived": 0, "waived": 0,
//!     "graph": { "static_sites": 0, "static_edges": 0,
//!                "dynamic_sites": 0, "unresolved_sites": 0 }
//!   }
//! }
//! ```

use crate::lint::Report;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full report as a JSON document (trailing newline included).
pub fn json_report(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let d = &f.diag;
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\n      \"rule\": \"{}\",\n      \"message\": \"{}\",\n      \
             \"file\": \"{}\",\n      \"line\": {},\n      \"col\": {},\n      \
             \"len\": {},\n      \"snippet\": \"{}\",\n      \"hint\": \"{}\",\n      \
             \"waived\": {},\n      \"waiver_reason\": {},\n      \"chain\": [",
            json_escape(d.rule),
            json_escape(&d.message),
            json_escape(&d.file),
            d.line,
            d.col,
            d.len,
            json_escape(&d.snippet),
            json_escape(d.hint),
            f.waived,
            match &f.waiver_reason {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".to_string(),
            },
        );
        for (j, n) in d.notes.iter().enumerate() {
            out.push_str(if j == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "        {{ \"label\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {} }}",
                json_escape(&n.label),
                json_escape(&n.file),
                n.line,
                n.col,
            );
        }
        if !d.notes.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    let total = report.findings.len();
    let unwaived = report.unwaived().count();
    let g = &report.stats;
    let _ = write!(
        out,
        "],\n  \"summary\": {{\n    \"total\": {total},\n    \"unwaived\": {unwaived},\n    \
         \"waived\": {},\n    \"graph\": {{\n      \"static_sites\": {},\n      \
         \"static_edges\": {},\n      \"dynamic_sites\": {},\n      \
         \"unresolved_sites\": {}\n    }}\n  }}\n}}\n",
        total - unwaived,
        g.static_sites,
        g.static_edges,
        g.dynamic_sites,
        g.unresolved_sites,
    );
    out
}

/// Escape an annotation *property* (file, title): GitHub's workflow-command
/// grammar reserves `%`, newlines, `:` and `,` there.
fn gh_escape_property(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// Escape an annotation *message*: only `%` and newlines are reserved.
fn gh_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Render every unwaived finding as a GitHub Actions `::error` workflow
/// command, one per line, so the findings surface inline on the PR diff.
/// Waived findings are omitted (they are visible in the JSON artifact).
pub fn github_annotations(report: &Report) -> String {
    let mut out = String::new();
    for f in report.unwaived() {
        let d = &f.diag;
        let mut message = format!("{} [{}]", d.message, d.rule);
        for n in &d.notes {
            let _ = write!(message, "\n{} ({}:{}:{})", n.label, n.file, n.line, n.col);
        }
        let _ = write!(message, "\nhelp: {}", d.hint);
        let _ = writeln!(
            out,
            "::error file={},line={},col={},endColumn={},title={}::{}",
            gh_escape_property(&d.file),
            d.line,
            d.col,
            d.col + d.len.max(1),
            gh_escape_property(&format!("stats-analyzer {}", d.rule)),
            gh_escape_data(&message),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint_workspace_sources;

    fn sample_report() -> Report {
        lint_workspace_sources(&[(
            "crates/demo/src/lib.rs",
            "// stats-analyzer: allow(ND003): report ordering is sorted downstream\n\
             use std::collections::HashMap;\n\
             fn f() { let t = Instant::now(); }\n",
        )])
    }

    #[test]
    fn json_report_has_findings_and_summary() {
        let text = json_report(&sample_report());
        assert!(text.contains("\"rule\": \"ND002\""));
        assert!(text.contains("\"waived\": true"));
        assert!(text.contains("\"waiver_reason\": \"report ordering is sorted downstream\""));
        assert!(text.contains("\"total\": 2"));
        assert!(text.contains("\"unwaived\": 1"));
        assert!(text.contains("\"static_sites\""));
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let text = json_report(&Report::default());
        assert!(text.contains("\"findings\": []"));
        assert!(text.contains("\"total\": 0"));
    }

    #[test]
    fn annotations_cover_only_unwaived_findings() {
        let text = github_annotations(&sample_report());
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("::error file=crates/demo/src/lib.rs,line=3,"));
        assert!(lines[0].contains("title=stats-analyzer ND002"));
        // Newlines inside the message are %-escaped onto one line.
        assert!(lines[0].contains("%0Ahelp: "));
    }

    #[test]
    fn property_escaping_covers_commas_and_colons() {
        assert_eq!(gh_escape_property("a:b,c%d"), "a%3Ab%2Cc%25d");
        assert_eq!(gh_escape_data("x%y\nz"), "x%25y%0Az");
    }
}
