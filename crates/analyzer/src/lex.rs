//! A lightweight Rust lexer for the lint pass.
//!
//! The build environment is hermetic (no `syn`), so the lint rules work on
//! a token stream produced here instead of a full AST. The lexer
//! understands exactly as much Rust as the rules need: comments (line,
//! nested block, doc), string/char/byte literals, raw strings, lifetimes,
//! identifiers, and punctuation — with line/column positions throughout.
//! Rules then match short token patterns (`Instant :: now`) and use brace
//! depth to scope matches to function bodies, which is reliable because
//! the token stream already has all comment/string content removed.

/// Kinds of tokens the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Any literal (number, string, char, byte string).
    Literal,
    /// A lifetime (`'a`); kept distinct so `'a` is not a char literal.
    Lifetime,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Literal`] string literals this is the
    /// placeholder `"\"\""` — rules never need literal contents.
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }
}

/// One `stats-analyzer: allow(RULE): reason` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the directive comment starts on.
    pub line: usize,
    /// The allowed rule id (`ND002`, …).
    pub rule: String,
    /// The free-text justification after the closing paren (may be
    /// empty; CI can insist on one via `--require-waiver-reasons`).
    pub reason: String,
}

/// A lexed source file: the token stream plus the side tables rules use.
#[derive(Debug, Clone)]
pub struct LexedFile {
    /// All tokens, in order.
    pub tokens: Vec<Tok>,
    /// Source lines (for diagnostics snippets).
    pub lines: Vec<String>,
    /// Lines carrying an `stats-analyzer: allow(RULE)` directive, with the
    /// allowed rule id. A directive suppresses findings of that rule on
    /// its own line and on the next line.
    pub allows: Vec<Allow>,
}

impl LexedFile {
    /// Whether rule `id` is allowed at `line` by a directive comment.
    pub fn is_allowed(&self, id: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == id && (line == a.line || line == a.line + 1))
    }

    /// The reason attached to the directive that allows `id` at `line`.
    /// `None` when no directive applies; `Some("")` when one applies but
    /// carries no justification text.
    pub fn waiver_reason(&self, id: &str, line: usize) -> Option<&str> {
        self.allows
            .iter()
            .find(|a| a.rule == id && (line == a.line || line == a.line + 1))
            .map(|a| a.reason.as_str())
    }

    /// The source line at 1-based `line`, or empty.
    pub fn line(&self, line: usize) -> &str {
        self.lines
            .get(line.saturating_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Scan a comment's text for allow directives.
fn scan_allows(comment: &str, line: usize, allows: &mut Vec<Allow>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("stats-analyzer:") {
        rest = &rest[pos + "stats-analyzer:".len()..];
        let trimmed = rest.trim_start();
        if let Some(args) = trimmed.strip_prefix("allow(") {
            if let Some(end) = args.find(')') {
                let reason = args[end + 1..]
                    .trim_start_matches(':')
                    .trim()
                    // A second directive on the same line ends the reason.
                    .split("stats-analyzer:")
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                for rule in args[..end].split(',') {
                    allows.push(Allow {
                        line,
                        rule: rule.trim().to_string(),
                        reason: reason.clone(),
                    });
                }
            }
        }
    }
}

/// Lex `source` into tokens and side tables.
///
/// Unterminated strings or comments end at end-of-file rather than
/// erroring: the linter must degrade gracefully on any input.
pub fn lex(source: &str) -> LexedFile {
    let lines: Vec<String> = source.lines().map(str::to_string).collect();
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    // Shebang line (`#!/usr/bin/env …`): tokens on it are shell syntax,
    // not Rust. An inner attribute `#![…]` at file start stays lexed.
    if chars.first() == Some(&'#') && chars.get(1) == Some(&'!') && chars.get(2) != Some(&'[') {
        while i < chars.len() && chars[i] != '\n' {
            bump!();
        }
    }

    while i < chars.len() {
        let c = chars[i];
        // Line comment (incl. doc comments).
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            let start = i;
            let at_line = line;
            while i < chars.len() && chars[i] != '\n' {
                bump!();
            }
            let text: String = chars[start..i].iter().collect();
            scan_allows(&text, at_line, &mut allows);
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let start = i;
            let at_line = line;
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            let text: String = chars[start..i].iter().collect();
            scan_allows(&text, at_line, &mut allows);
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Raw identifiers: `r#fn`, `r#match`. The token keeps its `r#`
        // prefix so a raw identifier never collides with the keyword it
        // escapes (the parser must not open a body for `r#fn`).
        if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && matches!(chars.get(i + 2), Some(n) if n.is_alphabetic() || *n == '_')
        {
            let (tok_line, tok_col) = (line, col);
            let start = i;
            bump!(); // r
            bump!(); // #
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            tokens.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }
        // Byte strings (`b"…"`) and byte literals (`b'x'`): opaque, like
        // their textual counterparts.
        if c == 'b' && matches!(chars.get(i + 1), Some(&'"') | Some(&'\'')) {
            let (tok_line, tok_col) = (line, col);
            let quote = chars[i + 1];
            bump!(); // b
            bump!(); // opening quote
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    bump!();
                    bump!();
                } else if chars[i] == quote {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            tokens.push(Tok {
                kind: TokKind::Literal,
                text: if quote == '"' { "\"\"" } else { "''" }.to_string(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }
        // Raw strings: r"...", r#"..."#, br#"..."# etc.
        if (c == 'r' || c == 'b') && is_raw_string_start(&chars[i..]) {
            let (tok_line, tok_col) = (line, col);
            // Skip the prefix letters.
            while i < chars.len() && (chars[i] == 'r' || chars[i] == 'b') {
                bump!();
            }
            let mut hashes = 0usize;
            while i < chars.len() && chars[i] == '#' {
                hashes += 1;
                bump!();
            }
            if i < chars.len() && chars[i] == '"' {
                bump!();
                // Scan to closing quote followed by `hashes` hashes.
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if chars.get(i + 1 + h) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=hashes {
                                bump!();
                            }
                            break 'raw;
                        }
                    }
                    bump!();
                }
            }
            tokens.push(Tok {
                kind: TokKind::Literal,
                text: "\"\"".to_string(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }
        // Regular string.
        if c == '"' {
            let (tok_line, tok_col) = (line, col);
            bump!();
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            tokens.push(Tok {
                kind: TokKind::Literal,
                text: "\"\"".to_string(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let (tok_line, tok_col) = (line, col);
            // Lifetime: 'ident not followed by a closing quote.
            let is_lifetime = matches!(chars.get(i + 1), Some(n) if n.is_alphabetic() || *n == '_')
                && chars.get(i + 2) != Some(&'\'');
            if is_lifetime {
                bump!();
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tok_line,
                    col: tok_col,
                });
            } else {
                // Char literal: consume to closing quote, honoring escapes.
                bump!();
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        bump!();
                        bump!();
                    } else if chars[i] == '\'' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
                tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: "''".to_string(),
                    line: tok_line,
                    col: tok_col,
                });
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let (tok_line, tok_col) = (line, col);
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            tokens.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            let (tok_line, tok_col) = (line, col);
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                // Stop at `..` (range) — a number owns at most one dot.
                if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                    break;
                }
                bump!();
            }
            tokens.push(Tok {
                kind: TokKind::Literal,
                text: chars[start..i].iter().collect(),
                line: tok_line,
                col: tok_col,
            });
            continue;
        }
        // Punctuation: one char at a time.
        tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
        bump!();
    }

    LexedFile {
        tokens,
        lines,
        allows,
    }
}

/// Whether `chars` starts a raw-string literal (`r"`, `r#`, `br"`, …).
fn is_raw_string_start(chars: &[char]) -> bool {
    let mut j = 0;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_with_positions() {
        let f = lex("let x = a::b;\nfoo();");
        let idents: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "a", "b", "foo"]);
        let foo = f.tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!((foo.line, foo.col), (2, 1));
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let f = lex("// Instant::now()\n/* HashMap */ let s = \"thread_rng()\";");
        assert!(!f.tokens.iter().any(|t| t.is_ident("Instant")));
        assert!(!f.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!f.tokens.iter().any(|t| t.is_ident("thread_rng")));
        assert!(f.tokens.iter().any(|t| t.is_ident("let")));
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("/* a /* b */ c */ real");
        let idents: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["real"]);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let f = lex("let s = r#\"Instant::now() \" quote\"#; after");
        assert!(!f.tokens.iter().any(|t| t.is_ident("Instant")));
        assert!(f.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "''"));
    }

    #[test]
    fn allow_directives_are_collected() {
        let src = "\n// stats-analyzer: allow(ND002): timing is informative only\nlet t = 1;";
        let f = lex(src);
        assert_eq!(
            f.allows,
            vec![Allow {
                line: 2,
                rule: "ND002".to_string(),
                reason: "timing is informative only".to_string(),
            }]
        );
        assert!(f.is_allowed("ND002", 2));
        assert!(f.is_allowed("ND002", 3));
        assert!(!f.is_allowed("ND002", 4));
        assert!(!f.is_allowed("ND001", 3));
        assert_eq!(
            f.waiver_reason("ND002", 3),
            Some("timing is informative only")
        );
        assert_eq!(f.waiver_reason("ND002", 4), None);
    }

    #[test]
    fn allow_directives_accept_lists() {
        let f = lex("// stats-analyzer: allow(ND001, ND003)");
        assert!(f.is_allowed("ND001", 1));
        assert!(f.is_allowed("ND003", 1));
        // No justification text: the reason is empty, not absent.
        assert_eq!(f.waiver_reason("ND001", 1), Some(""));
    }

    #[test]
    fn shebang_line_is_skipped() {
        let f = lex("#!/usr/bin/env rust\nfn main() {}");
        assert!(f.tokens.iter().all(|t| !t.is_ident("usr")));
        assert!(f.tokens.iter().any(|t| t.is_ident("main")));
        // An inner attribute at file start is NOT a shebang.
        let f = lex("#![forbid(unsafe_code)]\nfn main() {}");
        assert!(f.tokens.iter().any(|t| t.is_ident("forbid")));
    }

    #[test]
    fn raw_identifiers_keep_their_prefix() {
        let f = lex("fn r#fn() { r#match(); }");
        // Exactly one bare `fn` keyword: the raw identifiers keep `r#`.
        let fns = f.tokens.iter().filter(|t| t.is_ident("fn")).count();
        assert_eq!(fns, 1);
        assert!(f.tokens.iter().any(|t| t.is_ident("r#fn")));
        assert!(f.tokens.iter().any(|t| t.is_ident("r#match")));
    }

    #[test]
    fn byte_strings_and_byte_literals_are_opaque() {
        let f = lex("let s = b\"thread_rng\"; let c = b'\\n'; after");
        assert!(!f.tokens.iter().any(|t| t.is_ident("thread_rng")));
        assert!(f.tokens.iter().any(|t| t.is_ident("after")));
        let lits = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn raw_byte_strings_are_opaque() {
        let f = lex("let s = br#\"Instant::now() \" OsRng\"#; tail");
        assert!(!f.tokens.iter().any(|t| t.is_ident("Instant")));
        assert!(!f.tokens.iter().any(|t| t.is_ident("OsRng")));
        assert!(f.tokens.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let f = lex(r#"let s = "a \" Instant::now b"; x"#);
        assert!(!f.tokens.iter().any(|t| t.is_ident("Instant")));
        assert!(f.tokens.iter().any(|t| t.is_ident("x")));
    }
}
