//! Workspace call graph over the item-level AST.
//!
//! Calls are extracted from function-body token ranges and resolved to
//! workspace functions by path and receiver heuristics. Everything that
//! cannot be pinned to a workspace item lands in an explicit bucket:
//!
//! * [`Resolution::Static`] — one or more candidate workspace functions.
//!   Method calls over-approximate to *every* workspace method of that
//!   name (no type inference), which keeps taint sound at the cost of
//!   spurious edges.
//! * [`Resolution::Dynamic`] — the callee is a value: a closure or
//!   `fn`-pointer parameter, a `let`-bound callable, or a parenthesized
//!   call expression. These are the escape hatches ND011 audits.
//! * [`Resolution::Unresolved`] — a named call with no workspace match;
//!   assumed external (`std` or vendored) and reported only in the
//!   graph statistics.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::ast::{parse_file, FnDef, ParsedFile};
use crate::lex::{Tok, TokKind};

/// Global function id: `(file index, fn index within file)`.
pub type FnId = (usize, usize);

/// Where a call site ended up after resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Candidate workspace callees (never empty).
    Static(Vec<FnId>),
    /// Callee is a runtime value (closure/fn-pointer/trait object).
    Dynamic,
    /// Named call with no workspace target; assumed external.
    Unresolved,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The function containing this call.
    pub caller: FnId,
    /// Callee name as written (`jitter`, or `<expr>` for paren calls).
    pub name: String,
    /// Path segments as written, when the call used a path.
    pub path: Vec<String>,
    /// Whether this was a `.name(…)` method call.
    pub is_method: bool,
    /// 1-based line of the callee name token.
    pub line: usize,
    /// 1-based column of the callee name token.
    pub col: usize,
    /// Underline length (callee name length).
    pub len: usize,
    /// Resolution outcome.
    pub resolution: Resolution,
}

/// Aggregate graph statistics, surfaced in reports so the `unresolved`
/// escape hatch stays visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of resolved call sites (each may fan out to several
    /// candidates).
    pub static_sites: usize,
    /// Total static edges after candidate fan-out.
    pub static_edges: usize,
    /// Dynamic (value-callee) sites — ND011's audit surface.
    pub dynamic_sites: usize,
    /// Named calls with no workspace target.
    pub unresolved_sites: usize,
}

/// All parsed files of a scan.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Parsed files, in load order.
    pub files: Vec<ParsedFile>,
}

impl Workspace {
    /// Parse a set of `(path, source)` pairs. Test-only entry point and
    /// the core of [`Workspace::load`].
    pub fn from_sources<P: AsRef<str>, S: AsRef<str>>(sources: &[(P, S)]) -> Workspace {
        let mut files = Vec::with_capacity(sources.len());
        for (path, source) in sources {
            let path = path.as_ref();
            let mut parsed = parse_file(path, source.as_ref());
            if is_test_path(path) {
                for f in &mut parsed.fns {
                    f.test_only = true;
                }
            }
            files.push(parsed);
        }
        Workspace { files }
    }

    /// Load and parse every `.rs` file under `roots`, skipping `target`
    /// and lint-fixture directories.
    pub fn load(roots: &[PathBuf]) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        for root in roots {
            collect_rs_files(root, &mut paths)?;
        }
        paths.sort();
        let mut sources = Vec::with_capacity(paths.len());
        for p in paths {
            let text = std::fs::read_to_string(&p)?;
            sources.push((crate::diag::display_path(&p), text));
        }
        Ok(Workspace::from_sources(&sources))
    }

    /// The function definition behind an id.
    pub fn fn_def(&self, id: FnId) -> &FnDef {
        &self.files[id.0].fns[id.1]
    }

    /// The file containing an id.
    pub fn file_of(&self, id: FnId) -> &ParsedFile {
        &self.files[id.0]
    }

    /// Iterate all functions with their ids.
    pub fn iter_fns(&self) -> impl Iterator<Item = (FnId, &FnDef)> {
        self.files.iter().enumerate().flat_map(|(fi, file)| {
            file.fns
                .iter()
                .enumerate()
                .map(move |(di, d)| ((fi, di), d))
        })
    }

    /// `crate::module::Type::name` display for a function.
    pub fn display_fn(&self, id: FnId) -> String {
        self.fn_def(id).display()
    }
}

/// Whether a path denotes test/bench/example code (everything under a
/// `tests`, `benches`, or `examples` directory).
fn is_test_path(path: &str) -> bool {
    path.split(['/', '\\'])
        .any(|c| matches!(c, "tests" | "benches" | "examples"))
}

/// Recursively collect `.rs` files, skipping `target` build output and
/// `fixtures` trees (lint-test inputs are deliberately dirty).
pub fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The resolved call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All call sites, in deterministic (file, fn, token) order.
    pub sites: Vec<CallSite>,
    /// Site indices per calling function.
    pub out: BTreeMap<FnId, Vec<usize>>,
}

impl CallGraph {
    /// Build the graph for a workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        let index = FnIndex::build(ws);
        let mut graph = CallGraph::default();
        for (id, def) in ws.iter_fns() {
            let Some((start, end)) = def.body else {
                continue;
            };
            let file = ws.file_of(id);
            let extractor = Extractor {
                ws,
                index: &index,
                file,
                def,
                caller: id,
            };
            let sites = extractor.extract(start, end);
            if sites.is_empty() {
                continue;
            }
            let base = graph.sites.len();
            let idxs = (base..base + sites.len()).collect();
            graph.sites.extend(sites);
            graph.out.insert(id, idxs);
        }
        graph
    }

    /// Call sites of one function (empty slice if none).
    pub fn sites_of(&self, id: FnId) -> &[usize] {
        self.out.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> GraphStats {
        let mut s = GraphStats::default();
        for site in &self.sites {
            match &site.resolution {
                Resolution::Static(c) => {
                    s.static_sites += 1;
                    s.static_edges += c.len();
                }
                Resolution::Dynamic => s.dynamic_sites += 1,
                Resolution::Unresolved => s.unresolved_sites += 1,
            }
        }
        s
    }
}

/// Name → candidate ids, split by kind for resolution.
struct FnIndex {
    /// Free functions (no `self_ty`) by bare name.
    free_by_name: BTreeMap<String, Vec<FnId>>,
    /// Methods (`self_ty` present) by bare name.
    methods_by_name: BTreeMap<String, Vec<FnId>>,
}

impl FnIndex {
    fn build(ws: &Workspace) -> FnIndex {
        let mut free_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (id, def) in ws.iter_fns() {
            let bucket = if def.self_ty.is_some() {
                &mut methods_by_name
            } else {
                &mut free_by_name
            };
            bucket.entry(def.name.clone()).or_default().push(id);
        }
        FnIndex {
            free_by_name,
            methods_by_name,
        }
    }
}

/// Keywords that read like calls (`if (…)`, `while (…)`, `return (…)`).
fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "return"
            | "for"
            | "loop"
            | "unsafe"
            | "else"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "mut"
            | "box"
            | "await"
            | "dyn"
            | "fn"
            | "let"
            | "where"
            | "impl"
            | "break"
            | "continue"
            | "yield"
    )
}

struct Extractor<'a> {
    ws: &'a Workspace,
    index: &'a FnIndex,
    file: &'a ParsedFile,
    def: &'a FnDef,
    caller: FnId,
}

impl<'a> Extractor<'a> {
    fn toks(&self) -> &[Tok] {
        &self.file.lexed.tokens
    }

    fn extract(&self, start: usize, end: usize) -> Vec<CallSite> {
        let toks = self.toks();
        let (locals, closure_locals) = collect_locals(toks, start, end);
        let mut sites = Vec::new();
        let mut j = start;
        while j < end {
            let t = &toks[j];
            // `( ident ) (` and `( self . ident ) (`: call of a
            // parenthesized value — dynamic by construction.
            if t.is_punct('(') && j > start && toks[j - 1].is_punct(')') {
                let dyn_open = match () {
                    _ if j >= 3
                        && toks[j - 2].kind == TokKind::Ident
                        && toks[j - 3].is_punct('(') =>
                    {
                        Some(&toks[j - 2])
                    }
                    _ if j >= 5
                        && toks[j - 2].kind == TokKind::Ident
                        && toks[j - 3].is_punct('.')
                        && toks[j - 4].is_ident("self")
                        && toks[j - 5].is_punct('(') =>
                    {
                        Some(&toks[j - 2])
                    }
                    _ => None,
                };
                if let Some(named) = dyn_open {
                    sites.push(CallSite {
                        caller: self.caller,
                        name: named.text.clone(),
                        path: Vec::new(),
                        is_method: false,
                        line: named.line,
                        col: named.col,
                        len: named.text.chars().count().max(1),
                        resolution: Resolution::Dynamic,
                    });
                }
                j += 1;
                continue;
            }
            if t.kind != TokKind::Ident {
                j += 1;
                continue;
            }
            // Callee name must be followed by `(`, optionally with a
            // turbofish `::<…>` in between.
            let mut call_paren = None;
            if j + 1 < end && toks[j + 1].is_punct('(') {
                call_paren = Some(j + 1);
            } else if j + 3 < end
                && toks[j + 1].is_punct(':')
                && toks[j + 2].is_punct(':')
                && toks[j + 3].is_punct('<')
            {
                let after = angle_end(toks, j + 3, end);
                if after < end && toks[after].is_punct('(') {
                    call_paren = Some(after);
                }
            }
            let Some(_paren) = call_paren else {
                j += 1;
                continue;
            };
            let name = t.text.clone();
            if is_call_keyword(&name) {
                j += 1;
                continue;
            }
            // `fn name(` is a nested definition, not a call.
            if j > 0 && toks[j - 1].is_ident("fn") {
                j += 1;
                continue;
            }
            let is_method = j > 0 && toks[j - 1].is_punct('.');
            let mut path = Vec::new();
            if !is_method {
                // Walk `ident ::` pairs backwards to recover the path.
                path.push(name.clone());
                let mut k = j;
                while k >= 3
                    && toks[k - 1].is_punct(':')
                    && toks[k - 2].is_punct(':')
                    && toks[k - 3].kind == TokKind::Ident
                {
                    path.insert(0, toks[k - 3].text.clone());
                    k -= 3;
                }
            }
            // Tuple-struct / enum-variant constructors (`Some(x)`,
            // `Config(…)`) are not calls we track.
            if starts_uppercase(&name) {
                j += 1;
                continue;
            }
            let resolution = if is_method {
                self.resolve_method(&name)
            } else if path.len() > 1 {
                self.resolve_path(&path)
            } else {
                match self.resolve_plain(&name, &locals, &closure_locals) {
                    Some(r) => r,
                    None => {
                        j += 1;
                        continue;
                    }
                }
            };
            sites.push(CallSite {
                caller: self.caller,
                name: name.clone(),
                path: if path.len() > 1 { path } else { Vec::new() },
                is_method,
                line: t.line,
                col: t.col,
                len: name.chars().count().max(1),
                resolution,
            });
            j += 1;
        }
        sites
    }

    /// Drop candidates from test-only code when the caller is
    /// production code.
    fn filter_test(&self, ids: Vec<FnId>) -> Vec<FnId> {
        if self.def.test_only {
            return ids;
        }
        ids.into_iter()
            .filter(|id| !self.ws.fn_def(*id).test_only)
            .collect()
    }

    fn resolve_method(&self, name: &str) -> Resolution {
        let cands = self
            .index
            .methods_by_name
            .get(name)
            .cloned()
            .unwrap_or_default();
        let cands = self.filter_test(cands);
        if cands.is_empty() {
            Resolution::Unresolved
        } else {
            Resolution::Static(cands)
        }
    }

    /// Resolve `a::b::name(…)`.
    fn resolve_path(&self, path: &[String]) -> Resolution {
        // Expand a leading `use` alias.
        let mut segs: Vec<String> = path.to_vec();
        if let Some(alias) = self.file.uses.iter().find(|u| u.alias == segs[0]) {
            let mut expanded = alias.segs.clone();
            expanded.extend(segs[1..].iter().cloned());
            segs = expanded;
        }
        // Normalize the head.
        match segs[0].as_str() {
            "crate" => {
                segs[0] = self.file.crate_ident.clone();
            }
            "self" => {
                let mut head = vec![self.file.crate_ident.clone()];
                head.extend(self.file.module.iter().cloned());
                head.extend(segs[1..].iter().cloned());
                segs = head;
            }
            "super" => {
                let mut module = self.file.module.clone();
                module.pop();
                let mut head = vec![self.file.crate_ident.clone()];
                head.extend(module);
                head.extend(segs[1..].iter().cloned());
                segs = head;
            }
            "Self" => {
                if let Some(ty) = &self.def.self_ty {
                    segs[0] = ty.clone();
                }
            }
            _ => {}
        }
        // Package idents (`stats_core`) alias the crate directory
        // (`core`).
        if let Some(stripped) = segs[0].strip_prefix("stats_") {
            segs[0] = stripped.to_string();
        }
        let name = segs.last().cloned().unwrap_or_default();
        let free = self.index.free_by_name.get(&name);
        let methods = self.index.methods_by_name.get(&name);
        let mut cands: Vec<FnId> = free
            .into_iter()
            .chain(methods)
            .flatten()
            .copied()
            .filter(|id| ends_with_path(&self.ws.fn_def(*id).segs, &segs))
            .collect();
        cands = self.filter_test(cands);
        if cands.is_empty() {
            return Resolution::Unresolved;
        }
        // Prefer same-crate candidates when ambiguous.
        if cands.len() > 1 {
            let same_crate: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|id| self.ws.file_of(*id).crate_ident == self.file.crate_ident)
                .collect();
            if !same_crate.is_empty() {
                cands = same_crate;
            }
        }
        Resolution::Static(cands)
    }

    /// Resolve a bare `name(…)`. `None` means "not a call we track"
    /// (a closure literal bound locally — its body tokens already
    /// belong to this function's scan range).
    fn resolve_plain(
        &self,
        name: &str,
        locals: &[String],
        closure_locals: &[String],
    ) -> Option<Resolution> {
        if closure_locals.iter().any(|l| l == name) {
            return None;
        }
        if self.def.fn_like_params.iter().any(|p| p == name)
            || self.def.params.iter().any(|p| p == name)
            || locals.iter().any(|l| l == name)
        {
            return Some(Resolution::Dynamic);
        }
        // Same-module free function.
        let free = self.index.free_by_name.get(name);
        if let Some(free) = free {
            let same_module: Vec<FnId> = free
                .iter()
                .copied()
                .filter(|id| {
                    let f = self.ws.file_of(*id);
                    f.crate_ident == self.file.crate_ident && f.module == self.file.module
                })
                .collect();
            let same_module = self.filter_test(same_module);
            if !same_module.is_empty() {
                return Some(Resolution::Static(same_module));
            }
        }
        // `use` alias of a function.
        if let Some(alias) = self.file.uses.iter().find(|u| u.alias == name) {
            let mut segs = alias.segs.clone();
            if let Some(stripped) = segs[0].strip_prefix("stats_") {
                segs[0] = stripped.to_string();
            }
            if segs[0] == "crate" {
                segs[0] = self.file.crate_ident.clone();
            }
            let cands: Vec<FnId> = self
                .index
                .free_by_name
                .get(name)
                .into_iter()
                .flatten()
                .copied()
                .filter(|id| ends_with_path(&self.ws.fn_def(*id).segs, &segs))
                .collect();
            let cands = self.filter_test(cands);
            if !cands.is_empty() {
                return Some(Resolution::Static(cands));
            }
        }
        // Unique free function anywhere in the workspace.
        if let Some(free) = free {
            let cands = self.filter_test(free.clone());
            if cands.len() == 1 {
                return Some(Resolution::Static(cands));
            }
        }
        Some(Resolution::Unresolved)
    }
}

fn starts_uppercase(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Whether `fn_segs` ends with `call_segs` (suffix match on qualified
/// paths, so `helpers::jitter` matches `crate_a::helpers::jitter`).
fn ends_with_path(fn_segs: &[String], call_segs: &[String]) -> bool {
    if call_segs.len() > fn_segs.len() {
        return false;
    }
    fn_segs[fn_segs.len() - call_segs.len()..]
        .iter()
        .zip(call_segs)
        .all(|(a, b)| a == b)
}

/// Forward scan past a balanced `<…>` starting at `open`; returns the
/// index just past the matching `>` (or `end`).
fn angle_end(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0isize;
    let mut j = open;
    while j < end {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if toks[j].is_punct(';') || toks[j].is_punct('{') {
            return j;
        }
        j += 1;
    }
    end
}

/// Collect `let`/`for` bound names in `[start, end)`, split into plain
/// locals and closure-literal locals (`let f = |…| …` / `= move |…|`).
fn collect_locals(toks: &[Tok], start: usize, end: usize) -> (Vec<String>, Vec<String>) {
    let mut locals = Vec::new();
    let mut closures = Vec::new();
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if t.is_ident("let") || t.is_ident("for") {
            let stop_ident = if t.is_ident("for") { "in" } else { "" };
            let mut names = Vec::new();
            let mut k = j + 1;
            let mut depth = 0usize;
            while k < end {
                let tk = &toks[k];
                if tk.is_punct('(') || tk.is_punct('[') || tk.is_punct('{') {
                    depth += 1;
                } else if tk.is_punct(')') || tk.is_punct(']') || tk.is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if (depth == 0 && (tk.is_punct('=') || tk.is_punct(';') || tk.is_punct(':')))
                    || (!stop_ident.is_empty() && tk.is_ident(stop_ident))
                {
                    break;
                } else if tk.kind == TokKind::Ident
                    && !starts_uppercase(&tk.text)
                    && !matches!(tk.text.as_str(), "mut" | "ref" | "box" | "_")
                {
                    names.push(tk.text.clone());
                }
                k += 1;
            }
            // Closure literal on the right-hand side?
            let mut is_closure = false;
            if k < end && toks[k].is_punct('=') {
                let mut m = k + 1;
                if m < end && toks[m].is_ident("move") {
                    m += 1;
                }
                if m < end && toks[m].is_punct('|') {
                    is_closure = true;
                }
            }
            if is_closure {
                closures.extend(names);
            } else {
                locals.extend(names);
            }
            j = k.max(j + 1);
            continue;
        }
        j += 1;
    }
    (locals, closures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(sources)
    }

    fn find_fn(ws: &Workspace, name: &str) -> FnId {
        ws.iter_fns()
            .find(|(_, d)| d.name == name)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    fn site<'g>(g: &'g CallGraph, ws: &Workspace, caller: &str, callee: &str) -> &'g CallSite {
        let id = find_fn(ws, caller);
        g.sites_of(id)
            .iter()
            .map(|&i| &g.sites[i])
            .find(|s| s.name == callee)
            .unwrap_or_else(|| panic!("no call to {callee} in {caller}"))
    }

    #[test]
    fn same_module_calls_resolve_statically() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { helper(); }\nfn helper() {}",
        )]);
        let g = CallGraph::build(&w);
        let s = site(&g, &w, "top", "helper");
        assert_eq!(
            s.resolution,
            Resolution::Static(vec![find_fn(&w, "helper")])
        );
    }

    #[test]
    fn cross_module_path_calls_resolve() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "mod helpers;\nfn top() { helpers::jitter(); crate::helpers::jitter(); }",
            ),
            ("crates/a/src/helpers.rs", "pub fn jitter() {}"),
        ]);
        let g = CallGraph::build(&w);
        let jitter = find_fn(&w, "jitter");
        for s in g.sites_of(find_fn(&w, "top")).iter().map(|&i| &g.sites[i]) {
            assert_eq!(s.resolution, Resolution::Static(vec![jitter]));
        }
    }

    #[test]
    fn cross_crate_calls_resolve_via_package_ident() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "fn top() { stats_b::util::leaf(); }"),
            ("crates/b/src/util.rs", "pub fn leaf() {}"),
        ]);
        let g = CallGraph::build(&w);
        let s = site(&g, &w, "top", "leaf");
        assert_eq!(s.resolution, Resolution::Static(vec![find_fn(&w, "leaf")]));
    }

    #[test]
    fn use_aliased_calls_resolve() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "use stats_b::util::leaf;\nfn top() { leaf(); }",
            ),
            ("crates/b/src/util.rs", "pub fn leaf() {}"),
        ]);
        let g = CallGraph::build(&w);
        let s = site(&g, &w, "top", "leaf");
        assert_eq!(s.resolution, Resolution::Static(vec![find_fn(&w, "leaf")]));
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { fn go(&self) {} }\n\
             impl B { fn go(&self) {} }\n\
             fn top(a: &A) { a.go(); }",
        )]);
        let g = CallGraph::build(&w);
        let s = site(&g, &w, "top", "go");
        match &s.resolution {
            Resolution::Static(c) => assert_eq!(c.len(), 2),
            other => panic!("expected static, got {other:?}"),
        }
    }

    #[test]
    fn fn_like_params_and_let_bound_callables_are_dynamic() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn run(cb: impl Fn()) { cb(); }\n\
             fn indirect() { let f = target; f(); }\n\
             fn target() {}",
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(site(&g, &w, "run", "cb").resolution, Resolution::Dynamic);
        assert_eq!(
            site(&g, &w, "indirect", "f").resolution,
            Resolution::Dynamic
        );
    }

    #[test]
    fn closure_literal_locals_are_not_call_sites() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { let add = |x: u64| x + inner(); add(1); }\nfn inner() -> u64 { 0 }",
        )]);
        let g = CallGraph::build(&w);
        let sites: Vec<&CallSite> = g
            .sites_of(find_fn(&w, "top"))
            .iter()
            .map(|&i| &g.sites[i])
            .collect();
        // `inner()` inside the closure body attributes to `top`;
        // `add(1)` itself is skipped.
        assert!(sites.iter().any(|s| s.name == "inner"));
        assert!(!sites.iter().any(|s| s.name == "add"));
    }

    #[test]
    fn external_calls_land_in_the_unresolved_bucket() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { std::mem::swap(&mut 1, &mut 2); unknown_fn(); }",
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(
            site(&g, &w, "top", "swap").resolution,
            Resolution::Unresolved
        );
        assert_eq!(
            site(&g, &w, "top", "unknown_fn").resolution,
            Resolution::Unresolved
        );
        let stats = g.stats();
        assert_eq!(stats.unresolved_sites, 2);
        assert_eq!(stats.static_edges, 0);
    }

    #[test]
    fn constructors_and_macros_are_ignored() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { let x = Some(1); let v = vec![1]; println!(\"{x:?}{v:?}\"); }",
        )]);
        let g = CallGraph::build(&w);
        assert!(g.sites_of(find_fn(&w, "top")).is_empty());
    }

    #[test]
    fn test_only_callees_are_filtered_for_production_callers() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { helper(); }\n\
             #[cfg(test)]\nmod tests { pub fn helper() {} }",
        )]);
        let g = CallGraph::build(&w);
        // The only `helper` is test-only; production `top` cannot call it.
        assert_eq!(
            site(&g, &w, "top", "helper").resolution,
            Resolution::Unresolved
        );
    }

    #[test]
    fn paren_wrapped_field_calls_are_dynamic() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct W { job: Box<dyn Fn()> }\n\
             impl W { fn run(&self) { (self.job)(); } }",
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(site(&g, &w, "run", "job").resolution, Resolution::Dynamic);
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { helper::<u64>(); }\nfn helper<T>() {}",
        )]);
        let g = CallGraph::build(&w);
        let s = site(&g, &w, "top", "helper");
        assert_eq!(
            s.resolution,
            Resolution::Static(vec![find_fn(&w, "helper")])
        );
    }

    #[test]
    fn graph_stats_count_edges_and_buckets() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn top(cb: impl Fn()) { helper(); cb(); std::process::id(); }\nfn helper() {}",
        )]);
        let g = CallGraph::build(&w);
        let s = g.stats();
        assert_eq!(s.static_sites, 1);
        assert_eq!(s.static_edges, 1);
        assert_eq!(s.dynamic_sites, 1);
        assert_eq!(s.unresolved_sites, 1);
    }

    #[test]
    fn files_under_tests_dirs_are_test_only() {
        let w = ws(&[("crates/a/tests/smoke.rs", "fn probe() {}")]);
        let (_, d) = w.iter_fns().next().unwrap();
        assert!(d.test_only);
    }
}
