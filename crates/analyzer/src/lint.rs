//! Determinism and speculation-safety lint rules.
//!
//! STATS's central contract is that *all* nondeterminism flows through the
//! per-role random streams ([`stats_core::rng::StreamRole`]): that is what
//! makes the simulated and threaded runtimes take identical commit/abort
//! decisions, and what makes every figure reproducible from a master seed.
//! These rules flag the ways that contract gets broken in practice:
//!
//! | rule  | finds |
//! |-------|-------|
//! | ND001 | ambient randomness (`thread_rng`, `from_entropy`, `OsRng`) |
//! | ND002 | wall-clock reads (`Instant::now`, `SystemTime::now`) |
//! | ND003 | unordered iteration sources (`HashMap`, `HashSet`) |
//! | ND004 | hidden mutable state (`static mut`, `thread_local!`, cells) |
//! | ND005 | RNG streams built inside `update`/`states_match` bodies |
//! | ND006 | `println!`/`eprintln!` in runtime hot paths (use telemetry) |
//! | ND007 | raw `std::thread` spawns in runtime hot paths (use the pool) |
//! | ND008 | ambient state read inside a searcher's `ask`/`tell` body |
//! | ND009 | transitive: a source reaching a protocol sink through calls |
//! | ND010 | pool task closure capturing `&mut` enclosing-scope state |
//! | ND011 | unwaived dynamic dispatch on a sink-reachable path |
//! | ND012 | direct wall-clock read in a runtime hot path (use the telemetry clock) |
//! | ND013 | direct clone of workload state in a runtime hot path (use the snapshot API) |
//! | ND014 | blocking channel receive inside a pool task closure (deadlock risk) |
//! | ND015 | panic-capture machinery in a hot path outside the fault plane |
//!
//! ND001–ND008 and ND012–ND015 are single-file token-pattern checks. ND009–ND011
//! run on the workspace call graph (see [`crate::taint`]) and are only
//! produced by [`lint_workspace`]; the per-file entry points skip them.
//!
//! A finding is suppressed by a comment on the same or the preceding
//! line: `// stats-analyzer: allow(ND002): reason`.
//!
//! Most rules apply everywhere; a rule may instead scope itself to a
//! path predicate ([`Rule::applies_to`]). ND006 only fires inside the
//! runtime hot paths (`…/runtime/…`, `speculation.rs`), where stdout
//! writes serialize threads behind the stdout lock and skew the very
//! timings the telemetry layer exists to measure. ND007 fires in the
//! same hot paths except `pool.rs` itself: with the pooled executor in
//! place, per-task `std::thread` creation off the pool reintroduces the
//! spawn cost the pool exists to amortize. ND013 shares ND007's scope:
//! inside the executor, every state duplication must route through the
//! sanctioned snapshot API (`StatePool::copy_of`,
//! `StateDependence::snapshot_state`) so that the COW strategy, spare
//! recycling, and the `StateBytesCopied` accounting all see it — and
//! `pool.rs` is exempt precisely because it *implements* that API.
//! ND008 fires only in autotuner
//! searcher files: the batched ask/tell contract promises a search
//! trajectory that depends on `(seed, budget, batch)` alone, so an
//! `ask`/`tell` body reading the clock, its thread identity, or the pool
//! width would silently re-couple tuning results to worker count.
//! ND014 fires in the same hot paths as ND006: pool jobs must compute,
//! send, and exit — a job parked on `recv()` holds a worker hostage,
//! and with fewer workers than chunks can deadlock the whole run (the
//! pool-module contract "Non-blocking jobs"). All waiting belongs on
//! the coordinator thread, which is not a pool worker.
//! ND015 fires in the hot paths except `pool.rs` and `fault.rs` — the
//! two modules that *are* the fault plane. Anywhere else,
//! `catch_unwind`/`resume_unwind`/`std::panic::…` swallows a worker
//! panic before the pool's scope-poisoning and the fault counters can
//! see it, so a failure recovers silently without the deterministic
//! retry accounting the chaos harness reconciles (`panic!` itself — the
//! macro — stays legal everywhere: raising is fine, *capturing* is the
//! fault plane's job).

use crate::callgraph::{collect_rs_files, GraphStats, Workspace};
use crate::diag::{display_path, Diagnostic};
use crate::lex::{lex, LexedFile, Tok, TokKind};
use std::path::{Path, PathBuf};

/// A rule match before it is joined with file context.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Underline length in characters.
    pub len: usize,
    /// Specific message for this match.
    pub message: String,
}

impl RawFinding {
    fn at(tok: &Tok, len: usize, message: String) -> Self {
        RawFinding {
            line: tok.line,
            col: tok.col,
            len,
            message,
        }
    }
}

/// How a rule is evaluated.
#[derive(Clone, Copy)]
pub enum RuleCheck {
    /// A token-pattern check over one lexed file.
    File(fn(&LexedFile) -> Vec<RawFinding>),
    /// Produced by the interprocedural pass ([`crate::taint`]); per-file
    /// entry points skip these.
    Workspace,
}

/// One lint rule: identity, documentation, and a checker.
pub struct Rule {
    /// Stable identifier (`ND001`…).
    pub id: &'static str,
    /// What the rule protects.
    pub summary: &'static str,
    /// Suggested fix, rendered as the diagnostic's `help:` line.
    pub hint: &'static str,
    /// Path predicate: the rule only runs on files whose (display) path
    /// satisfies it. Most rules use [`any_path`].
    pub applies_to: fn(&str) -> bool,
    /// How to evaluate the rule.
    pub check: RuleCheck,
}

/// The default [`Rule::applies_to`]: every file.
pub fn any_path(_path: &str) -> bool {
    true
}

/// Runtime hot paths: the worker/coordinator loops and the speculation
/// protocol itself, where a stray stdout write serializes every thread
/// behind the stdout lock.
pub fn hot_path(path: &str) -> bool {
    path.contains("/runtime/") || path.ends_with("speculation.rs")
}

/// [`hot_path`] minus the worker pool itself — the one module allowed to
/// create OS threads, so every other hot-path file must go through it.
pub fn hot_path_outside_pool(path: &str) -> bool {
    hot_path(path) && !path.ends_with("pool.rs")
}

/// [`hot_path`] minus the fault plane (`pool.rs`, `fault.rs`) — the only
/// modules allowed to capture panics; everywhere else a worker failure
/// must propagate into the pool's recovery machinery.
pub fn hot_path_outside_fault_plane(path: &str) -> bool {
    hot_path(path) && !path.ends_with("pool.rs") && !path.ends_with("fault.rs")
}

/// Searcher implementation files: the autotuner crate plus any file
/// named after the searcher module (covers out-of-crate `Searcher`
/// implementations that follow the naming convention).
pub fn searcher_path(path: &str) -> bool {
    path.contains("autotuner") || path.ends_with("searcher.rs")
}

/// The registry of all rules, in id order: the single source of truth
/// shared by `stats-analyzer rules`, the per-file lint pass, and the
/// interprocedural taint pass.
pub static RULES: &[Rule] = &[
    Rule {
        id: "ND001",
        summary: "ambient randomness outside the per-role STATS streams",
        hint: "draw from the StatsRng passed to the update; ambient entropy makes \
               commit/abort decisions schedule-dependent",
        applies_to: any_path,
        check: RuleCheck::File(check_ambient_randomness),
    },
    Rule {
        id: "ND002",
        summary: "wall-clock time read",
        hint: "derive timing from the simulated clock (stats-platform cycles); \
               wall-clock reads differ across runs and runtimes",
        applies_to: any_path,
        check: RuleCheck::File(check_wall_clock),
    },
    Rule {
        id: "ND003",
        summary: "unordered iteration source",
        hint: "use BTreeMap/BTreeSet (or sort before iterating); HashMap/HashSet \
               iteration order varies per process and can leak into decisions, \
               float accumulation order, and reports",
        applies_to: any_path,
        check: RuleCheck::File(check_unordered_iteration),
    },
    Rule {
        id: "ND004",
        summary: "hidden mutable state bypassing the State snapshot",
        hint: "move the data into the workload's State type; state outside it is \
               invisible to snapshot/restore and survives aborts",
        applies_to: any_path,
        check: RuleCheck::File(check_hidden_state),
    },
    Rule {
        id: "ND005",
        summary: "RNG stream constructed inside update/states_match",
        hint: "use the StatsRng argument; a locally seeded stream repeats draws \
               across replicas and breaks decision schedule-independence",
        applies_to: any_path,
        check: RuleCheck::File(check_stream_bypass),
    },
    Rule {
        id: "ND006",
        summary: "stdout/stderr print in a runtime hot path",
        hint: "emit a stats-telemetry Event::Diagnostic (or a counter) instead; \
               println!/eprintln! serialize workers behind the stdout lock and \
               distort the timings telemetry reports",
        applies_to: hot_path,
        check: RuleCheck::File(check_hot_path_print),
    },
    Rule {
        id: "ND007",
        summary: "raw std::thread spawn in a runtime hot path",
        hint: "schedule the work on the WorkerPool (scope.spawn / spawn_urgent); \
               per-task OS threads reintroduce the creation cost and \
               oversubscription the pool exists to eliminate",
        applies_to: hot_path_outside_pool,
        check: RuleCheck::File(check_raw_thread_spawn),
    },
    Rule {
        id: "ND008",
        summary: "ambient state read inside a searcher ask/tell body",
        hint: "derive every ask/tell decision from the searcher's seeded state and \
               the told costs; clocks, thread identity, and pool width make the \
               search trajectory depend on worker count and completion order",
        applies_to: searcher_path,
        check: RuleCheck::File(check_ambient_searcher),
    },
    Rule {
        id: "ND009",
        summary: "transitive ambient nondeterminism reaching a protocol sink",
        hint: "route the value through the seeded per-role streams (or the simulated \
               clock) before it can influence the sink, or waive the source line \
               with a reason explaining why it cannot affect commit/abort decisions",
        applies_to: any_path,
        check: RuleCheck::Workspace,
    },
    Rule {
        id: "ND010",
        summary: "pool task closure capturing &mut state outside the scoped-borrow API",
        hint: "make the task a `move` closure (own the data) or hand out disjoint \
               &mut borrows through the PoolScope API; a shared &mut capture lets \
               task execution race commit order",
        applies_to: hot_path,
        check: RuleCheck::Workspace,
    },
    Rule {
        id: "ND011",
        summary: "dynamic dispatch on a sink-reachable path evades taint tracking",
        hint: "the callee is a runtime value, so taint cannot be traced through it; \
               replace it with a direct call, or audit the callable and waive the \
               call site with a reason asserting it is deterministic",
        applies_to: any_path,
        check: RuleCheck::Workspace,
    },
    Rule {
        id: "ND012",
        summary: "direct wall-clock read in a runtime hot path",
        hint: "stamp through stats_telemetry::clock::monotonic_ns(), the single \
               sanctioned wall-clock read: it keeps timestamps observation-only \
               (one waived site to audit instead of many), and shares one epoch \
               so per-worker spans are comparable",
        applies_to: hot_path,
        check: RuleCheck::File(check_hot_path_wall_clock),
    },
    Rule {
        id: "ND013",
        summary: "direct clone of workload state in a runtime hot path",
        hint: "copy state through the sanctioned snapshot API (StatePool::copy_of, \
               StateDependence::snapshot_state): a bare .clone() always pays the \
               full deep copy, bypassing COW structural sharing, spare recycling, \
               and the StateBytesLogical/StateBytesCopied accounting that prices \
               copies in the cost model",
        applies_to: hot_path_outside_pool,
        check: RuleCheck::File(check_hot_path_state_clone),
    },
    Rule {
        id: "ND014",
        summary: "blocking channel receive inside a pool task closure",
        hint: "restructure the task to compute, send its result, and exit; move the \
               wait onto the coordinator thread (which is not a pool worker) or \
               chain a follow-up task instead — a job parked on recv() holds a \
               worker hostage and can deadlock runs with fewer workers than chunks",
        applies_to: hot_path,
        check: RuleCheck::File(check_pool_task_blocking_recv),
    },
    Rule {
        id: "ND015",
        summary: "panic-capture machinery in a hot path outside the fault plane",
        hint: "let the panic propagate: the pool's scope poisoning and the fault \
               plane's recovery guards (fault.rs, pool.rs) are the only sanctioned \
               panic handlers — an ad-hoc catch_unwind recovers a worker failure \
               without the FaultsInjected/RetriesScheduled accounting, so the \
               threaded and simulated runtimes stop reconciling",
        applies_to: hot_path_outside_fault_plane,
        check: RuleCheck::File(check_hot_path_panic_capture),
    },
];

/// The registry of all rules, in id order.
pub fn registry() -> &'static [Rule] {
    RULES
}

/// Look up a rule by id.
///
/// # Panics
///
/// Panics on an unknown id — rule ids are compile-time constants, so a
/// miss is a bug in the analyzer itself.
pub fn rule_by_id(id: &str) -> &'static Rule {
    RULES
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("unknown rule id {id}"))
}

fn check_ambient_randomness(file: &LexedFile) -> Vec<RawFinding> {
    const BAD: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];
    file.tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident && BAD.contains(&t.text.as_str()))
        .map(|t| {
            RawFinding::at(
                t,
                t.text.chars().count(),
                format!("`{}` draws entropy outside the seeded streams", t.text),
            )
        })
        .collect()
}

/// `Instant::now` / `SystemTime::now` call sites (shared by ND002 and
/// its hot-path-scoped sibling ND012, which differ only in scope and
/// remedy).
fn wall_clock_reads(file: &LexedFile, message: fn(&str) -> String) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            let path_now = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 3).is_some_and(|a| a.is_ident("now"));
            if path_now {
                out.push(RawFinding::at(
                    t,
                    t.text.chars().count() + "::now".len(),
                    message(&t.text),
                ));
            }
        }
    }
    out
}

fn check_wall_clock(file: &LexedFile) -> Vec<RawFinding> {
    wall_clock_reads(file, |clock| format!("`{clock}::now` reads the wall clock"))
}

fn check_hot_path_wall_clock(file: &LexedFile) -> Vec<RawFinding> {
    wall_clock_reads(file, |clock| {
        format!("`{clock}::now` in a runtime hot path bypasses the telemetry clock")
    })
}

fn check_unordered_iteration(file: &LexedFile) -> Vec<RawFinding> {
    file.tokens
        .iter()
        .filter(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
        .map(|t| {
            RawFinding::at(
                t,
                t.text.chars().count(),
                format!("`{}` iterates in a per-process pseudo-random order", t.text),
            )
        })
        .collect()
}

fn check_hidden_state(file: &LexedFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("static") && toks.get(i + 1).is_some_and(|a| a.is_ident("mut")) {
            out.push(RawFinding::at(
                t,
                "static mut".len(),
                "`static mut` is process-global mutable state".to_string(),
            ));
        }
        if t.is_ident("thread_local") && toks.get(i + 1).is_some_and(|a| a.is_punct('!')) {
            out.push(RawFinding::at(
                t,
                "thread_local!".len(),
                "`thread_local!` state differs between the simulated and threaded runtimes"
                    .to_string(),
            ));
        }
        if (t.is_ident("Cell") || t.is_ident("RefCell") || t.is_ident("UnsafeCell"))
            && toks.get(i + 1).is_some_and(|a| a.is_punct('<'))
        {
            out.push(RawFinding::at(
                t,
                t.text.chars().count(),
                format!("`{}` allows mutation invisible to state snapshots", t.text),
            ));
        }
    }
    out
}

/// The protocol entry points whose bodies must draw only from the passed
/// stream.
const PROTOCOL_FNS: &[&str] = &["update", "states_match"];

fn check_stream_bypass(file: &LexedFile) -> Vec<RawFinding> {
    const BAD_CALLS: &[&str] = &["from_seed_value", "seed_from_u64", "from_seed"];
    const BAD_TYPES: &[&str] = &["StdRng", "SmallRng"];
    let mut out = Vec::new();
    let toks = &file.tokens;
    // Track (fn-name, depth-at-entry); the body runs while depth > entry.
    let mut depth = 0usize;
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident if t.text == "fn" => {
                if let Some(name) = toks.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        pending_fn = Some(name.text.clone());
                    }
                }
            }
            TokKind::Punct if t.text == "{" => {
                if let Some(name) = pending_fn.take() {
                    stack.push((name, depth));
                }
                depth += 1;
            }
            TokKind::Punct if t.text == ";" => {
                // `fn f(...);` in a trait: declaration only, no body.
                pending_fn = None;
            }
            TokKind::Punct if t.text == "}" => {
                depth = depth.saturating_sub(1);
                if stack.last().is_some_and(|(_, d)| *d == depth) {
                    stack.pop();
                }
            }
            _ => {}
        }
        let in_protocol_fn = stack
            .iter()
            .any(|(name, _)| PROTOCOL_FNS.contains(&name.as_str()));
        if !in_protocol_fn || t.kind != TokKind::Ident {
            continue;
        }
        if BAD_CALLS.contains(&t.text.as_str()) {
            out.push(RawFinding::at(
                t,
                t.text.chars().count(),
                format!(
                    "`{}` seeds a fresh stream inside a protocol function",
                    t.text
                ),
            ));
        }
        if BAD_TYPES.contains(&t.text.as_str()) {
            out.push(RawFinding::at(
                t,
                t.text.chars().count(),
                format!("`{}` constructed inside a protocol function", t.text),
            ));
        }
        // `StatsRng::derive` inside update re-derives a role stream from
        // the master seed instead of consuming the caller's stream.
        if t.text == "derive"
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("StatsRng")
        {
            out.push(RawFinding {
                line: toks[i - 3].line,
                col: toks[i - 3].col,
                len: "StatsRng::derive".len(),
                message: "`StatsRng::derive` inside a protocol function re-derives a \
                          role stream instead of using the caller's"
                    .to_string(),
            });
        }
    }
    out
}

fn check_hot_path_print(file: &LexedFile) -> Vec<RawFinding> {
    const BAD: &[&str] = &["println", "eprintln", "print", "eprint"];
    let toks = &file.tokens;
    toks.iter()
        .enumerate()
        .filter(|(i, t)| {
            t.kind == TokKind::Ident
                && BAD.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|a| a.is_punct('!'))
        })
        .map(|(_, t)| {
            RawFinding::at(
                t,
                t.text.chars().count() + 1,
                format!("`{}!` writes to stdio from a runtime hot path", t.text),
            )
        })
        .collect()
}

fn check_raw_thread_spawn(file: &LexedFile) -> Vec<RawFinding> {
    const BAD: &[&str] = &["spawn", "scope", "Builder"];
    let toks = &file.tokens;
    toks.iter()
        .enumerate()
        .filter(|(i, t)| {
            // `thread::spawn`, `thread::scope`, `thread::Builder` — the
            // `thread ::` prefix keeps pool-scope method calls
            // (`scope.spawn(..)`) and `thread::available_parallelism`
            // out of scope.
            t.kind == TokKind::Ident
                && t.text == "thread"
                && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks
                    .get(i + 3)
                    .is_some_and(|a| a.kind == TokKind::Ident && BAD.contains(&a.text.as_str()))
        })
        .map(|(i, t)| {
            let target = &toks[i + 3].text;
            RawFinding::at(
                t,
                "thread::".chars().count() + target.chars().count(),
                format!("`thread::{target}` creates OS threads off the worker pool"),
            )
        })
        .collect()
}

/// The batched searcher protocol functions whose bodies must be pure in
/// `(seeded state, told costs)` — see `stats-autotuner`'s `Searcher`.
const SEARCHER_FNS: &[&str] = &["ask", "tell"];

fn check_ambient_searcher(file: &LexedFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    let mut depth = 0usize;
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident if t.text == "fn" => {
                if let Some(name) = toks.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        pending_fn = Some(name.text.clone());
                    }
                }
            }
            TokKind::Punct if t.text == "{" => {
                if let Some(name) = pending_fn.take() {
                    stack.push((name, depth));
                }
                depth += 1;
            }
            TokKind::Punct if t.text == ";" => {
                pending_fn = None;
            }
            TokKind::Punct if t.text == "}" => {
                depth = depth.saturating_sub(1);
                if stack.last().is_some_and(|(_, d)| *d == depth) {
                    stack.pop();
                }
            }
            _ => {}
        }
        let in_searcher_fn = stack
            .iter()
            .any(|(name, _)| SEARCHER_FNS.contains(&name.as_str()));
        if !in_searcher_fn || t.kind != TokKind::Ident {
            continue;
        }
        let path_seg = |j: usize, name: &str| {
            toks.get(j).is_some_and(|a| a.is_punct(':'))
                && toks.get(j + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(j + 2).is_some_and(|a| a.is_ident(name))
        };
        // Clock reads: completion timing must not steer proposals.
        if (t.text == "Instant" || t.text == "SystemTime") && path_seg(i + 1, "now") {
            out.push(RawFinding::at(
                t,
                t.text.chars().count() + "::now".len(),
                format!("`{}::now` read inside a searcher ask/tell body", t.text),
            ));
        }
        // Thread identity: which worker evaluated a batch is not a
        // search signal.
        if t.text == "thread" && path_seg(i + 1, "current") {
            out.push(RawFinding::at(
                t,
                "thread::current".len(),
                "`thread::current` reads thread identity inside a searcher ask/tell body"
                    .to_string(),
            ));
        }
        if t.text == "ThreadId" {
            out.push(RawFinding::at(
                t,
                t.text.chars().count(),
                "`ThreadId` used inside a searcher ask/tell body".to_string(),
            ));
        }
        // Pool/host width: proposals sized or shaped by worker count
        // re-couple the trajectory to the machine.
        if t.text == "available_parallelism" {
            out.push(RawFinding::at(
                t,
                t.text.chars().count(),
                "`available_parallelism` reads host width inside a searcher ask/tell body"
                    .to_string(),
            ));
        }
        if t.text == "workers"
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
        {
            out.push(RawFinding::at(
                t,
                t.text.chars().count() + 2,
                "`.workers()` reads pool width inside a searcher ask/tell body".to_string(),
            ));
        }
    }
    out
}

fn check_pool_task_blocking_recv(file: &LexedFile) -> Vec<RawFinding> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut paren_depth = 0usize;
    // Paren depths at which a `spawn(...)` / `spawn_urgent(...)` argument
    // list opened: while the stack is non-empty we are lexically inside a
    // task closure handed to the pool (or, in the baseline executor, to a
    // scoped thread — its dedicated-OS-thread waits carry a waiver).
    let mut spawn_regions: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct if t.text == "(" => {
                paren_depth += 1;
            }
            TokKind::Punct if t.text == ")" => {
                paren_depth = paren_depth.saturating_sub(1);
                if spawn_regions.last().is_some_and(|d| *d == paren_depth) {
                    spawn_regions.pop();
                }
            }
            TokKind::Ident
                if (t.text == "spawn" || t.text == "spawn_urgent")
                    && toks.get(i + 1).is_some_and(|a| a.is_punct('(')) =>
            {
                // The `(` itself is handled next iteration; the region
                // lives while paren_depth exceeds this entry value.
                spawn_regions.push(paren_depth);
            }
            _ => {}
        }
        if spawn_regions.is_empty() || t.kind != TokKind::Ident {
            continue;
        }
        // Method-call form only: `rx.recv()` / `rx.recv_timeout(..)`.
        if (t.text == "recv" || t.text == "recv_timeout")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
        {
            out.push(RawFinding::at(
                t,
                t.text.chars().count() + 2,
                format!("`.{}()` blocks a pool worker inside a task closure", t.text),
            ));
        }
    }
    out
}

/// Receiver names that hold a workload's `State` value by the
/// executor's naming convention: the replica fan-out and commit loops
/// call them `state`, `baseline`, `snapshot`, or a `*_state` /
/// `*_snapshot` variant. A name check is deliberate — the lexer has no
/// types, and the runtime's own style guide fixes these names, so the
/// convention *is* the contract the rule enforces.
fn is_state_receiver(name: &str) -> bool {
    name == "state"
        || name == "baseline"
        || name == "snapshot"
        || name.ends_with("_state")
        || name.ends_with("_snapshot")
}

fn check_hot_path_state_clone(file: &LexedFile) -> Vec<RawFinding> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let is_clone = t.kind == TokKind::Ident && (t.text == "clone" || t.text == "clone_from");
        if !is_clone || !toks.get(i + 1).is_some_and(|a| a.is_punct('(')) {
            continue;
        }
        // Method-call form only: `recv.clone(..)` / `recv.clone_from(..)`.
        if i < 2 || !toks[i - 1].is_punct('.') {
            continue;
        }
        let recv = &toks[i - 2];
        if recv.kind != TokKind::Ident || !is_state_receiver(&recv.text) {
            continue;
        }
        out.push(RawFinding::at(
            recv,
            recv.text.chars().count() + 1 + t.text.chars().count(),
            format!(
                "`{}.{}(..)` duplicates workload state outside the snapshot API",
                recv.text, t.text
            ),
        ));
    }
    out
}

fn check_hot_path_panic_capture(file: &LexedFile) -> Vec<RawFinding> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // The unwind-capture entry points themselves, however qualified
        // (`catch_unwind(..)`, `panic::catch_unwind`, `std::panic::…`).
        if t.text == "catch_unwind" || t.text == "resume_unwind" {
            out.push(RawFinding::at(
                t,
                t.text.chars().count(),
                format!(
                    "`{}` captures a worker panic outside the fault plane",
                    t.text
                ),
            ));
            continue;
        }
        // Any other use of the `std::panic` module (`panic::set_hook`,
        // `panic::AssertUnwindSafe`, …). The `::` requirement keeps the
        // `panic!` macro — raising, not capturing — out of scope, and
        // the ident check above already covered `panic::catch_unwind`
        // (skipped here so one capture yields one finding).
        if t.text == "panic"
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && !toks
                .get(i + 3)
                .is_some_and(|a| a.is_ident("catch_unwind") || a.is_ident("resume_unwind"))
        {
            let target = toks
                .get(i + 3)
                .filter(|a| a.kind == TokKind::Ident)
                .map_or_else(String::new, |a| a.text.clone());
            out.push(RawFinding::at(
                t,
                "panic::".len() + target.chars().count(),
                format!("`panic::{target}` panic machinery used outside the fault plane"),
            ));
        }
    }
    out
}

/// One finding with its waiver status. Waived findings are suppressed
/// from the default text output but stay visible to `--format json`, so
/// every `allow(…)` stays auditable.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rendered diagnostic (with call-chain notes when
    /// interprocedural).
    pub diag: Diagnostic,
    /// Whether an `allow(…)` directive covers this finding.
    pub waived: bool,
    /// The justification text attached to the directive. `Some("")`
    /// means a directive without a written reason — CI can reject that
    /// via `--require-waiver-reasons`.
    pub waiver_reason: Option<String>,
}

/// A full workspace lint report: every finding (waived included) plus
/// the call-graph statistics behind the interprocedural rules.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings in (file, line, col, rule) order.
    pub findings: Vec<Finding>,
    /// Call-graph resolution statistics.
    pub stats: GraphStats,
}

impl Report {
    /// Findings not covered by a waiver — the gating set.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Waived findings whose directive carries no written reason.
    pub fn unexplained_waivers(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.waived && f.waiver_reason.as_deref() == Some(""))
    }
}

/// Run the per-file rules over one lexed file, keeping waived findings
/// (marked) alongside live ones.
fn file_findings(name: &str, file: &LexedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in RULES {
        let RuleCheck::File(check) = rule.check else {
            continue;
        };
        if !(rule.applies_to)(name) {
            continue;
        }
        for f in check(file) {
            let waiver = file.waiver_reason(rule.id, f.line).map(str::to_string);
            out.push(Finding {
                diag: Diagnostic {
                    rule: rule.id,
                    message: f.message,
                    file: name.to_string(),
                    line: f.line,
                    col: f.col,
                    len: f.len,
                    snippet: file.line(f.line).to_string(),
                    hint: rule.hint,
                    notes: Vec::new(),
                },
                waived: waiver.is_some(),
                waiver_reason: waiver,
            });
        }
    }
    out
}

/// Lint one file's source text with waiver status retained.
pub fn lint_source_findings(name: &str, source: &str) -> Vec<Finding> {
    let file = lex(source);
    let mut out = file_findings(name, &file);
    sort_findings(&mut out);
    out
}

/// Lint one file's source text. `name` is used in diagnostics and
/// matched against each rule's path predicate. Waived findings are
/// dropped (the historical contract of this entry point).
pub fn lint_source(name: &str, source: &str) -> Vec<Diagnostic> {
    lint_source_findings(name, source)
        .into_iter()
        .filter(|f| !f.waived)
        .map(|f| f.diag)
        .collect()
}

/// Lint one file from disk.
pub fn lint_file(path: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let source = std::fs::read_to_string(path)?;
    Ok(lint_source(&display_path(path), &source))
}

/// Recursively lint every `.rs` file under each root with the per-file
/// rules, in sorted path order. Directories named `target` or
/// `fixtures` are skipped.
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut out = Vec::new();
    for f in &files {
        out.extend(lint_file(f)?);
    }
    Ok(out)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.diag.file, a.diag.line, a.diag.col, a.diag.rule).cmp(&(
            &b.diag.file,
            b.diag.line,
            b.diag.col,
            b.diag.rule,
        ))
    });
}

/// Run every rule — per-file and interprocedural — over an already
/// parsed workspace.
pub fn lint_workspace_parsed(ws: &Workspace) -> Report {
    let mut findings = Vec::new();
    for file in &ws.files {
        findings.extend(file_findings(&file.path, &file.lexed));
    }
    let (taint_findings, stats) = crate::taint::run(ws);
    findings.extend(taint_findings);
    sort_findings(&mut findings);
    Report { findings, stats }
}

/// Run every rule over `(path, source)` pairs — the fixture-test entry
/// point.
pub fn lint_workspace_sources<P: AsRef<str>, S: AsRef<str>>(sources: &[(P, S)]) -> Report {
    lint_workspace_parsed(&Workspace::from_sources(sources))
}

/// Run every rule over all `.rs` files under `roots`: the full
/// workspace scan behind `stats-analyzer lint` and the CI self-scan.
pub fn lint_workspace(roots: &[PathBuf]) -> std::io::Result<Report> {
    Ok(lint_workspace_parsed(&Workspace::load(roots)?))
}

/// The production source trees linted by default: every workspace
/// crate, the analyzer included — its own sources must honor the same
/// contract they enforce. (Deliberately dirty lint-fixture trees are
/// excluded by the `fixtures` directory skip in the file walk.)
pub fn default_roots(repo_root: &Path) -> Vec<PathBuf> {
    let crates = repo_root.join("crates");
    let mut roots = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                roots.push(p);
            }
        }
    }
    roots.sort();
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<&'static str> {
        lint_source("test.rs", src)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn flags_thread_rng() {
        assert_eq!(rules_hit("let mut r = rand::thread_rng();"), ["ND001"]);
    }

    #[test]
    fn flags_wall_clock_paths_only() {
        assert_eq!(rules_hit("let t = Instant::now();"), ["ND002"]);
        assert_eq!(rules_hit("let t = SystemTime::now();"), ["ND002"]);
        // `Instant` alone (e.g. in a type) is not a read.
        assert_eq!(rules_hit("fn f(t: Instant) {}"), Vec::<&str>::new());
    }

    #[test]
    fn flags_unordered_collections() {
        assert_eq!(
            rules_hit("use std::collections::{HashMap, HashSet};"),
            ["ND003", "ND003"]
        );
    }

    #[test]
    fn flags_hidden_state() {
        assert_eq!(rules_hit("static mut COUNTER: u64 = 0;"), ["ND004"]);
        assert_eq!(rules_hit("thread_local! { static X: u8 = 0; }"), ["ND004"]);
        assert_eq!(rules_hit("struct S { c: RefCell<u64> }"), ["ND004"]);
        // A function named static_mut or the ident Cell without generics
        // is not flagged.
        assert_eq!(rules_hit("let c = Cell::new(1);"), Vec::<&str>::new());
    }

    #[test]
    fn stream_bypass_is_scoped_to_protocol_fns() {
        let in_update = "impl S { fn update(&self) { let r = StatsRng::from_seed_value(1); } }";
        assert_eq!(rules_hit(in_update), ["ND005"]);
        let in_match = "fn states_match(a: &S) -> bool { let r = X::seed_from_u64(2); true }";
        assert_eq!(rules_hit(in_match), ["ND005"]);
        // The same construction elsewhere is legitimate (input generation,
        // oracles, tests).
        let in_gen = "fn generate_inputs(&self) { let r = StatsRng::from_seed_value(1); }";
        assert_eq!(rules_hit(in_gen), Vec::<&str>::new());
    }

    #[test]
    fn stream_bypass_sees_nested_fns_end() {
        // A nested helper closes before the outer body ends; scoping must
        // not leak past the update body's closing brace.
        let src = "fn update() { helper(); }\nfn later() { let r = Q::from_seed(3); }";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn derive_inside_update_is_flagged() {
        let src = "fn update() { let r = StatsRng::derive(seed, role); }";
        assert_eq!(rules_hit(src), ["ND005"]);
    }

    #[test]
    fn trait_declarations_do_not_open_bodies() {
        // `fn update(...);` in a trait has no body; a later free fn body
        // must not be attributed to it.
        let src = "trait T { fn update(&self); }\nfn elsewhere() { let r = X::from_seed(1); }";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "// stats-analyzer: allow(ND002): measurement only\nlet t = Instant::now();";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
        // The wrong rule id does not suppress.
        let wrong = "// stats-analyzer: allow(ND001)\nlet t = Instant::now();";
        assert_eq!(rules_hit(wrong), ["ND002"]);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// thread_rng HashMap Instant::now\nlet s = \"static mut OsRng\";";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn diagnostics_carry_position_and_snippet() {
        let d = &lint_source("x.rs", "let a = 1;\nlet t = Instant::now();")[0];
        assert_eq!(d.line, 2);
        assert_eq!(d.col, 9);
        assert_eq!(d.snippet, "let t = Instant::now();");
        assert_eq!(d.rule, "ND002");
        assert!(d.to_string().contains("--> x.rs:2:9"));
    }

    #[test]
    fn hot_path_prints_are_scoped_by_path() {
        let src = "fn worker() { println!(\"chunk done\"); }";
        let hot = lint_source("crates/core/src/runtime/threaded.rs", src);
        assert_eq!(hot.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND006"]);
        let spec = lint_source("crates/core/src/speculation.rs", src);
        assert_eq!(spec.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND006"]);
        // The same print outside the hot paths is fine (CLI, figures,
        // reports all print deliberately).
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn hot_path_print_needs_a_macro_bang() {
        // A function call named println (no `!`) is not the macro.
        let call = "fn f() { println(buf); }";
        assert!(lint_source("x/runtime/y.rs", call).is_empty());
        // All four stdio macros are covered.
        let each = "fn f() { print!(\"a\"); eprint!(\"b\"); }";
        assert_eq!(lint_source("x/runtime/y.rs", each).len(), 2);
        // And the waiver comment works like every other rule.
        let waived =
            "// stats-analyzer: allow(ND006): fatal-error path\nfn f() { eprintln!(\"x\"); }";
        assert!(lint_source("x/runtime/y.rs", waived).is_empty());
    }

    #[test]
    fn raw_thread_spawns_are_scoped_to_hot_paths_outside_the_pool() {
        let src = "fn go() { std::thread::spawn(|| work()); }";
        let hot = lint_source("crates/core/src/runtime/threaded.rs", src);
        assert_eq!(hot.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND007"]);
        // The pool module is the one place allowed to create OS threads.
        assert!(lint_source("crates/core/src/runtime/pool.rs", src).is_empty());
        // Outside the hot paths, spawning threads is unremarkable
        // (tests, benches, the CLI).
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn raw_thread_spawn_variants_and_waiver() {
        // scope and Builder are thread-creation entry points too.
        let each = "fn f() { thread::scope(|s| {}); thread::Builder::new(); }";
        assert_eq!(lint_source("x/runtime/y.rs", each).len(), 2);
        // Pool-scope method calls and capacity probes don't match: no
        // `thread::` prefix on the former, no BAD suffix on the latter.
        let fine = "fn f(s: &PoolScope) { s.spawn(|| {}); thread::available_parallelism(); }";
        assert!(lint_source("x/runtime/y.rs", fine).is_empty());
        // And the waiver comment works like every other rule.
        let waived = "// stats-analyzer: allow(ND007): thread-per-chunk baseline\n\
                      fn f() { std::thread::scope(|s| {}); }";
        assert!(lint_source("x/runtime/y.rs", waived).is_empty());
    }

    #[test]
    fn ambient_searcher_reads_are_scoped_to_ask_tell_in_searcher_paths() {
        let src = "fn ask(&mut self) { let w = pool.workers(); }";
        let hit = lint_source("crates/autotuner/src/searcher.rs", src);
        assert_eq!(hit.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND008"]);
        // Same read outside ask/tell (constructors size caches freely).
        let ctor = "fn new(pool: &WorkerPool) -> Self { let w = pool.workers(); todo!() }";
        assert!(lint_source("crates/autotuner/src/searcher.rs", ctor).is_empty());
        // Same read outside the searcher paths (the tuner stamps pool
        // width into telemetry deliberately).
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn ambient_searcher_covers_clock_thread_and_width_probes() {
        let clock = "fn tell(&mut self) { let t = Instant::now(); }";
        let hit = lint_source("crates/autotuner/src/x.rs", clock);
        // ND002 (global wall-clock rule) and ND008 both apply here.
        assert_eq!(
            hit.iter().map(|d| d.rule).collect::<Vec<_>>(),
            ["ND002", "ND008"]
        );
        let identity = "fn ask(&mut self) { let id = thread::current().id(); }";
        let hit = lint_source("crates/autotuner/src/x.rs", identity);
        assert_eq!(hit.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND008"]);
        let width = "fn ask(&mut self) { let n = available_parallelism(); }";
        let hit = lint_source("crates/autotuner/src/x.rs", width);
        assert_eq!(hit.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND008"]);
        // And the waiver comment works like every other rule.
        let waived = "fn ask(&mut self) {\n\
                      // stats-analyzer: allow(ND008): diagnostics only\n\
                      let id = thread::current().id(); }";
        assert!(lint_source("crates/autotuner/src/x.rs", waived).is_empty());
    }

    #[test]
    fn state_clones_are_scoped_to_hot_paths_outside_the_pool() {
        let src = "fn commit() { let s = state.clone(); }";
        let hot = lint_source("crates/core/src/runtime/threaded.rs", src);
        assert_eq!(hot.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND013"]);
        let spec = lint_source("crates/core/src/speculation.rs", src);
        assert_eq!(spec.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND013"]);
        // The pool implements the sanctioned copy: its clone_from IS the API.
        assert!(lint_source("crates/core/src/runtime/pool.rs", src).is_empty());
        // Outside the hot paths (workload internals, oracles, tests)
        // cloning state is unremarkable.
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn state_clone_matches_conventional_receivers_only() {
        // clone_from and suffixed receivers are covered.
        let each = "fn f() { baseline.clone_from(&committed); let c = chunk_state.clone(); }";
        assert_eq!(lint_source("x/runtime/y.rs", each).len(), 2);
        // A field access still names the state.
        let field = "fn f(&self) { let s = self.snapshot.clone(); }";
        assert_eq!(lint_source("x/runtime/y.rs", field).len(), 1);
        // Clones of non-state values (ranges, configs, plural handles) and
        // bare `clone` without a receiver don't match.
        let fine = "fn f() { let r = range.clone(); cfg.clone(); states.clone(); clone(); }";
        assert!(lint_source("x/runtime/y.rs", fine).is_empty());
        // And the waiver comment works like every other rule.
        let waived = "// stats-analyzer: allow(ND013): oracle copy outside the measured region\n\
                      fn f() { let s = state.clone(); }";
        assert!(lint_source("x/runtime/y.rs", waived).is_empty());
    }

    #[test]
    fn pool_task_recvs_are_scoped_to_spawn_closures_in_hot_paths() {
        let src = "fn go(scope: &PoolScope) { scope.spawn(move || { let r = rx.recv(); }); }";
        let hot = lint_source("crates/core/src/runtime/threaded.rs", src);
        assert_eq!(hot.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND014"]);
        let spec = lint_source("crates/core/src/speculation.rs", src);
        assert_eq!(spec.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND014"]);
        // The coordinator waits outside any task closure — that is where
        // waiting belongs.
        let coord = "fn coordinate() { let r = rx.recv(); }";
        assert!(lint_source("crates/core/src/runtime/threaded.rs", coord).is_empty());
        // Outside the hot paths (tests, CLI plumbing) receives are
        // unremarkable.
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn pool_task_recv_variants_nesting_and_waiver() {
        // recv_timeout blocks the same way, and the urgent lane is
        // covered too.
        let each = "fn f(s: &PoolScope) { s.spawn_urgent(|| { rx.recv_timeout(d); }); }";
        assert_eq!(lint_source("x/runtime/y.rs", each).len(), 1);
        // The region closes with the spawn call: a receive after it is
        // the coordinator's.
        let after = "fn f(s: &PoolScope) { s.spawn(|| work()); let r = rx.recv(); }";
        assert!(lint_source("x/runtime/y.rs", after).is_empty());
        // Nested spawns: a recv in the inner closure is still inside a
        // task; chained segment tasks that only spawn-and-send are fine.
        let nested = "fn f(s: &PoolScope) { s.spawn(|| { s.spawn_urgent(|| { rx.recv(); }); }); }";
        assert_eq!(lint_source("x/runtime/y.rs", nested).len(), 1);
        let chained =
            "fn f(s: &PoolScope) { s.spawn(|| { s.spawn_urgent(|| { tx.send(v); }); }); }";
        assert!(lint_source("x/runtime/y.rs", chained).is_empty());
        // Non-method recv idents (a variable, a function call) don't match.
        let fine = "fn f(s: &PoolScope) { s.spawn(|| { let recv = 1; recv_all(); }); }";
        assert!(lint_source("x/runtime/y.rs", fine).is_empty());
        // And the waiver comment works like every other rule.
        let waived = "fn f(s: &Scope) { s.spawn(|| {\n\
                      // stats-analyzer: allow(ND014): dedicated OS thread, not a pool worker\n\
                      let r = rx.recv(); }); }";
        assert!(lint_source("x/runtime/y.rs", waived).is_empty());
    }

    #[test]
    fn panic_capture_is_scoped_to_hot_paths_outside_the_fault_plane() {
        let src = "fn run() { let r = std::panic::catch_unwind(|| work()); }";
        let hot = lint_source("crates/core/src/runtime/threaded.rs", src);
        assert_eq!(hot.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND015"]);
        let spec = lint_source("crates/core/src/speculation.rs", src);
        assert_eq!(spec.iter().map(|d| d.rule).collect::<Vec<_>>(), ["ND015"]);
        // The fault plane is the sanctioned handler: the pool's scope
        // poisoning and the fault module's recovery guards.
        assert!(lint_source("crates/core/src/runtime/pool.rs", src).is_empty());
        assert!(lint_source("crates/core/src/runtime/fault.rs", src).is_empty());
        // Outside the hot paths (tests asserting panics, the CLI's top
        // level) capturing is unremarkable.
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn panic_capture_variants_macro_exemption_and_waiver() {
        // One capture yields one finding, however the path is written.
        let bare = "fn f() { catch_unwind(AssertUnwindSafe(g)); }";
        assert_eq!(lint_source("x/runtime/y.rs", bare).len(), 1);
        let qualified = "fn f() { panic::resume_unwind(payload); }";
        assert_eq!(lint_source("x/runtime/y.rs", qualified).len(), 1);
        // Other std::panic machinery is capture-adjacent and flagged too.
        let hook = "fn f() { panic::set_hook(Box::new(|_| {})); }";
        assert_eq!(lint_source("x/runtime/y.rs", hook).len(), 1);
        // The panic! macro raises — it does not capture — and stays
        // legal in hot paths (invariant violations must abort loudly).
        let raises = "fn f() { panic!(\"chunk {c} died\"); }";
        assert!(lint_source("x/runtime/y.rs", raises).is_empty());
        // And the waiver comment works like every other rule.
        let waived = "// stats-analyzer: allow(ND015): test-only harness shim\n\
                      fn f() { catch_unwind(AssertUnwindSafe(g)); }";
        assert!(lint_source("x/runtime/y.rs", waived).is_empty());
    }

    #[test]
    fn findings_keep_waived_entries_with_reasons() {
        let src = "// stats-analyzer: allow(ND002): measurement only\n\
                   let t = Instant::now();\n\
                   let u = SystemTime::now();";
        let all = lint_source_findings("test.rs", src);
        assert_eq!(all.len(), 2);
        assert!(all[0].waived);
        assert_eq!(all[0].waiver_reason.as_deref(), Some("measurement only"));
        assert!(!all[1].waived);
        assert_eq!(all[1].waiver_reason, None);
        // The waived-dropping view sees only the live one.
        assert_eq!(lint_source("test.rs", src).len(), 1);
    }

    #[test]
    fn workspace_report_separates_unwaived_and_unexplained() {
        let src = "// stats-analyzer: allow(ND003)\n\
                   use std::collections::HashMap;\n\
                   use std::collections::HashSet;";
        let report = lint_workspace_sources(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.unwaived().count(), 1);
        // The directive has no written reason, so it shows up here.
        assert_eq!(report.unexplained_waivers().count(), 1);
    }

    #[test]
    fn registry_ids_are_unique_and_sorted() {
        let ids: Vec<_> = registry().iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }
}
