//! Interprocedural nondeterminism-taint analysis: ND009, ND010, ND011.
//!
//! The single-file rules (ND001–ND008) catch an ambient-entropy read
//! where it happens; this pass catches it where it *matters* — when the
//! value can flow into a decision the STATS protocol requires to be
//! schedule-independent (PAPER.md §II-B).
//!
//! * **Sources** are the ND001/ND002/ND003/ND004/ND008 token patterns
//!   plus `Relaxed` atomic loads used in branch conditions. A source
//!   whose base rule is waived on its line (e.g. an
//!   `allow(ND002)`-sanctioned telemetry timestamp) is considered
//!   sanctioned and does not propagate.
//! * **Sinks** are the protocol-critical entry points: `update` /
//!   `states_match` implementations, `Alternative` producers, searcher
//!   `ask`/`tell` bodies, and every production function in the runtime
//!   hot paths (`…/runtime/…`, `speculation.rs`).
//! * **ND009** reports a source that reaches a sink through one or more
//!   static call hops (the full chain is attached as secondary spans),
//!   or sits directly inside a sink when no single-file rule covers
//!   that path (closing the ND008-outside-searcher and `Relaxed`-branch
//!   holes). Chains never pass *through* another sink: the inner sink
//!   reports the shorter chain instead.
//! * **ND010** flags a pool task closure (`scope.spawn(…)` /
//!   `spawn_urgent(…)` without `move`) that captures `&mut` state from
//!   the enclosing scope — a static commit-order race check.
//! * **ND011** audits the escape hatch: a dynamic call (closure
//!   parameter, `fn` pointer, boxed callable) on a sink-reachable path
//!   is exactly where taint tracking goes blind, so it must carry a
//!   waiver asserting the callable is deterministic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, FnId, GraphStats, Resolution, Workspace};
use crate::diag::{Diagnostic, Note};
use crate::lex::{LexedFile, Tok, TokKind};
use crate::lint::{hot_path, rule_by_id, searcher_path, Finding};

/// Function names treated as protocol entry points when implemented on a
/// type or trait.
const PROTOCOL_FNS: &[&str] = &["update", "states_match"];
/// Searcher entry points (in searcher paths).
const SEARCHER_FNS: &[&str] = &["ask", "tell"];

/// One nondeterminism source inside a function body.
#[derive(Debug, Clone)]
struct Source {
    line: usize,
    col: usize,
    len: usize,
    /// Short description, e.g. "`thread_rng` (ambient entropy)".
    what: String,
    /// The single-file rule that owns this pattern, if any. `None` for
    /// the `Relaxed`-load-in-branch pattern, which no file rule covers.
    base: Option<&'static str>,
}

/// One sink with a human-readable kind label.
#[derive(Debug, Clone, Copy)]
struct Sink {
    id: FnId,
    kind: &'static str,
}

/// Run the interprocedural pass over a workspace. Returns the findings
/// (waived ones included, marked) and the call-graph statistics.
pub fn run(ws: &Workspace) -> (Vec<Finding>, GraphStats) {
    let graph = CallGraph::build(ws);
    let stats = graph.stats();
    let sinks = collect_sinks(ws);
    let sink_set: BTreeSet<FnId> = sinks.iter().map(|s| s.id).collect();
    let sources = collect_sources(ws);
    let mut findings = Vec::new();
    nd009(ws, &graph, &sinks, &sink_set, &sources, &mut findings);
    nd010(ws, &mut findings);
    nd011(ws, &graph, &sink_set, &mut findings);
    (findings, stats)
}

/// Identify every sink function in the workspace.
fn collect_sinks(ws: &Workspace) -> Vec<Sink> {
    let mut sinks = Vec::new();
    for (id, def) in ws.iter_fns() {
        if def.test_only || def.body.is_none() {
            continue;
        }
        let path = &ws.file_of(id).path;
        let kind = if PROTOCOL_FNS.contains(&def.name.as_str())
            && (def.self_ty.is_some() || def.trait_name.is_some())
        {
            Some("protocol function")
        } else if SEARCHER_FNS.contains(&def.name.as_str()) && searcher_path(path) {
            Some("searcher entry point")
        } else if produces_alternatives(ws, id) {
            Some("Alternative producer")
        } else if hot_path(path) {
            Some("runtime hot-path function")
        } else {
            None
        };
        if let Some(kind) = kind {
            sinks.push(Sink { id, kind });
        }
    }
    sinks
}

/// Whether a function's signature mentions `Alternative` after `->`
/// (i.e. it hands speculation alternatives to the runtime).
fn produces_alternatives(ws: &Workspace, id: FnId) -> bool {
    let def = ws.fn_def(id);
    let toks = &ws.file_of(id).lexed.tokens;
    let (start, end) = def.sig;
    let mut seen_arrow = false;
    for j in start..end.min(toks.len()) {
        if toks[j].is_punct('-') && toks.get(j + 1).is_some_and(|t| t.is_punct('>')) {
            seen_arrow = true;
        }
        if seen_arrow && toks[j].is_ident("Alternative") {
            return true;
        }
    }
    false
}

/// Scan every production function body for sources.
fn collect_sources(ws: &Workspace) -> BTreeMap<FnId, Vec<Source>> {
    let mut map = BTreeMap::new();
    for (id, def) in ws.iter_fns() {
        if def.test_only {
            continue;
        }
        let Some(range) = def.body else { continue };
        let srcs = sources_in(&ws.file_of(id).lexed, range);
        if !srcs.is_empty() {
            map.insert(id, srcs);
        }
    }
    map
}

/// Token-pattern source scan over one body range.
fn sources_in(file: &LexedFile, (start, end): (usize, usize)) -> Vec<Source> {
    const RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];
    let toks = &file.tokens;
    let end = end.min(toks.len());
    let mut out = Vec::new();
    let at = |t: &Tok, len: usize, what: String, base: Option<&'static str>| Source {
        line: t.line,
        col: t.col,
        len,
        what,
        base,
    };
    for j in start..end {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name_len = t.text.chars().count();
        if RNG_IDENTS.contains(&t.text.as_str()) {
            out.push(at(
                t,
                name_len,
                format!("`{}` (ambient entropy)", t.text),
                Some("ND001"),
            ));
        } else if (t.text == "Instant" || t.text == "SystemTime")
            && toks.get(j + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(j + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(j + 3).is_some_and(|a| a.is_ident("now"))
        {
            out.push(at(
                t,
                name_len + "::now".len(),
                format!("`{}::now` (wall clock)", t.text),
                Some("ND002"),
            ));
        } else if t.text == "HashMap" || t.text == "HashSet" {
            out.push(at(
                t,
                name_len,
                format!("`{}` (unordered iteration)", t.text),
                Some("ND003"),
            ));
        } else if t.is_ident("static") && toks.get(j + 1).is_some_and(|a| a.is_ident("mut")) {
            out.push(at(
                t,
                "static mut".len(),
                "`static mut` (hidden mutable state)".to_string(),
                Some("ND004"),
            ));
        } else if t.is_ident("thread_local") && toks.get(j + 1).is_some_and(|a| a.is_punct('!')) {
            out.push(at(
                t,
                "thread_local!".len(),
                "`thread_local!` (hidden mutable state)".to_string(),
                Some("ND004"),
            ));
        } else if t.text == "thread"
            && toks.get(j + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(j + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(j + 3).is_some_and(|a| a.is_ident("current"))
        {
            out.push(at(
                t,
                "thread::current".len(),
                "`thread::current` (thread identity)".to_string(),
                Some("ND008"),
            ));
        } else if t.text == "available_parallelism" {
            out.push(at(
                t,
                name_len,
                "`available_parallelism` (host width)".to_string(),
                Some("ND008"),
            ));
        }
    }
    // `Relaxed` atomic loads in `if`/`while` conditions: the loaded value
    // steers control flow, and relaxed ordering makes which write it sees
    // schedule-dependent. No single-file rule covers this pattern.
    let mut j = start;
    while j < end {
        if toks[j].is_ident("if") || toks[j].is_ident("while") {
            let cond_end = condition_end(toks, j + 1, end);
            for k in j + 1..cond_end {
                if toks[k].is_ident("load")
                    && k > 0
                    && toks[k - 1].is_punct('.')
                    && toks.get(k + 1).is_some_and(|a| a.is_punct('('))
                {
                    let close = paren_end(toks, k + 1, end);
                    if toks[k + 1..close].iter().any(|a| a.is_ident("Relaxed")) {
                        out.push(Source {
                            line: toks[k].line,
                            col: toks[k].col,
                            len: "load".len(),
                            what: "`.load(Relaxed)` in a branch condition".to_string(),
                            base: None,
                        });
                    }
                }
            }
            j = cond_end;
            continue;
        }
        j += 1;
    }
    out.sort_by_key(|s| (s.line, s.col));
    out.dedup_by_key(|s| (s.line, s.col));
    out
}

/// First `{` at bracket depth 0 after `start` (the end of an `if`/
/// `while` condition).
fn condition_end(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('{') && depth == 0 {
            return j;
        }
        j += 1;
    }
    end
}

/// Index just past the paren matching `toks[open]`.
fn paren_end(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// ND009: breadth-first search from each sink over static call edges.
fn nd009(
    ws: &Workspace,
    graph: &CallGraph,
    sinks: &[Sink],
    sink_set: &BTreeSet<FnId>,
    sources: &BTreeMap<FnId, Vec<Source>>,
    findings: &mut Vec<Finding>,
) {
    let rule = rule_by_id("ND009");
    for sink in sinks {
        let sink_def = ws.fn_def(sink.id);
        let sink_file = ws.file_of(sink.id);
        // parent[v] = (caller, site index) on the shortest path from the
        // sink; the sink itself has no parent.
        let mut parent: BTreeMap<FnId, (FnId, usize)> = BTreeMap::new();
        let mut depth: BTreeMap<FnId, usize> = BTreeMap::new();
        let mut queue = VecDeque::new();
        depth.insert(sink.id, 0);
        queue.push_back(sink.id);
        while let Some(u) = queue.pop_front() {
            let d = depth[&u];
            if let Some(srcs) = sources.get(&u) {
                for src in srcs {
                    // Depth 0 is the sink's own body: single-file rules
                    // already police it wherever they apply, so only
                    // report patterns those rules do not cover here.
                    let covered_by_file_rule = d == 0
                        && src
                            .base
                            .is_some_and(|b| (rule_by_id(b).applies_to)(&ws.file_of(u).path));
                    if covered_by_file_rule {
                        continue;
                    }
                    // A waived base rule sanctions the source outright.
                    if let Some(base) = src.base {
                        if ws.file_of(u).lexed.is_allowed(base, src.line) {
                            continue;
                        }
                    }
                    findings.push(build_nd009_finding(
                        ws, graph, rule, sink, sink_def, sink_file, u, src, &parent,
                    ));
                }
            }
            for &site_idx in graph.sites_of(u) {
                let site = &graph.sites[site_idx];
                let Resolution::Static(cands) = &site.resolution else {
                    continue;
                };
                for &v in cands {
                    if depth.contains_key(&v) || sink_set.contains(&v) {
                        continue;
                    }
                    depth.insert(v, d + 1);
                    parent.insert(v, (u, site_idx));
                    queue.push_back(v);
                }
            }
        }
    }
    // Rebuild in deterministic order and drop duplicate chains that
    // report the same source from the same sink.
    findings.sort_by(|a, b| {
        (
            &a.diag.file,
            a.diag.line,
            a.diag.col,
            a.diag.rule,
            &a.diag.message,
        )
            .cmp(&(
                &b.diag.file,
                b.diag.line,
                b.diag.col,
                b.diag.rule,
                &b.diag.message,
            ))
    });
    findings.dedup_by(|a, b| {
        a.diag.rule == b.diag.rule
            && a.diag.file == b.diag.file
            && a.diag.line == b.diag.line
            && a.diag.col == b.diag.col
            && a.diag.message == b.diag.message
    });
}

#[allow(clippy::too_many_arguments)]
fn build_nd009_finding(
    ws: &Workspace,
    graph: &CallGraph,
    rule: &'static crate::lint::Rule,
    sink: &Sink,
    sink_def: &crate::ast::FnDef,
    sink_file: &crate::ast::ParsedFile,
    tainted: FnId,
    src: &Source,
    parent: &BTreeMap<FnId, (FnId, usize)>,
) -> Finding {
    let chain = chain_to(tainted, parent);
    let hops = chain.len();
    let src_file = ws.file_of(tainted);
    let message = if hops == 0 {
        format!("{} inside {} `{}`", src.what, sink.kind, sink_def.display())
    } else {
        format!(
            "{} reaches {} `{}` through {} call{}",
            src.what,
            sink.kind,
            sink_def.display(),
            hops,
            if hops == 1 { "" } else { "s" }
        )
    };
    let mut notes = vec![Note {
        label: format!("{} `{}` declared here", sink.kind, sink_def.display()),
        file: sink_file.path.clone(),
        line: sink_def.line,
        col: sink_def.col,
        len: "fn ".len() + sink_def.name.chars().count(),
        snippet: sink_file.lexed.line(sink_def.line).to_string(),
    }];
    // Hop notes, sink-to-source order. Each hop is a call site inside
    // the caller's file.
    for (i, &(caller, site_idx, callee)) in chain.iter().enumerate() {
        let site = &graph.sites[site_idx];
        let caller_file = ws.file_of(caller);
        notes.push(Note {
            label: format!(
                "hop {}: `{}` calls `{}`",
                i + 1,
                ws.fn_def(caller).name,
                ws.display_fn(callee)
            ),
            file: caller_file.path.clone(),
            line: site.line,
            col: site.col,
            len: site.len,
            snippet: caller_file.lexed.line(site.line).to_string(),
        });
    }
    // Waiver: ND009 can be allowed at the source line, at the sink's
    // declaration line, or at any hop's call site.
    let mut waiver = src_file
        .lexed
        .waiver_reason("ND009", src.line)
        .map(str::to_string);
    if waiver.is_none() {
        waiver = sink_file
            .lexed
            .waiver_reason("ND009", sink_def.line)
            .map(str::to_string);
    }
    if waiver.is_none() {
        for &(caller, site_idx, _) in &chain {
            let site = &graph.sites[site_idx];
            if let Some(r) = ws.file_of(caller).lexed.waiver_reason("ND009", site.line) {
                waiver = Some(r.to_string());
                break;
            }
        }
    }
    Finding {
        diag: Diagnostic {
            rule: rule.id,
            message,
            file: src_file.path.clone(),
            line: src.line,
            col: src.col,
            len: src.len,
            snippet: src_file.lexed.line(src.line).to_string(),
            hint: rule.hint,
            notes,
        },
        waived: waiver.is_some(),
        waiver_reason: waiver,
    }
}

/// Walk `parent` pointers from `tainted` back to the sink, returning the
/// chain in sink-to-source order as `(caller, site index, callee)`.
fn chain_to(tainted: FnId, parent: &BTreeMap<FnId, (FnId, usize)>) -> Vec<(FnId, usize, FnId)> {
    let mut rev = Vec::new();
    let mut cur = tainted;
    while let Some(&(prev, site)) = parent.get(&cur) {
        rev.push((prev, site, cur));
        cur = prev;
    }
    rev.reverse();
    rev
}

/// ND010: non-`move` pool task closures capturing `&mut` state.
fn nd010(ws: &Workspace, findings: &mut Vec<Finding>) {
    let rule = rule_by_id("ND010");
    for (id, def) in ws.iter_fns() {
        if def.test_only {
            continue;
        }
        let file = ws.file_of(id);
        if !hot_path(&file.path) {
            continue;
        }
        let Some((start, end)) = def.body else {
            continue;
        };
        let toks = &file.lexed.tokens;
        let end = end.min(toks.len());
        for j in start..end {
            // `.spawn(` / `.spawn_urgent(` …
            let is_spawn = toks[j].kind == TokKind::Ident
                && (toks[j].text == "spawn" || toks[j].text == "spawn_urgent")
                && j > 0
                && toks[j - 1].is_punct('.')
                && toks.get(j + 1).is_some_and(|t| t.is_punct('('));
            if !is_spawn {
                continue;
            }
            let open = j + 1;
            // … with a closure argument that does NOT take ownership.
            if !toks.get(open + 1).is_some_and(|t| t.is_punct('|')) {
                continue; // `move |…|` or a non-closure argument
            }
            let close = paren_end(toks, open, end);
            // Names bound inside the closure (params and lets) may be
            // borrowed mutably without racing the enclosing scope.
            let mut bound = BTreeSet::new();
            let params_close = toks[open + 2..close]
                .iter()
                .position(|t| t.is_punct('|'))
                .map(|p| open + 2 + p)
                .unwrap_or(close);
            for t in &toks[open + 2..params_close] {
                if t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref" {
                    bound.insert(t.text.clone());
                }
            }
            for k in params_close..close {
                if toks[k].is_ident("let") {
                    if let Some(n) = toks.get(k + 1) {
                        if n.kind == TokKind::Ident {
                            bound.insert(n.text.clone());
                        }
                        if n.is_ident("mut") {
                            if let Some(n2) = toks.get(k + 2) {
                                if n2.kind == TokKind::Ident {
                                    bound.insert(n2.text.clone());
                                }
                            }
                        }
                    }
                }
            }
            // `&mut name` where `name` comes from outside the closure.
            for k in params_close..close {
                if toks[k].is_punct('&')
                    && toks.get(k + 1).is_some_and(|t| t.is_ident("mut"))
                    && toks
                        .get(k + 2)
                        .is_some_and(|t| t.kind == TokKind::Ident && !bound.contains(&t.text))
                {
                    let name = &toks[k + 2];
                    let amp = &toks[k];
                    let len = if name.line == amp.line {
                        name.col + name.text.chars().count() - amp.col
                    } else {
                        "&mut ".len() + name.text.chars().count()
                    };
                    let waiver = file
                        .lexed
                        .waiver_reason("ND010", amp.line)
                        .map(str::to_string);
                    findings.push(Finding {
                        diag: Diagnostic {
                            rule: rule.id,
                            message: format!(
                                "pool task closure captures `&mut {}` from the enclosing scope",
                                name.text
                            ),
                            file: file.path.clone(),
                            line: amp.line,
                            col: amp.col,
                            len,
                            snippet: file.lexed.line(amp.line).to_string(),
                            hint: rule.hint,
                            notes: vec![Note {
                                label: format!(
                                    "spawned outside the scoped-borrow API in `{}`",
                                    def.display()
                                ),
                                file: file.path.clone(),
                                line: def.line,
                                col: def.col,
                                len: "fn ".len() + def.name.chars().count(),
                                snippet: file.lexed.line(def.line).to_string(),
                            }],
                        },
                        waived: waiver.is_some(),
                        waiver_reason: waiver,
                    });
                }
            }
        }
    }
}

/// ND011: unwaived dynamic calls on sink-reachable paths.
fn nd011(
    ws: &Workspace,
    graph: &CallGraph,
    sink_set: &BTreeSet<FnId>,
    findings: &mut Vec<Finding>,
) {
    let rule = rule_by_id("ND011");
    // Forward closure: every function a sink can reach (including the
    // sinks themselves) is a place where blind dispatch breaks tracing.
    let mut reachable: BTreeSet<FnId> = sink_set.clone();
    let mut queue: VecDeque<FnId> = sink_set.iter().copied().collect();
    while let Some(u) = queue.pop_front() {
        for &site_idx in graph.sites_of(u) {
            if let Resolution::Static(cands) = &graph.sites[site_idx].resolution {
                for &v in cands {
                    if reachable.insert(v) {
                        queue.push_back(v);
                    }
                }
            }
        }
    }
    for site in &graph.sites {
        if site.resolution != Resolution::Dynamic
            || !reachable.contains(&site.caller)
            || ws.fn_def(site.caller).test_only
        {
            continue;
        }
        let def = ws.fn_def(site.caller);
        let file = ws.file_of(site.caller);
        let waiver = file
            .lexed
            .waiver_reason("ND011", site.line)
            .map(str::to_string);
        findings.push(Finding {
            diag: Diagnostic {
                rule: rule.id,
                message: format!(
                    "dynamic call via `{}` on a sink-reachable path cannot be traced",
                    site.name
                ),
                file: file.path.clone(),
                line: site.line,
                col: site.col,
                len: site.len,
                snippet: file.lexed.line(site.line).to_string(),
                hint: rule.hint,
                notes: vec![Note {
                    label: format!("`{}` is reachable from a protocol sink", def.display()),
                    file: file.path.clone(),
                    line: def.line,
                    col: def.col,
                    len: "fn ".len() + def.name.chars().count(),
                    snippet: file.lexed.line(def.line).to_string(),
                }],
            },
            waived: waiver.is_some(),
            waiver_reason: waiver,
        });
    }
}
