//! # stats-analyzer
//!
//! Two engines that defend the STATS workbench's core invariant — *all
//! nondeterminism flows through the seeded per-role streams* — from both
//! directions:
//!
//! * [`lint`]: a static pass over the workspace sources that flags
//!   determinism hazards (ambient RNG, wall-clock reads, unordered
//!   iteration, hidden mutable state, stream bypasses) with rustc-style
//!   diagnostics and allow-list comments.
//! * [`model`]: a protocol model checker that re-executes the speculation
//!   protocol of §II-B through the public [`stats_core`] API and asserts,
//!   on small inputs, that decisions are independent of worker completion
//!   order, that the threaded runtime agrees with the semantic layer, and
//!   that replica validation is order-invariant and pure.
//!
//! Both ship behind one CLI: `cargo run -p stats-analyzer -- lint|check`.

pub mod diag;
pub mod lex;
pub mod lint;
pub mod model;
