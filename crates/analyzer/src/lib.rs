//! # stats-analyzer
//!
//! Two engines that defend the STATS workbench's core invariant — *all
//! nondeterminism flows through the seeded per-role streams* — from both
//! directions:
//!
//! * [`lint`]: a static pass over the workspace sources that flags
//!   determinism hazards (ambient RNG, wall-clock reads, unordered
//!   iteration, hidden mutable state, stream bypasses) with rustc-style
//!   diagnostics and allow-list comments. The per-file rules are fed by
//!   the hermetic lexer ([`lex`]); the interprocedural rules chain the
//!   item-level parser ([`ast`]), the workspace call graph
//!   ([`callgraph`]), and the taint engine ([`taint`]) to report full
//!   source→…→sink call chains. [`output`] renders reports as JSON and
//!   GitHub Actions annotations for CI.
//! * [`model`]: a protocol model checker that re-executes the speculation
//!   protocol of §II-B through the public [`stats_core`] API and asserts,
//!   on small inputs, that decisions are independent of worker completion
//!   order, that the threaded runtime agrees with the semantic layer, and
//!   that replica validation is order-invariant and pure.
//!
//! Both ship behind one CLI: `cargo run -p stats-analyzer -- lint|check`.

pub mod ast;
pub mod callgraph;
pub mod diag;
pub mod lex;
pub mod lint;
pub mod model;
pub mod output;
pub mod taint;
