//! `stats-analyzer` — determinism lints and protocol model checking.
//!
//! ```text
//! stats-analyzer lint  [options] [paths...]  # default: every workspace crate
//! stats-analyzer check [benchmarks...]       # default: swaptions facetrack streamclassifier
//! stats-analyzer rules                       # list the lint rules
//! ```
//!
//! `lint` runs every rule — the per-file token patterns *and* the
//! interprocedural taint pass (ND009–ND011) over the workspace call
//! graph — and exits 1 when it finds anything unwaived; `check` exits 1
//! when a protocol property fails. Both are wired into CI.

use stats_analyzer::{lint, model, output};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("rules") => cmd_rules(),
        _ => {
            eprintln!(
                "usage: stats-analyzer <command>\n\
                 \n\
                 commands:\n\
                 \x20 lint  [options] [paths...]\n\
                 \x20                        lint .rs files for determinism hazards, including\n\
                 \x20                        the interprocedural taint rules (default roots:\n\
                 \x20                        every workspace crate)\n\
                 \x20                        --format text|json|github   output style\n\
                 \x20                        --out FILE                  also write the JSON report\n\
                 \x20                        --require-waiver-reasons    fail on bare allow(..)\n\
                 \x20 check [benchmarks...]  model-check the speculation protocol at small scale\n\
                 \x20                        (default: swaptions facetrack streamclassifier;\n\
                 \x20                        options: --inputs N, --chunks N, --seed N)\n\
                 \x20 rules                  list the lint rules"
            );
            ExitCode::from(2)
        }
    }
}

/// The repository root: two levels up from this crate's manifest, with a
/// cwd fallback so the binary also works when relocated.
fn repo_root() -> PathBuf {
    let from_manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from);
    match from_manifest {
        Some(root) if root.join("crates").is_dir() => root,
        _ => std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut format = "text".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut require_reasons = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "json" | "github")) => format = f.to_string(),
                _ => {
                    eprintln!("stats-analyzer: --format needs one of text|json|github");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(f) => out_file = Some(PathBuf::from(f)),
                None => {
                    eprintln!("stats-analyzer: --out needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--require-waiver-reasons" => require_reasons = true,
            path => paths.push(PathBuf::from(path)),
        }
    }
    let roots = if paths.is_empty() {
        lint::default_roots(&repo_root())
    } else {
        paths
    };
    if roots.is_empty() {
        eprintln!("stats-analyzer: no lint roots found (run from the repository)");
        return ExitCode::from(2);
    }
    let report = match lint::lint_workspace(&roots) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stats-analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &out_file {
        if let Err(e) = std::fs::write(path, output::json_report(&report)) {
            eprintln!("stats-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let unwaived = report.unwaived().count();
    let unexplained = report.unexplained_waivers().count();
    match format.as_str() {
        "json" => print!("{}", output::json_report(&report)),
        "github" => {
            print!("{}", output::github_annotations(&report));
            let g = &report.stats;
            println!(
                "stats-analyzer: {unwaived} unwaived finding(s), {} waived; call graph: \
                 {} static site(s), {} edge(s), {} dynamic, {} unresolved",
                report.findings.len() - unwaived,
                g.static_sites,
                g.static_edges,
                g.dynamic_sites,
                g.unresolved_sites,
            );
        }
        _ => {
            for f in report.unwaived() {
                println!("{}\n", f.diag);
            }
            if unwaived == 0 {
                println!("stats-analyzer: no determinism hazards found");
            } else {
                println!(
                    "stats-analyzer: {unwaived} finding(s); suppress intentional ones with \
                     `// stats-analyzer: allow(ND00X): reason`"
                );
            }
        }
    }
    if require_reasons && unexplained > 0 {
        for f in report.unexplained_waivers() {
            eprintln!(
                "stats-analyzer: {} waiver for {} has no written reason",
                f.diag.location(),
                f.diag.rule
            );
        }
        return ExitCode::FAILURE;
    }
    if unwaived == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let (default_n, default_cfg) = model::default_check_config();
    let mut n = default_n;
    let mut cfg = default_cfg;
    let mut seed = 7u64;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut numeric = |what: &str| -> Option<u64> {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => Some(v),
                None => {
                    eprintln!("stats-analyzer: {what} needs a numeric value");
                    None
                }
            }
        };
        match a.as_str() {
            "--inputs" => match numeric("--inputs") {
                Some(v) => n = v as usize,
                None => return ExitCode::from(2),
            },
            "--chunks" => match numeric("--chunks") {
                Some(v) => cfg.chunks = v as usize,
                None => return ExitCode::from(2),
            },
            "--seed" => match numeric("--seed") {
                Some(v) => seed = v,
                None => return ExitCode::from(2),
            },
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = ["swaptions", "facetrack", "streamclassifier"]
            .map(String::from)
            .to_vec();
    }
    if let Err(e) = cfg.validate(n) {
        eprintln!("stats-analyzer: invalid check configuration: {e}");
        return ExitCode::from(2);
    }
    for name in &names {
        if !stats_workloads::EXTENDED_BENCHMARK_NAMES.contains(&name.as_str()) {
            eprintln!(
                "stats-analyzer: unknown benchmark {name:?} (known: {})",
                stats_workloads::EXTENDED_BENCHMARK_NAMES.join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let mut all_passed = true;
    for name in &names {
        let report = model::check_benchmark(name, n, cfg, seed);
        println!("{report}\n");
        all_passed &= report.passed();
    }
    if all_passed {
        println!("stats-analyzer: all protocol properties hold");
        ExitCode::SUCCESS
    } else {
        println!("stats-analyzer: protocol property violated");
        ExitCode::FAILURE
    }
}

fn cmd_rules() -> ExitCode {
    for rule in lint::registry() {
        println!("{}  {}", rule.id, rule.summary);
        println!("       fix: {}", rule.hint);
    }
    ExitCode::SUCCESS
}
