//! `stats-analyzer` — determinism lints and protocol model checking.
//!
//! ```text
//! stats-analyzer lint  [paths...]        # default: every crate except this one
//! stats-analyzer check [benchmarks...]   # default: swaptions facetrack streamclassifier
//! stats-analyzer rules                   # list the lint rules
//! ```
//!
//! `lint` exits 1 when it finds anything; `check` exits 1 when a protocol
//! property fails. Both are wired into CI.

use stats_analyzer::{lint, model};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("rules") => cmd_rules(),
        _ => {
            eprintln!(
                "usage: stats-analyzer <command>\n\
                 \n\
                 commands:\n\
                 \x20 lint  [paths...]       lint .rs files for determinism hazards\n\
                 \x20                        (default: every workspace crate except the analyzer)\n\
                 \x20 check [benchmarks...]  model-check the speculation protocol at small scale\n\
                 \x20                        (default: swaptions facetrack streamclassifier;\n\
                 \x20                        options: --inputs N, --chunks N, --seed N)\n\
                 \x20 rules                  list the lint rules"
            );
            ExitCode::from(2)
        }
    }
}

/// The repository root: two levels up from this crate's manifest, with a
/// cwd fallback so the binary also works when relocated.
fn repo_root() -> PathBuf {
    let from_manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from);
    match from_manifest {
        Some(root) if root.join("crates").is_dir() => root,
        _ => std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let roots: Vec<PathBuf> = if args.is_empty() {
        lint::default_roots(&repo_root())
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    if roots.is_empty() {
        eprintln!("stats-analyzer: no lint roots found (run from the repository)");
        return ExitCode::from(2);
    }
    let diagnostics = match lint::lint_paths(&roots) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stats-analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &diagnostics {
        println!("{d}\n");
    }
    if diagnostics.is_empty() {
        println!("stats-analyzer: no determinism hazards found");
        ExitCode::SUCCESS
    } else {
        println!(
            "stats-analyzer: {} finding(s); suppress intentional ones with \
             `// stats-analyzer: allow(ND00X): reason`",
            diagnostics.len()
        );
        ExitCode::FAILURE
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let (default_n, default_cfg) = model::default_check_config();
    let mut n = default_n;
    let mut cfg = default_cfg;
    let mut seed = 7u64;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut numeric = |what: &str| -> Option<u64> {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => Some(v),
                None => {
                    eprintln!("stats-analyzer: {what} needs a numeric value");
                    None
                }
            }
        };
        match a.as_str() {
            "--inputs" => match numeric("--inputs") {
                Some(v) => n = v as usize,
                None => return ExitCode::from(2),
            },
            "--chunks" => match numeric("--chunks") {
                Some(v) => cfg.chunks = v as usize,
                None => return ExitCode::from(2),
            },
            "--seed" => match numeric("--seed") {
                Some(v) => seed = v,
                None => return ExitCode::from(2),
            },
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = ["swaptions", "facetrack", "streamclassifier"]
            .map(String::from)
            .to_vec();
    }
    if let Err(e) = cfg.validate(n) {
        eprintln!("stats-analyzer: invalid check configuration: {e}");
        return ExitCode::from(2);
    }
    for name in &names {
        if !stats_workloads::EXTENDED_BENCHMARK_NAMES.contains(&name.as_str()) {
            eprintln!(
                "stats-analyzer: unknown benchmark {name:?} (known: {})",
                stats_workloads::EXTENDED_BENCHMARK_NAMES.join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let mut all_passed = true;
    for name in &names {
        let report = model::check_benchmark(name, n, cfg, seed);
        println!("{report}\n");
        all_passed &= report.passed();
    }
    if all_passed {
        println!("stats-analyzer: all protocol properties hold");
        ExitCode::SUCCESS
    } else {
        println!("stats-analyzer: protocol property violated");
        ExitCode::FAILURE
    }
}

fn cmd_rules() -> ExitCode {
    for rule in lint::registry() {
        println!("{}  {}", rule.id, rule.summary);
        println!("       fix: {}", rule.hint);
    }
    ExitCode::SUCCESS
}
