//! Rustc-style diagnostics for the lint pass.

use std::fmt;
use std::path::Path;

/// One lint finding, with everything needed to render a rustc-style
/// report: rule id, location, the offending source line, and a fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `ND002`.
    pub rule: &'static str,
    /// One-line description of what was found.
    pub message: String,
    /// Path of the offending file, as given to the linter.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the first offending character.
    pub col: usize,
    /// Length of the underlined region, in characters (at least 1).
    pub len: usize,
    /// The full source line, for the snippet.
    pub snippet: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl Diagnostic {
    /// `file:line:col` for terse listings and sorting.
    pub fn location(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        writeln!(f, "warning[{}]: {}", self.rule, self.message)?;
        writeln!(f, "{pad}--> {}:{}:{}", self.file, self.line, self.col)?;
        writeln!(f, "{pad} |")?;
        writeln!(f, "{gutter} | {}", self.snippet)?;
        let underline = "^".repeat(self.len.max(1));
        writeln!(
            f,
            "{pad} | {}{underline}",
            " ".repeat(self.col.saturating_sub(1))
        )?;
        write!(f, "{pad} = help: {}", self.hint)
    }
}

/// Shorten an absolute path to be relative to the current directory when
/// possible, for readable diagnostics.
pub fn display_path(path: &Path) -> String {
    match std::env::current_dir() {
        Ok(cwd) => path
            .strip_prefix(&cwd)
            .unwrap_or(path)
            .display()
            .to_string(),
        Err(_) => path.display().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic {
            rule: "ND002",
            message: "wall-clock time read".to_string(),
            file: "src/lib.rs".to_string(),
            line: 12,
            col: 9,
            len: 12,
            snippet: "    let t = Instant::now();".to_string(),
            hint: "derive timing from the simulated clock",
        };
        let text = d.to_string();
        assert!(text.contains("warning[ND002]"));
        assert!(text.contains("--> src/lib.rs:12:9"));
        assert!(text.contains("12 |     let t = Instant::now();"));
        assert!(text.contains("^^^^^^^^^^^^"));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn location_is_terse() {
        let d = Diagnostic {
            rule: "ND001",
            message: String::new(),
            file: "a.rs".to_string(),
            line: 3,
            col: 7,
            len: 1,
            snippet: String::new(),
            hint: "",
        };
        assert_eq!(d.location(), "a.rs:3:7");
    }
}
