//! Rustc-style diagnostics for the lint pass.

use std::fmt;
use std::path::Path;

/// A secondary span attached to a [`Diagnostic`]: one hop of a call
/// chain, a sink declaration, or any other related location. Rendered as
/// a rustc-style `note:` block under the primary span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// What this span shows (e.g. "sink `core::…::update` declared here"
    /// or "hop 1: `update` calls `helpers::jitter`").
    pub label: String,
    /// Path of the file this span points into.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
    /// Length of the underlined region, in characters (at least 1).
    pub len: usize,
    /// The full source line, for the snippet.
    pub snippet: String,
}

/// One lint finding, with everything needed to render a rustc-style
/// report: rule id, location, the offending source line, and a fix hint.
/// Interprocedural findings carry the full source→…→sink call chain as
/// secondary [`Note`] spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `ND002`.
    pub rule: &'static str,
    /// One-line description of what was found.
    pub message: String,
    /// Path of the offending file, as given to the linter.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the first offending character.
    pub col: usize,
    /// Length of the underlined region, in characters (at least 1).
    pub len: usize,
    /// The full source line, for the snippet.
    pub snippet: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Secondary spans (call-chain hops), in sink-to-source order.
    /// Empty for single-span findings.
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// `file:line:col` for terse listings and sorting.
    pub fn location(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

/// Write one `line | snippet` + underline block.
fn write_span(
    f: &mut fmt::Formatter<'_>,
    pad: &str,
    line: usize,
    col: usize,
    len: usize,
    snippet: &str,
) -> fmt::Result {
    let gutter = line.to_string();
    writeln!(f, "{pad} |")?;
    writeln!(f, "{gutter} | {snippet}")?;
    let underline = "^".repeat(len.max(1));
    writeln!(
        f,
        "{pad} | {}{underline}",
        " ".repeat(col.saturating_sub(1))
    )
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gutter = self.line.to_string();
        let pad = " ".repeat(
            gutter.len().max(
                self.notes
                    .iter()
                    .map(|n| n.line.to_string().len())
                    .max()
                    .unwrap_or(0),
            ),
        );
        writeln!(f, "warning[{}]: {}", self.rule, self.message)?;
        writeln!(f, "{pad}--> {}:{}:{}", self.file, self.line, self.col)?;
        write_span(f, &pad, self.line, self.col, self.len, &self.snippet)?;
        for note in &self.notes {
            writeln!(f, "{pad} = note: {}", note.label)?;
            writeln!(f, "{pad}--> {}:{}:{}", note.file, note.line, note.col)?;
            write_span(f, &pad, note.line, note.col, note.len, &note.snippet)?;
        }
        write!(f, "{pad} = help: {}", self.hint)
    }
}

/// Shorten an absolute path to be relative to the current directory when
/// possible, for readable diagnostics.
pub fn display_path(path: &Path) -> String {
    match std::env::current_dir() {
        Ok(cwd) => path
            .strip_prefix(&cwd)
            .unwrap_or(path)
            .display()
            .to_string(),
        Err(_) => path.display().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic {
            rule: "ND002",
            message: "wall-clock time read".to_string(),
            file: "src/lib.rs".to_string(),
            line: 12,
            col: 9,
            len: 12,
            snippet: "    let t = Instant::now();".to_string(),
            hint: "derive timing from the simulated clock",
            notes: Vec::new(),
        };
        let text = d.to_string();
        assert!(text.contains("warning[ND002]"));
        assert!(text.contains("--> src/lib.rs:12:9"));
        assert!(text.contains("12 |     let t = Instant::now();"));
        assert!(text.contains("^^^^^^^^^^^^"));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn location_is_terse() {
        let d = Diagnostic {
            rule: "ND001",
            message: String::new(),
            file: "a.rs".to_string(),
            line: 3,
            col: 7,
            len: 1,
            snippet: String::new(),
            hint: "",
            notes: Vec::new(),
        };
        assert_eq!(d.location(), "a.rs:3:7");
    }

    #[test]
    fn notes_render_as_secondary_spans() {
        let d = Diagnostic {
            rule: "ND009",
            message: "ambient entropy reaches a protocol sink".to_string(),
            file: "src/helpers.rs".to_string(),
            line: 7,
            col: 11,
            len: 10,
            snippet: "    rand::thread_rng()".to_string(),
            hint: "draw from the StatsRng stream instead",
            notes: vec![
                Note {
                    label: "protocol sink `Pipe::update` declared here".to_string(),
                    file: "src/lib.rs".to_string(),
                    line: 3,
                    col: 8,
                    len: 6,
                    snippet: "    fn update(&self) {".to_string(),
                },
                Note {
                    label: "hop 1: `update` calls `jitter`".to_string(),
                    file: "src/lib.rs".to_string(),
                    line: 4,
                    col: 9,
                    len: 6,
                    snippet: "        jitter();".to_string(),
                },
            ],
        };
        let text = d.to_string();
        assert!(text.contains("= note: protocol sink `Pipe::update` declared here"));
        assert!(text.contains("--> src/lib.rs:3:8"));
        assert!(text.contains("= note: hop 1: `update` calls `jitter`"));
        assert!(text.contains("--> src/lib.rs:4:9"));
        // The primary span comes first, the help line last.
        assert!(text.find("src/helpers.rs:7:11").unwrap() < text.find("src/lib.rs:3:8").unwrap());
        assert!(text
            .trim_end()
            .ends_with("= help: draw from the StatsRng stream instead"));
    }
}
