//! Model-checker regression tests at tiny scale: the protocol properties
//! must hold for the paper's driving example (`swaptions`), a
//! particle-filter workload (`facetrack`), and enough further benchmarks
//! to cover the schedule-independence acceptance bar (≥3).

use stats_analyzer::model::{check_benchmark, default_check_config};
use stats_core::Config;

#[test]
fn swaptions_protocol_properties_hold() {
    let (n, cfg) = default_check_config();
    for seed in [1, 7, 23] {
        let report = check_benchmark("swaptions", n, cfg, seed);
        assert!(report.passed(), "seed {seed}:\n{report}");
    }
}

#[test]
fn facetrack_protocol_properties_hold() {
    // The particle-filter regression: big cloud states, tolerance-based
    // matching, seed-dependent re-detection — the hardest case for
    // decision determinism.
    let (n, cfg) = default_check_config();
    for seed in [1, 7] {
        let report = check_benchmark("facetrack", n, cfg, seed);
        assert!(report.passed(), "seed {seed}:\n{report}");
    }
}

#[test]
fn schedule_independence_holds_across_the_suite() {
    // Acceptance: decision schedule-independence for at least three
    // benchmarks at small scale.
    let (n, cfg) = default_check_config();
    for name in [
        "swaptions",
        "facetrack",
        "streamclassifier",
        "streamcluster",
    ] {
        let report = check_benchmark(name, n, cfg, 7);
        let sched = report
            .results
            .iter()
            .find(|r| r.name == "schedule-independence")
            .expect("property present");
        assert!(sched.passed, "{name}:\n{report}");
        assert!(report.passed(), "{name}:\n{report}");
    }
}

#[test]
fn properties_hold_under_aborts() {
    // fluidanimate (the excluded negative control) aborts everywhere;
    // the protocol invariants must survive the rerun paths too.
    let report = check_benchmark("fluidanimate", 32, Config::stats_only(4, 2, 1), 3);
    assert!(report.passed(), "{report}");
}

#[test]
fn report_counts_every_property() {
    let (n, cfg) = default_check_config();
    let report = check_benchmark("swaptions", n, cfg, 7);
    let names: Vec<_> = report.results.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        [
            "replay-decisions",
            "schedule-independence",
            "completion-order",
            "validation-invariance"
        ]
    );
}
