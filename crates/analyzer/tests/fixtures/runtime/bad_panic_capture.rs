//! ND015 fixture (path says `runtime/`): panic-capture machinery outside
//! the fault plane swallows a worker failure before the pool's scope
//! poisoning and the fault counters can see it — recovery happens, but
//! silently, and the threaded/simulated fault telemetry stops
//! reconciling. Raising with `panic!` stays legal (invariants must abort
//! loudly); the waived shim stays quiet.

fn run_chunk(task: impl FnOnce()) {
    let result = std::panic::catch_unwind(AssertUnwindSafe(task));
    if result.is_err() {
        retry_quietly();
    }
}

fn relay(payload: Box<dyn Any + Send>) {
    resume_unwind(payload);
}

fn install() {
    panic::set_hook(Box::new(|_| {}));
}

fn guard(c: usize) {
    // Raising is not capturing: the macro must not fire the rule.
    panic!("chunk {c} violated the commit invariant");
}

fn shim(task: impl FnOnce()) {
    // stats-analyzer: allow(ND015): test-only harness shim
    let _ = catch_unwind(AssertUnwindSafe(task));
}
