//! ND014 fixture (path says `runtime/`): a pool task that parks on a
//! blocking channel receive holds a worker hostage — with fewer workers
//! than chunks the sender may never be scheduled and the run deadlocks.
//! The coordinator-side receive (outside any task closure) and the
//! waived handoff stay quiet.

fn schedule(scope: &PoolScope, rx: Receiver<Verdict>) {
    scope.spawn(move || {
        let verdict = rx.recv().expect("coordinator alive");
        apply(verdict);
    });
    scope.spawn_urgent(move || {
        if let Ok(v) = rx.recv_timeout(BUDGET) {
            apply(v);
        }
    });
}

fn coordinate(rx: &Receiver<WorkerResult>) {
    // The coordinator is not a pool worker: waiting here is the design.
    let result = rx.recv().expect("worker alive");
    commit(result);
}

fn handoff(scope: &PoolScope, rx: Receiver<Seal>) {
    scope.spawn(move || {
        // stats-analyzer: allow(ND014): bounded handoff, sender already ran
        let seal = rx.recv().expect("sealed");
        publish(seal);
    });
}
