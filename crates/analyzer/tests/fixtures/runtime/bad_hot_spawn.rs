//! Seeded ND007 violations: raw OS-thread creation inside a runtime hot
//! path. This file lives under a `runtime/` directory (and is not named
//! `pool.rs`), so the path-scoped rule applies to it.

use std::thread;

fn run_chunks(chunks: usize) {
    for c in 0..chunks {
        std::thread::spawn(move || compute(c));
    }
    thread::scope(|_s| {});
    let _b = thread::Builder::new().name("chunk".into());
    // Capacity probes are not thread creation.
    let _n = thread::available_parallelism();
    // stats-analyzer: allow(ND007): diagnostic helper thread, off the protocol path
    std::thread::spawn(|| heartbeat());
}

fn compute(_chunk: usize) {}
fn heartbeat() {}
