//! Fixture: direct wall-clock reads inside a runtime hot path. Each
//! read fires both the global ND002 and the hot-path-scoped ND012; the
//! waived site (sanctioned for both rules on one directive line) is
//! reported by neither.

use std::time::{Instant, SystemTime};

fn worker_loop() {
    let started = Instant::now();
    let wall = SystemTime::now();
    // stats-analyzer: allow(ND002): profiling timestamp stats-analyzer: allow(ND012): routed through the span recorder, never protocol logic
    let sanctioned = Instant::now();
    let _ = (started, wall, sanctioned);
}
