//! Seeded ND006 violations: stdio prints inside a runtime hot path.
//! This file lives under a `runtime/` directory so the path-scoped rule
//! applies to it.

fn worker_loop(chunk: usize) {
    println!("chunk {chunk} started");
    compute(chunk);
    eprintln!("chunk {chunk} validated");
    // stats-analyzer: allow(ND006): one-shot startup banner, outside the loop
    println!("worker online");
}

fn compute(_chunk: usize) {}
