//! ND013 fixture (path says `runtime/`): direct clones of workload
//! state dodge the snapshot API and always pay the full deep copy. The
//! range clone (not state) and the waived oracle copy stay quiet.

fn commit_chunk(state: &ChunkState, range: std::ops::Range<usize>) {
    let replica = state.clone();
    let window = range.clone();
    publish(replica, window);
}

fn replay(baseline: &mut ChunkState, committed: &ChunkState) {
    baseline.clone_from(committed);
}

fn audit(state: &ChunkState) {
    // stats-analyzer: allow(ND013): oracle copy, outside the measured region
    let oracle = state.clone();
    compare(oracle);
}
