//! A determinism-safe workload skeleton: every construct here is fine.

use std::collections::BTreeMap;

struct Ema {
    decay: f64,
}

impl StateDependence for Ema {
    fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
        // Draws only from the caller's role stream.
        *state = self.decay * *state + (1.0 - self.decay) * (*input + rng.noise(0.001));
        (*state, UpdateCost::with_work(100))
    }

    fn states_match(&self, a: &f64, b: &f64) -> bool {
        (a - b).abs() < 0.05
    }
}

fn histogram(values: &[u32]) -> BTreeMap<u32, u64> {
    let mut out = BTreeMap::new();
    for v in values {
        *out.entry(*v).or_insert(0u64) += 1;
    }
    out
}

// Mentions in comments and strings are not findings: thread_rng,
// Instant::now, HashMap, static mut.
const DOC: &str = "HashMap iteration order is why we use BTreeMap";

fn measured() -> u64 {
    // stats-analyzer: allow(ND002): measurement outside the model
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

// A seeded stream outside update/states_match is legitimate.
fn generate_inputs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StatsRng::from_seed_value(seed);
    (0..n).map(|_| rng.noise(1.0)).collect()
}
