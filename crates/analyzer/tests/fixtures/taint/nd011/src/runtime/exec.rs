//! ND011 fixture (hot-path file): dynamic dispatch on sink-reachable
//! paths, with and without a waiver.

pub fn run_task(task: fn() -> u64) -> u64 {
    task()
}

pub fn run_task_waived(task: fn() -> u64) -> u64 {
    // stats-analyzer: allow(ND011): fixture: callable audited deterministic
    task()
}
