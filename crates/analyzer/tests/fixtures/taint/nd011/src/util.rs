//! ND011 true negative: dynamic dispatch in a module no sink can reach.

pub fn free_dispatch(f: fn() -> u64) -> u64 {
    f()
}
