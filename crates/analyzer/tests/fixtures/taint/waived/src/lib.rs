//! Waiver-placement fixture: four identical source→sink chains, each
//! suppressed (or not) a different way.
//!
//! * `A`: `allow(ND009)` on the *source* line — waived.
//! * `B`: `allow(ND009)` on a *hop* call site — waived.
//! * `C`: `allow(ND009)` on the *sink declaration* — waived.
//! * `D`: `allow(ND002)` (the base rule) on the source line — the source
//!   is sanctioned outright, so no ND009 finding exists at all.

pub struct A;

impl A {
    pub fn update(&mut self) {
        helper_a();
    }
}

fn helper_a() -> u64 {
    // stats-analyzer: allow(ND009): fixture: the value never reaches a decision
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub struct B;

impl B {
    pub fn update(&mut self) {
        // stats-analyzer: allow(ND009): fixture: audited call into a noisy helper
        helper_b();
    }
}

fn helper_b() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub struct C;

impl C {
    // stats-analyzer: allow(ND009): fixture: the whole sink is audited
    pub fn update(&mut self) {
        helper_c();
    }
}

fn helper_c() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub struct D;

impl D {
    pub fn update(&mut self) {
        helper_d();
    }
}

fn helper_d() -> u64 {
    // stats-analyzer: allow(ND002): fixture: telemetry timestamp, decisions untouched
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
