//! ND009 acceptance fixture: `thread_rng()` in another module reaches a
//! protocol `update` through two helper calls.

pub mod helpers;

pub struct Pipeline {
    state: u64,
}

impl Pipeline {
    pub fn update(&mut self) {
        self.state = self.state.wrapping_add(helpers::jitter());
    }
}
