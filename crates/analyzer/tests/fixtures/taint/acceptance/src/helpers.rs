//! Helper module: the ambient draw is two calls away from the sink.

pub fn jitter() -> u64 {
    ambient_draw() % 7
}

fn ambient_draw() -> u64 {
    rand::thread_rng().gen()
}
