//! ND010 fixture (hot-path file): a non-`move` pool task closure that
//! mutably captures enclosing-scope state, next to two clean variants.

pub struct PoolScope;

impl PoolScope {
    pub fn spawn<F: FnOnce()>(&self, _f: F) {}
}

fn add_chunk(total: &mut u64) {
    *total += 1;
}

/// True positive: `total` lives in the enclosing frame and the closure
/// borrows it mutably without taking ownership.
pub fn drive_bad(scope: &PoolScope) -> u64 {
    let mut total = 0u64;
    scope.spawn(|| add_chunk(&mut total));
    total
}

/// True negative: a `move` closure owns its captures.
pub fn drive_good(scope: &PoolScope) -> u64 {
    let mut total = 0u64;
    scope.spawn(move || {
        total += 1;
    });
    total
}

/// True negative: the `&mut` target is bound inside the closure.
pub fn drive_local(scope: &PoolScope) {
    scope.spawn(|| {
        let mut local = 0u64;
        add_chunk(&mut local);
    });
}
