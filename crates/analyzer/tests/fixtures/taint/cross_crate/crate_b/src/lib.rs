//! The noisy dependency crate for the cross-crate ND009 fixture.

pub mod util;
