//! The wall-clock read the taint pass must trace across the crate edge.

pub fn noisy_delay() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
