//! ND009 cross-crate fixture: the sink lives here, the wall-clock read
//! lives in `stats-crate-b`.

pub struct Model {
    last: u64,
}

impl Model {
    pub fn update(&mut self) {
        self.last = stats_crate_b::util::noisy_delay();
    }
}
