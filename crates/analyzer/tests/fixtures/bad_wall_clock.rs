//! Seeded violation: wall-clock reads (ND002).

use std::time::{Instant, SystemTime};

fn stamp() -> u128 {
    let t = Instant::now();
    let epoch = SystemTime::now();
    let _ = epoch;
    t.elapsed().as_nanos()
}
