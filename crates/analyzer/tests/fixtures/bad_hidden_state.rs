//! Seeded violation: mutable state outside the State type (ND004).

use std::cell::RefCell;

static mut CALLS: u64 = 0;

thread_local! {
    static SCRATCH: RefCell<Vec<f64>> = RefCell::new(Vec::new());
}

struct Tracker {
    cache: RefCell<Option<f64>>,
}
