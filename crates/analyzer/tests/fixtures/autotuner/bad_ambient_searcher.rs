//! Seeded ND008 violations: a searcher whose `ask`/`tell` bodies read
//! ambient state (pool width, thread identity, the clock), which would
//! make the tuning trajectory depend on worker count and completion
//! order. Never compiled — lexed by the lint tests.

use std::thread;
use std::time::Instant;

struct JitterySearch {
    pool: PoolHandle,
    temperature: f64,
}

impl Searcher for JitterySearch {
    fn ask(&mut self, space: &DesignSpace, batch: usize) -> Vec<Config> {
        // Sizing the batch by pool width couples proposals to the host.
        let width = self.pool.workers();
        // Seeding choices from thread identity breaks replay entirely.
        let id = thread::current().id();
        sample(space, batch + width, id)
    }

    fn tell(&mut self, results: &[(Config, f64)]) {
        // stats-analyzer: allow(ND002): fixture isolates the ND008 read
        let arrived = Instant::now();
        // A waived probe is tolerated when justified:
        // stats-analyzer: allow(ND008): cooling logged for diagnostics only
        let hosts = available_parallelism();
        self.cool(results, arrived, hosts);
    }

    fn name(&self) -> &'static str {
        "jittery"
    }
}

fn pool_diagnostics(pool: &PoolHandle) {
    // The same probes outside ask/tell are legitimate (constructors size
    // caches, the tuner stamps pool width into telemetry).
    let _ = pool.workers();
}
