//! Seeded violation: RNG streams built inside protocol functions (ND005).

impl StateDependence for Sneaky {
    fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
        // Ignores the caller's stream: every replica redraws identically.
        let mut own = StatsRng::from_seed_value(42);
        *state += input + own.noise(0.1);
        (*state, UpdateCost::with_work(1))
    }

    fn states_match(&self, a: &f64, b: &f64) -> bool {
        let mut jitter = StatsRng::derive(0, StreamRole::Sequential);
        (a - b).abs() < jitter.noise(0.01).abs()
    }
}
