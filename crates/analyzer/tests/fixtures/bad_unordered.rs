//! Seeded violation: unordered iteration sources (ND003).

use std::collections::HashMap;

fn tally(events: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut by_key: HashMap<u32, u64> = HashMap::new();
    for (k, v) in events {
        *by_key.entry(*k).or_default() += v;
    }
    // Iteration order varies per process: the output order leaks it.
    by_key.into_iter().collect()
}
