//! Seeded violation: ambient entropy sources (ND001).

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn reseed() -> StdChaCha {
    StdChaCha::from_entropy()
}

fn os_bytes(buf: &mut [u8]) {
    OsRng.fill_bytes(buf);
}
