//! Property tests for the hermetic lexer, using the vendored `proptest`.
//!
//! The lexer underpins every lint rule and the whole interprocedural
//! pass, so its contract is pinned down generatively:
//!
//! * it never panics, whatever soup it is fed;
//! * token positions are monotonically increasing and in-bounds;
//! * structured token streams round-trip (text and kind preserved for
//!   identifiers — raw ones included — numbers, lifetimes, puncts);
//! * opaque literals (strings, raw strings, byte strings, chars) never
//!   leak their contents into the token stream;
//! * waiver directives round-trip through `waiver_reason`.

use proptest::prelude::*;
use proptest::{collection, sample};
use stats_analyzer::lex::{lex, TokKind};

/// Fragments chosen to stress every lexer mode and mode transition:
/// string/comment openers and closers, raw-string hash fences, raw
/// identifiers, escapes, and plain code.
const SOUP: &[&str] = &[
    "ident",
    "_x9",
    "r#fn",
    "r#type",
    "fn",
    "let",
    "42",
    "0x1f",
    "1_000.5",
    "'a",
    "'\\n'",
    "'q'",
    "\"str\\\"esc\"",
    "\"unterminated",
    "r\"raw\"",
    "r#\"raw#\"#",
    "r##\"x\"#y\"##",
    "b\"bytes\"",
    "b'\\x7f'",
    "br#\"rawbytes\"#",
    "// line comment",
    "/* block",
    "*/",
    "/* nested /* deep */ */",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "::",
    ";",
    ",",
    "->",
    "=>",
    "&",
    "|",
    "#",
    "!",
    "#!",
    "\n",
    "\n\n",
    " ",
    "\t",
    "é",
    "λ",
    "€",
    "stats-analyzer: allow(ND001): not a comment",
];

/// A strategy producing adversarial source text from [`SOUP`] fragments.
fn soup_source() -> impl Strategy<Value = String> {
    collection::vec((any::<sample::Index>(), any::<bool>()), 0..40).prop_map(|picks| {
        let mut out = String::new();
        for (idx, space) in picks {
            out.push_str(SOUP[idx.index(SOUP.len())]);
            if space {
                out.push(' ');
            }
        }
        out
    })
}

proptest! {
    #[test]
    fn lexing_arbitrary_soup_never_panics_and_positions_are_ordered(src in soup_source()) {
        let file = lex(&src);
        let line_count = src.lines().count().max(1);
        let mut prev = (0usize, 0usize);
        for t in &file.tokens {
            prop_assert!(t.line >= 1 && t.col >= 1, "1-based positions: {t:?}");
            prop_assert!(
                t.line <= line_count,
                "token line {} beyond {} lines",
                t.line,
                line_count
            );
            prop_assert!(
                (t.line, t.col) > prev,
                "positions must strictly increase: {prev:?} then {t:?}"
            );
            prop_assert!(!t.text.is_empty(), "empty token text: {t:?}");
            prev = (t.line, t.col);
        }
    }

    #[test]
    fn opaque_literals_never_leak_contents(src in soup_source()) {
        // Whatever the fragment mix, a Literal token is either a number
        // (starts alphanumeric) or the fixed opaque forms.
        for t in lex(&src).tokens.iter().filter(|t| t.kind == TokKind::Literal) {
            let opaque = t.text == "\"\"" || t.text == "''";
            let number = t.text.starts_with(|c: char| c.is_ascii_digit());
            prop_assert!(opaque || number, "literal leaked contents: {t:?}");
        }
    }
}

/// Tokens whose text survives lexing verbatim, for round-trip checks.
/// (Kind, text as written, expected token text.)
const ROUND_TRIP: &[(TokKind, &str, &str)] = &[
    (TokKind::Ident, "alpha", "alpha"),
    (TokKind::Ident, "_under_score9", "_under_score9"),
    (TokKind::Ident, "r#fn", "r#fn"),
    (TokKind::Ident, "r#match", "r#match"),
    (TokKind::Ident, "thread_rng", "thread_rng"),
    (TokKind::Literal, "42", "42"),
    (TokKind::Literal, "0x1f", "0x1f"),
    (TokKind::Literal, "9_000", "9_000"),
    (TokKind::Lifetime, "'scope", "scope"),
    (TokKind::Lifetime, "'_", "_"),
    (TokKind::Punct, "{", "{"),
    (TokKind::Punct, "}", "}"),
    (TokKind::Punct, ";", ";"),
    (TokKind::Punct, "&", "&"),
    (TokKind::Punct, "#", "#"),
];

proptest! {
    #[test]
    fn structured_token_streams_round_trip(
        picks in collection::vec(any::<sample::Index>(), 1..30),
        shebang in any::<bool>(),
    ) {
        let chosen: Vec<_> = picks.iter().map(|i| ROUND_TRIP[i.index(ROUND_TRIP.len())]).collect();
        let mut src = String::new();
        if shebang {
            // A shebang line must be skipped without disturbing positions.
            src.push_str("#!/usr/bin/env run\n");
        }
        for (_, written, _) in &chosen {
            src.push_str(written);
            src.push(' ');
        }
        let file = lex(&src);
        prop_assert_eq!(file.tokens.len(), chosen.len());
        for (tok, (kind, _, expect)) in file.tokens.iter().zip(&chosen) {
            prop_assert_eq!(tok.kind, *kind, "kind mismatch: {:?}", tok);
            prop_assert_eq!(&tok.text, expect, "text mismatch: {:?}", tok);
        }
    }
}

/// Reason words for waiver round-trips (no `)` or newline, which would
/// end the directive or the comment).
const REASONS: &[&str] = &[
    "telemetry timestamp only",
    "fixture",
    "audited: cannot reach a decision",
    "width sizes the executor",
];

proptest! {
    #[test]
    fn waiver_directives_round_trip(
        rule_num in 1usize..=11,
        which in any::<sample::Index>(),
        with_reason in any::<bool>(),
    ) {
        let rule = format!("ND{rule_num:03}");
        let reason = REASONS[which.index(REASONS.len())];
        let directive = if with_reason {
            format!("// stats-analyzer: allow({rule}): {reason}")
        } else {
            format!("// stats-analyzer: allow({rule})")
        };
        let src = format!("{directive}\nlet t = Instant::now();\nlet u = 1;");
        let file = lex(&src);
        // The directive covers its own line and the next one…
        prop_assert!(file.is_allowed(&rule, 1));
        prop_assert!(file.is_allowed(&rule, 2));
        prop_assert_eq!(
            file.waiver_reason(&rule, 2),
            Some(if with_reason { reason } else { "" })
        );
        // …but not the line after, and never a different rule.
        prop_assert!(!file.is_allowed(&rule, 3));
        let other = if rule_num == 1 { "ND002" } else { "ND001" };
        prop_assert!(!file.is_allowed(other, 2));
    }
}

proptest! {
    #[test]
    fn raw_string_fences_of_any_depth_stay_opaque(
        hashes in 0usize..=4,
        byte_prefix in any::<bool>(),
        content in collection::vec(any::<sample::Index>(), 0..6),
    ) {
        const INSIDE: &[&str] = &["plain", "\"", "#", "\"#ident", "thread_rng", "{"];
        let fence = "#".repeat(hashes);
        let mut body = String::new();
        for i in &content {
            let frag = INSIDE[i.index(INSIDE.len())];
            body.push_str(frag);
            body.push(' ');
        }
        // Never embed the closing fence itself.
        prop_assume!(!body.contains(&format!("\"{fence}")) || hashes == 0);
        if hashes == 0 {
            prop_assume!(!body.contains('"'));
        }
        let prefix = if byte_prefix { "br" } else { "r" };
        let src = format!("let s = {prefix}{fence}\"{body}\"{fence}; after");
        let file = lex(&src);
        let lits: Vec<_> = file
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .collect();
        prop_assert_eq!(lits.len(), 1, "one opaque literal: {:?}", file.tokens);
        prop_assert_eq!(&lits[0].text, "\"\"");
        // Nothing inside the raw string surfaced as an identifier, and
        // the trailing code is still tokenized.
        prop_assert!(!file.tokens.iter().any(|t| t.is_ident("thread_rng")));
        prop_assert!(file.tokens.iter().any(|t| t.is_ident("after")));
    }
}
