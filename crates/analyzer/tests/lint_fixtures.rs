//! Fixture-based lint regression tests: every seeded violation in
//! `tests/fixtures/bad_*.rs` is flagged, the clean fixture and the real
//! workspace sources produce zero findings.

use stats_analyzer::diag::Diagnostic;
use stats_analyzer::lint::{default_roots, lint_file, lint_paths};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    lint_file(&path).expect("fixture readable")
}

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn ambient_rng_fixture_flags_every_source() {
    let diags = fixture("bad_ambient_rng.rs");
    assert_eq!(rules(&diags), ["ND001", "ND001", "ND001"]);
    let text = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("thread_rng"));
    assert!(text.contains("from_entropy"));
    assert!(text.contains("OsRng"));
}

#[test]
fn wall_clock_fixture_flags_both_clocks_not_the_import() {
    let diags = fixture("bad_wall_clock.rs");
    assert_eq!(rules(&diags), ["ND002", "ND002"]);
    // The `use std::time::{Instant, SystemTime}` line must not fire.
    assert!(diags.iter().all(|d| d.line != 3), "{diags:?}");
}

#[test]
fn unordered_fixture_flags_every_hashmap_mention() {
    let diags = fixture("bad_unordered.rs");
    assert_eq!(rules(&diags), ["ND003", "ND003", "ND003"]);
}

#[test]
fn hidden_state_fixture_flags_all_forms() {
    let diags = fixture("bad_hidden_state.rs");
    assert_eq!(rules(&diags), ["ND004", "ND004", "ND004", "ND004"]);
    let text = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("static mut"));
    assert!(text.contains("thread_local"));
    assert!(text.contains("RefCell"));
}

#[test]
fn stream_bypass_fixture_flags_update_and_states_match() {
    let diags = fixture("bad_stream_bypass.rs");
    assert_eq!(rules(&diags), ["ND005", "ND005"]);
    // One in update (from_seed_value), one in states_match (derive).
    let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
    assert!(lines[0] < lines[1]);
}

#[test]
fn hot_println_fixture_flags_prints_but_honors_the_waiver() {
    let diags = fixture("runtime/bad_hot_println.rs");
    assert_eq!(rules(&diags), ["ND006", "ND006"]);
    let text = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("println"));
    assert!(text.contains("eprintln"));
    // The waived banner print is not reported.
    assert!(diags.iter().all(|d| !d.snippet.contains("worker online")));
}

#[test]
fn hot_println_rule_is_path_scoped() {
    // The same source outside a runtime hot path lints clean: ND006 is
    // about worker loops, not about printing in general.
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/runtime/bad_hot_println.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let diags = stats_analyzer::lint::lint_source("crates/bench/src/table1.rs", &source);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn hot_spawn_fixture_flags_thread_creation_but_honors_the_waiver() {
    let diags = fixture("runtime/bad_hot_spawn.rs");
    assert_eq!(rules(&diags), ["ND007", "ND007", "ND007"]);
    let text = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("thread::spawn"));
    assert!(text.contains("thread::scope"));
    assert!(text.contains("thread::Builder"));
    // `available_parallelism` and the waived helper spawn are not reported.
    assert!(diags
        .iter()
        .all(|d| !d.snippet.contains("available_parallelism")));
    assert!(diags.iter().all(|d| !d.snippet.contains("heartbeat")));
}

#[test]
fn hot_spawn_rule_exempts_the_pool_module() {
    // Identical source lints clean when the path is the pool itself or
    // any file outside the runtime hot paths.
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/runtime/bad_hot_spawn.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    for ok_path in [
        "crates/core/src/runtime/pool.rs",
        "crates/bench/src/table1.rs",
    ] {
        let diags = stats_analyzer::lint::lint_source(ok_path, &source);
        assert!(diags.is_empty(), "{ok_path}: {diags:#?}");
    }
}

#[test]
fn hot_clock_fixture_fires_both_wall_clock_rules_and_honors_the_waiver() {
    let diags = fixture("runtime/bad_hot_clock.rs");
    let mut ids = rules(&diags);
    ids.sort_unstable();
    // Two unwaived reads, each hit by the global rule and the hot-path
    // rule; the sanctioned read is waived for both on one line.
    assert_eq!(ids, ["ND002", "ND002", "ND012", "ND012"]);
    assert!(diags
        .iter()
        .any(|d| d.message.contains("bypasses the telemetry clock")));
    assert!(diags.iter().all(|d| !d.snippet.contains("sanctioned")));
    // The import line never fires.
    assert!(diags.iter().all(|d| d.line != 6), "{diags:?}");
}

#[test]
fn hot_clock_rule_is_path_scoped() {
    // Outside the runtime hot paths the same source keeps the global
    // ND002 findings but gains no ND012: the sharper rule is about the
    // executor, not about wall clocks in general.
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/runtime/bad_hot_clock.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let diags = stats_analyzer::lint::lint_source("crates/bench/src/table1.rs", &source);
    assert_eq!(rules(&diags), ["ND002", "ND002"], "{diags:#?}");
}

#[test]
fn state_clone_fixture_flags_direct_clones_but_honors_the_waiver() {
    let diags = fixture("runtime/bad_state_clone.rs");
    assert_eq!(rules(&diags), ["ND013", "ND013"]);
    let text = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("state.clone"));
    assert!(text.contains("baseline.clone_from"));
    // The range clone (not workload state) and the waived oracle copy
    // are not reported.
    assert!(diags.iter().all(|d| !d.snippet.contains("range.clone")));
    assert!(diags.iter().all(|d| !d.snippet.contains("oracle")));
}

#[test]
fn state_clone_rule_exempts_the_pool_and_non_hot_paths() {
    // Identical source lints clean when the path is the pool (which
    // implements the sanctioned copy) or any file outside the runtime
    // hot paths (workload internals clone their own state freely).
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/runtime/bad_state_clone.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    for ok_path in [
        "crates/core/src/runtime/pool.rs",
        "crates/workloads/src/bodytrack.rs",
    ] {
        let diags = stats_analyzer::lint::lint_source(ok_path, &source);
        assert!(diags.is_empty(), "{ok_path}: {diags:#?}");
    }
}

#[test]
fn pool_recv_fixture_flags_task_closures_but_honors_the_waiver() {
    let diags = fixture("runtime/bad_pool_recv.rs");
    assert_eq!(rules(&diags), ["ND014", "ND014"]);
    let text = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("recv"));
    assert!(text.contains("recv_timeout"));
    // The coordinator-side receive and the waived handoff are not
    // reported.
    assert!(diags.iter().all(|d| !d.snippet.contains("worker alive")));
    assert!(diags.iter().all(|d| !d.snippet.contains("sealed")));
}

#[test]
fn pool_recv_rule_is_path_scoped() {
    // Outside the runtime hot paths the same source lints clean: the
    // contract is about pool workers, not channel use in general.
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/runtime/bad_pool_recv.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let diags = stats_analyzer::lint::lint_source("crates/bench/src/table1.rs", &source);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn panic_capture_fixture_flags_captures_but_honors_the_waiver() {
    let diags = fixture("runtime/bad_panic_capture.rs");
    assert_eq!(rules(&diags), ["ND015", "ND015", "ND015"]);
    let text = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("catch_unwind"));
    assert!(text.contains("resume_unwind"));
    assert!(text.contains("panic::set_hook"));
    // The raising macro and the waived shim are not reported.
    assert!(diags.iter().all(|d| !d.snippet.contains("panic!")));
    assert!(diags.iter().all(|d| !d.snippet.contains("shim")));
}

#[test]
fn panic_capture_rule_exempts_the_fault_plane_and_non_hot_paths() {
    // Identical source lints clean when the path is the fault plane
    // (pool.rs poisons scopes, fault.rs hosts the recovery guards) or
    // any file outside the runtime hot paths (tests assert panics, the
    // CLI catches at top level).
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/runtime/bad_panic_capture.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    for ok_path in [
        "crates/core/src/runtime/pool.rs",
        "crates/core/src/fault.rs",
        "crates/bench/src/table1.rs",
    ] {
        let diags = stats_analyzer::lint::lint_source(ok_path, &source);
        assert!(diags.is_empty(), "{ok_path}: {diags:#?}");
    }
}

#[test]
fn ambient_searcher_fixture_flags_ask_tell_reads_but_honors_waivers() {
    let diags = fixture("autotuner/bad_ambient_searcher.rs");
    assert_eq!(rules(&diags), ["ND008", "ND008", "ND008"]);
    let text = diags
        .iter()
        .map(|d| d.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains(".workers()"));
    assert!(text.contains("thread::current"));
    assert!(text.contains("Instant::now"));
    // The waived `available_parallelism` probe and the probes outside
    // ask/tell bodies are not reported.
    assert!(diags
        .iter()
        .all(|d| !d.snippet.contains("available_parallelism")));
    assert!(diags
        .iter()
        .all(|d| !d.snippet.contains("pool_diagnostics")));
    assert!(diags.iter().all(|d| d.line < 36), "{diags:#?}");
}

#[test]
fn ambient_searcher_rule_is_path_scoped() {
    // Identical source outside the autotuner/searcher paths lints down
    // to the always-on rules only (no ND008): the contract is specific
    // to Searcher implementations.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/autotuner/bad_ambient_searcher.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let diags = stats_analyzer::lint::lint_source("crates/bench/src/table1.rs", &source);
    assert!(
        diags.iter().all(|d| d.rule != "ND008"),
        "ND008 escaped its path scope: {diags:#?}"
    );
}

#[test]
fn clean_fixture_has_zero_findings() {
    let diags = fixture("clean.rs");
    assert!(diags.is_empty(), "clean fixture flagged: {diags:#?}");
}

#[test]
fn diagnostics_point_into_the_fixture() {
    let d = &fixture("bad_wall_clock.rs")[0];
    assert!(d.file.ends_with("bad_wall_clock.rs"));
    assert!(d.snippet.contains("Instant::now"));
    assert!(d.col > 1);
    let rendered = d.to_string();
    assert!(rendered.contains("warning[ND002]"));
    assert!(rendered.contains("= help:"));
}

#[test]
fn shipped_workspace_sources_lint_clean() {
    // The acceptance bar: zero findings on every production crate
    // (crates/* except the analyzer, whose fixtures are bad on purpose).
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .expect("repository root");
    let roots = default_roots(&repo_root);
    assert!(
        roots.iter().any(|r| r.ends_with("crates/core")),
        "expected crates/core among lint roots, got {roots:?}"
    );
    assert!(
        roots.iter().any(|r| r.ends_with("crates/workloads")),
        "expected crates/workloads among lint roots, got {roots:?}"
    );
    let diags = lint_paths(&roots).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "shipped sources must lint clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n\n")
    );
}
