//! Integration tests for the interprocedural taint pass (ND009–ND011),
//! driven by the fixture trees under `tests/fixtures/taint/`.
//!
//! The fixtures are read as *text* and fed to the linter under synthetic
//! workspace paths (`crates/<name>/src/…`): real fixture paths contain
//! `tests/`, which would mark every function test-only, and the lint
//! walk deliberately skips `fixtures` directories during self-scans.

use stats_analyzer::lint::{self, Finding, Report};
use std::path::Path;

/// Load fixture files as `(synthetic workspace path, source)` pairs and
/// lint them as if they were a workspace.
fn fixture(files: &[(&str, &str)]) -> Report {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/taint");
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(rel, synth)| {
            let path = base.join(rel);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
            (synth.to_string(), text)
        })
        .collect();
    lint::lint_workspace_sources(&sources)
}

fn by_rule<'r>(report: &'r Report, rule: &str) -> Vec<&'r Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.diag.rule == rule)
        .collect()
}

#[test]
fn nd009_traces_thread_rng_to_update_through_two_helper_calls() {
    // The ISSUE acceptance fixture: `thread_rng()` reaches `update`
    // through two helper calls in another module.
    let report = fixture(&[
        ("acceptance/src/lib.rs", "crates/acceptance/src/lib.rs"),
        (
            "acceptance/src/helpers.rs",
            "crates/acceptance/src/helpers.rs",
        ),
    ]);
    let nd009 = by_rule(&report, "ND009");
    assert_eq!(nd009.len(), 1, "expected exactly one ND009: {report:#?}");
    let f = nd009[0];
    assert!(!f.waived);
    assert_eq!(
        f.diag.message,
        "`thread_rng` (ambient entropy) reaches protocol function \
         `acceptance::Pipeline::update` through 2 calls"
    );
    // Primary span: the source token in the helper module.
    assert_eq!(f.diag.file, "crates/acceptance/src/helpers.rs");
    assert!(f.diag.snippet.contains("thread_rng"));
    // Chain notes: sink declaration first, then hops in sink-to-source
    // order, each pointing at the actual call site.
    assert_eq!(f.diag.notes.len(), 3);
    assert_eq!(
        f.diag.notes[0].label,
        "protocol function `acceptance::Pipeline::update` declared here"
    );
    assert_eq!(f.diag.notes[0].file, "crates/acceptance/src/lib.rs");
    assert_eq!(
        f.diag.notes[1].label,
        "hop 1: `update` calls `acceptance::helpers::jitter`"
    );
    assert!(f.diag.notes[1].snippet.contains("helpers::jitter()"));
    assert_eq!(
        f.diag.notes[2].label,
        "hop 2: `jitter` calls `acceptance::helpers::ambient_draw`"
    );
    assert_eq!(f.diag.notes[2].file, "crates/acceptance/src/helpers.rs");
    // The rendered diagnostic carries the whole chain.
    let text = f.diag.to_string();
    assert!(text.contains("= note: hop 1:"));
    assert!(text.contains("= note: hop 2:"));
}

#[test]
fn nd009_crosses_crate_boundaries_through_the_stats_prefix() {
    let report = fixture(&[
        (
            "cross_crate/crate_a/src/lib.rs",
            "crates/crate_a/src/lib.rs",
        ),
        (
            "cross_crate/crate_b/src/lib.rs",
            "crates/crate_b/src/lib.rs",
        ),
        (
            "cross_crate/crate_b/src/util.rs",
            "crates/crate_b/src/util.rs",
        ),
    ]);
    let nd009 = by_rule(&report, "ND009");
    assert_eq!(nd009.len(), 1, "expected exactly one ND009: {report:#?}");
    let f = nd009[0];
    assert_eq!(
        f.diag.message,
        "`Instant::now` (wall clock) reaches protocol function \
         `crate_a::Model::update` through 1 call"
    );
    // Source in crate_b, sink in crate_a: the chain crosses the edge.
    assert_eq!(f.diag.file, "crates/crate_b/src/util.rs");
    assert_eq!(f.diag.notes[0].file, "crates/crate_a/src/lib.rs");
    assert_eq!(
        f.diag.notes[1].label,
        "hop 1: `update` calls `crate_b::util::noisy_delay`"
    );
}

#[test]
fn nd009_waivers_suppress_at_source_hop_or_sink_but_not_elsewhere() {
    let report = fixture(&[("waived/src/lib.rs", "crates/waived/src/lib.rs")]);
    let nd009 = by_rule(&report, "ND009");
    // A (source line), B (hop line), C (sink declaration) are all waived;
    // D's base-rule waiver sanctions the source, so no ND009 exists.
    assert_eq!(nd009.len(), 3, "expected A/B/C only: {nd009:#?}");
    for f in &nd009 {
        assert!(f.waived, "every surviving ND009 should be waived: {f:#?}");
        assert!(
            f.waiver_reason
                .as_deref()
                .unwrap_or("")
                .starts_with("fixture:"),
            "waiver reason should be carried: {f:#?}"
        );
    }
    assert!(
        !nd009
            .iter()
            .any(|f| f.diag.notes.iter().any(|n| n.snippet.contains("helper_d"))),
        "base-rule-sanctioned chain D must not produce ND009 at all"
    );
    // D's allow(ND002) also marks the base ND002 finding itself waived.
    let d_base = report
        .findings
        .iter()
        .find(|f| f.diag.rule == "ND002" && f.diag.line > 60)
        .expect("D's Instant::now still yields a (waived) ND002");
    assert!(d_base.waived);
}

#[test]
fn nd010_flags_only_the_non_move_closure_with_an_outer_mut_borrow() {
    let report = fixture(&[(
        "nd010/src/runtime/driver.rs",
        "crates/nd010/src/runtime/driver.rs",
    )]);
    let nd010 = by_rule(&report, "ND010");
    assert_eq!(nd010.len(), 1, "expected exactly one ND010: {nd010:#?}");
    let f = nd010[0];
    assert!(!f.waived);
    assert_eq!(
        f.diag.message,
        "pool task closure captures `&mut total` from the enclosing scope"
    );
    assert!(f.diag.snippet.contains("drive_bad") || f.diag.notes[0].snippet.contains("drive_bad"));
    assert_eq!(
        f.diag.notes[0].label,
        "spawned outside the scoped-borrow API in `nd010::runtime::driver::drive_bad`"
    );
    // `move` closures and closure-local borrows stay clean.
    assert!(!f.diag.notes[0].snippet.contains("drive_good"));
}

#[test]
fn nd011_audits_dynamic_dispatch_only_on_sink_reachable_paths() {
    let report = fixture(&[
        (
            "nd011/src/runtime/exec.rs",
            "crates/nd011/src/runtime/exec.rs",
        ),
        ("nd011/src/util.rs", "crates/nd011/src/util.rs"),
    ]);
    let nd011 = by_rule(&report, "ND011");
    // Both dispatch sites in the hot path are reported; only one is
    // waived. The dispatch in util.rs is unreachable from any sink.
    assert_eq!(nd011.len(), 2, "expected two ND011: {nd011:#?}");
    assert!(nd011
        .iter()
        .all(|f| f.diag.file == "crates/nd011/src/runtime/exec.rs"));
    let unwaived: Vec<_> = nd011.iter().filter(|f| !f.waived).collect();
    assert_eq!(unwaived.len(), 1);
    assert_eq!(
        unwaived[0].diag.message,
        "dynamic call via `task` on a sink-reachable path cannot be traced"
    );
    assert_eq!(
        unwaived[0].diag.notes[0].label,
        "`nd011::runtime::exec::run_task` is reachable from a protocol sink"
    );
    let waived: Vec<_> = nd011.iter().filter(|f| f.waived).collect();
    assert_eq!(
        waived[0].waiver_reason.as_deref(),
        Some("fixture: callable audited deterministic")
    );
}

#[test]
fn workspace_self_scan_is_clean_with_reasoned_waivers() {
    // The real workspace must carry zero unwaived findings, and every
    // waiver must state a reason — the same gate CI enforces.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf();
    let roots = lint::default_roots(&root);
    assert!(!roots.is_empty(), "no crate roots under {}", root.display());
    let report = lint::lint_workspace(&roots).expect("workspace scan");
    let unwaived: Vec<_> = report.unwaived().map(|f| f.diag.location()).collect();
    assert!(unwaived.is_empty(), "unwaived findings: {unwaived:#?}");
    let unexplained: Vec<_> = report
        .unexplained_waivers()
        .map(|f| f.diag.location())
        .collect();
    assert!(
        unexplained.is_empty(),
        "waivers without reasons: {unexplained:#?}"
    );
}
