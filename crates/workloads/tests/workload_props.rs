//! Property tests of the benchmark substrates: particle filters, center
//! sets, and protocol robustness under hostile states.

use proptest::prelude::*;
use stats_core::rng::StatsRng;
use stats_core::speculation::run_speculative;
use stats_core::{Config, SnapshotStrategy, StateDependence, UpdateCost};
use stats_workloads::bodytrack::BodyTrack;
use stats_workloads::facedet_and_track::FaceDetAndTrack;
use stats_workloads::facetrack::FaceTrack;
use stats_workloads::particle::ParticleCloud;
use stats_workloads::streamclassifier::StreamClassifier;
use stats_workloads::streamcluster::{Center, Centers, StreamCluster};
use stats_workloads::suite::Workload;
use stats_workloads::swaptions::Swaptions;

/// Drive a COW snapshot and its deep-cloned twin through one arbitrary
/// update sequence; the pair must stay `states_match`-equal and
/// wire-identical (the marker-serde wire format is `Debug`) at every
/// step, and writes to the still-aliased original must never show
/// through the snapshot.
fn check_cow_twin<W>(w: &W, prefix: usize, steps: usize, seed: u64)
where
    W: Workload,
    W::State: std::fmt::Debug,
{
    let inputs = w.generate_inputs(prefix + steps, seed);
    let mut rng = StatsRng::from_seed_value(seed);
    let mut state = w.fresh_state();
    for i in &inputs[..prefix] {
        w.update(&mut state, i, &mut rng);
    }

    // Fork a COW snapshot of the evolved state, then a deep twin of the
    // snapshot itself (`State: Clone` is a full payload copy — CowBox's
    // Clone never shares).
    let mut cow = w.snapshot_state(&mut state, SnapshotStrategy::CopyOnWrite);
    let mut deep = cow.clone();
    assert!(
        w.states_match(&cow, &deep),
        "{}: twins differ at birth",
        w.name()
    );

    // Identical update sequences on identical RNG streams must keep the
    // pair bit-identical, whether a step materializes a private copy
    // (first in-place write) or not (generational set()).
    let mut rng_cow = StatsRng::from_seed_value(seed ^ 0x00C0_FFEE);
    let mut rng_deep = StatsRng::from_seed_value(seed ^ 0x00C0_FFEE);
    for i in &inputs[prefix..] {
        w.update(&mut cow, i, &mut rng_cow);
        w.update(&mut deep, i, &mut rng_deep);
        assert!(w.states_match(&cow, &deep), "{}: twins diverged", w.name());
        assert_eq!(
            format!("{cow:?}"),
            format!("{deep:?}"),
            "{}: wire bytes diverged",
            w.name()
        );
    }

    // Commit-order safety: the original still aliases whatever the
    // snapshot has not yet materialized, so updating it must be
    // unobservable from the snapshot.
    let frozen = format!("{cow:?}");
    let mut rng_orig = StatsRng::from_seed_value(seed ^ 0x000A_11A5);
    for i in &inputs {
        w.update(&mut state, i, &mut rng_orig);
    }
    assert_eq!(
        format!("{cow:?}"),
        frozen,
        "{}: aliased write leaked into the snapshot",
        w.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Particle clouds stay inside their clamped pose box and keep their
    /// population through arbitrary observation sequences.
    #[test]
    fn particle_clouds_stay_bounded(
        n_pow in 4u32..8,
        dims in 1usize..8,
        obs in proptest::collection::vec(-2.0f64..2.0, 1..20),
        seed in 0u64..1_000,
    ) {
        let n = 1usize << n_pow;
        let mut cloud = ParticleCloud::fresh(n, dims, seed);
        let mut rng = StatsRng::from_seed_value(seed);
        for o in &obs {
            let target = vec![*o; dims];
            cloud.step(&target, 0.1, 0.1, 2, &mut rng);
            prop_assert_eq!(cloud.len(), n);
            for x in cloud.estimate() {
                prop_assert!((-1.5..=1.5).contains(&x), "estimate escaped: {x}");
            }
            prop_assert!(cloud.spread().is_finite());
        }
    }

    /// estimates_match is reflexive and symmetric for any pair of clouds.
    #[test]
    fn estimates_match_is_symmetric(seed_a in 0u64..500, seed_b in 0u64..500, tol in 0.01f64..1.0) {
        let a = ParticleCloud::fresh(32, 3, seed_a);
        let b = ParticleCloud::fresh(32, 3, seed_b);
        prop_assert!(a.estimates_match(&a, tol));
        prop_assert_eq!(a.estimates_match(&b, tol), b.estimates_match(&a, tol));
    }

    /// A COW snapshot is indistinguishable from a deep clone under any
    /// update sequence, on every benchmark — the per-workload face of
    /// the tentpole's bit-identity contract.
    #[test]
    fn cow_snapshots_track_their_deep_twins(
        prefix in 0usize..16,
        steps in 1usize..16,
        seed in 0u64..1_000,
    ) {
        check_cow_twin(&Swaptions::paper(), prefix, steps, seed);
        check_cow_twin(&StreamCluster::paper(), prefix, steps, seed);
        check_cow_twin(&StreamClassifier::paper(), prefix, steps, seed);
        check_cow_twin(&BodyTrack::paper(), prefix, steps, seed);
        check_cow_twin(&FaceTrack::paper(), prefix, steps, seed);
        check_cow_twin(&FaceDetAndTrack::paper(), prefix, steps, seed);
    }

    /// Chamfer distance between center sets is symmetric, zero on self,
    /// and grows with displacement.
    #[test]
    fn chamfer_is_a_sane_distance(
        positions in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 4),
            1..10,
        ),
        shift in 0.0f64..2.0,
    ) {
        let a = Centers {
            centers: stats_core::CowBox::new(positions
                .iter()
                .map(|p| Center { pos: p.clone(), weight: 1.0 })
                .collect()),
        };
        let b = Centers {
            centers: stats_core::CowBox::new(positions
                .iter()
                .map(|p| Center {
                    pos: p.iter().map(|x| x + shift).collect(),
                    weight: 3.0,
                })
                .collect()),
        };
        prop_assert!(a.chamfer(&a) < 1e-12);
        prop_assert!((a.chamfer(&b) - b.chamfer(&a)).abs() < 1e-12);
        // Uniform shift of every center displaces the sets by <= shift*2
        // (per-dimension shift over 4 dims) and at least ~0.
        let expected = shift * 2.0; // sqrt(4 * shift^2)
        prop_assert!((a.chamfer(&b) - expected).abs() < 1e-6 + expected * 0.5);
    }
}

/// A workload that poisons its state with NaN after a few updates: the
/// acceptance check (NaN comparisons are false) must force aborts, and the
/// protocol must still terminate with a full output vector.
struct NanPoison;

impl StateDependence for NanPoison {
    type State = f64;
    type Input = u64;
    type Output = f64;
    fn fresh_state(&self) -> f64 {
        0.0
    }
    fn update(&self, s: &mut f64, i: &u64, _rng: &mut StatsRng) -> (f64, UpdateCost) {
        *s += *i as f64;
        if *i % 7 == 3 {
            *s = f64::NAN;
        }
        (*s, UpdateCost::with_work(10))
    }
    fn states_match(&self, a: &f64, b: &f64) -> bool {
        (a - b).abs() < 0.5 // false whenever either side is NaN
    }
    fn state_bytes(&self) -> usize {
        8
    }
}

#[test]
fn nan_states_abort_but_terminate() {
    let inputs: Vec<u64> = (0..96).collect();
    let out = run_speculative(&NanPoison, &inputs, Config::stats_only(4, 4, 2), 5);
    assert_eq!(out.outputs.len(), 96);
    // NaN states never match: every speculative chunk aborts.
    assert_eq!(out.aborts(), 3);
}

#[test]
fn reseeded_clouds_are_tight() {
    let mut cloud = ParticleCloud::fresh(64, 4, 9);
    assert!(cloud.spread() > 0.3, "fresh clouds are diffuse");
    let mut rng = StatsRng::from_seed_value(1);
    cloud.reseed_around(&[0.5, 0.5, -0.5, 0.0], 0.05, &mut rng);
    assert!(cloud.spread() < 0.2, "reseeded clouds are tight");
    let est = cloud.estimate();
    assert!((est[0] - 0.5).abs() < 0.1);
}
