//! `facedet-and-track`: face detection with a particle-filter fallback
//! (the paper's new benchmark, §IV-C: "uses a particle filter to track a
//! person's face only when the OpenCV face detection API fails to do so",
//! over a 1,050-frame video).
//!
//! Per-frame cost is bimodal — the detector is fast, the fallback filter
//! is an order of magnitude slower — which creates computation imbalance
//! (§III-A). The detect→track pipeline also performs several synchronized
//! handoffs per frame, and the tuned configuration spawns 70+ threads on
//! 28 cores, so the oversubscribed runtime dispatch makes synchronization
//! this benchmark's dominant loss, exactly as in Fig. 10.

use crate::particle::ParticleCloud;
use crate::suite::{ExecMode, Workload};
use crate::synth::{Frame, ImageStreamConfig};
use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;
use stats_core::{Config, InnerParallelism, SnapshotStrategy, StateDependence, UpdateCost};
use stats_uarch::StreamProfile;

/// Particles in the fallback filter.
const PARTICLES: usize = 64;
/// Annealing layers of the fallback filter.
const LAYERS: usize = 2;
/// Native-scale multiplier of the fallback filter.
const FILTER_SCALE: u64 = 800;
/// Native work of one (fast) detector invocation.
const DETECT_WORK: u64 = 70_000;

/// The tracking state: the current box plus the fallback cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackState {
    /// Current face-box center estimate.
    pub box_center: Vec<f64>,
    /// The fallback particle cloud (kept warm around the current box).
    pub cloud: ParticleCloud,
    /// Consecutive detector failures (re-seeds the cloud when high).
    pub misses: u32,
}

/// The facedet-and-track workload.
#[derive(Debug, Clone)]
pub struct FaceDetAndTrack {
    stream: ImageStreamConfig,
    /// Detector success probability at zero clutter.
    detect_base: f64,
    /// Acceptance tolerance on the box-center distance.
    tolerance: f64,
}

impl FaceDetAndTrack {
    /// The paper-scale configuration.
    pub fn paper() -> Self {
        FaceDetAndTrack {
            stream: ImageStreamConfig::face(),
            detect_base: 0.92,
            tolerance: 0.18,
        }
    }

    /// The cloud's share of the modeled 8 KB state, pro-rated by actual
    /// in-memory size (cloud vs. the inline box center + miss counter).
    fn cloud_modeled_bytes(&self) -> u64 {
        let cloud = ParticleCloud::byte_size(PARTICLES, 2) as u64;
        let inline = (2 * 8 + 4) as u64;
        self.state_bytes() as u64 * cloud / (cloud + inline)
    }
}

impl StateDependence for FaceDetAndTrack {
    type State = TrackState;
    type Input = Frame;
    type Output = Vec<f64>;

    fn fresh_state(&self) -> TrackState {
        TrackState {
            box_center: vec![0.0, 0.0],
            cloud: ParticleCloud::fresh(PARTICLES, 2, 0xDE7C),
            misses: 0,
        }
    }

    fn update(
        &self,
        state: &mut TrackState,
        input: &Frame,
        rng: &mut StatsRng,
    ) -> (Vec<f64>, UpdateCost) {
        // The detector fails under clutter and occlusion (nondeterministic:
        // cascade thresholds interact with image noise).
        let success_p = if input.occluded {
            0.05
        } else {
            (self.detect_base - 0.55 * input.clutter).clamp(0.05, 0.98)
        };
        if rng.chance(success_p) {
            // Fast path: the detector localizes the face directly — but
            // under clutter it occasionally fires on the distractor (a
            // false positive), which is what makes speculation beyond 14
            // chunks abort (§IV-C, Table I).
            let target = if rng.chance(0.3 * input.clutter * input.clutter) {
                &input.distractor
            } else {
                &input.observation
            };
            state.box_center = target.iter().map(|o| o + rng.noise(0.01)).collect();
            state.misses = 0;
            // Keep the cloud warm by one cheap coast step toward the box.
            let flops = state.cloud.step(&state.box_center, 0.2, 0.05, 1, rng);
            let work = DETECT_WORK + flops * 40;
            (state.box_center.clone(), UpdateCost::new(work, work * 2))
        } else {
            // Fallback: full particle-filter tracking (expensive).
            state.misses += 1;
            let obs_sigma = if input.occluded { 1.0 } else { 0.12 };
            let flops = state
                .cloud
                .step(&input.observation, obs_sigma, 0.12, LAYERS, rng);
            state.box_center = state.cloud.estimate();
            let work = DETECT_WORK / 2 + flops * FILTER_SCALE;
            (state.box_center.clone(), UpdateCost::new(work, work * 2))
        }
    }

    fn states_match(&self, a: &TrackState, b: &TrackState) -> bool {
        let d2: f64 = a
            .box_center
            .iter()
            .zip(&b.box_center)
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        d2.sqrt() <= self.tolerance
    }

    fn state_bytes(&self) -> usize {
        8_000 // Table I
    }

    fn snapshot_state(&self, state: &mut TrackState, strategy: SnapshotStrategy) -> TrackState {
        match strategy {
            SnapshotStrategy::DeepClone => state.clone(),
            SnapshotStrategy::CopyOnWrite => TrackState {
                box_center: state.box_center.clone(),
                cloud: state.cloud.fork(),
                misses: state.misses,
            },
        }
    }

    fn take_materialized(&self, state: &mut TrackState) -> u64 {
        state.cloud.take_materialized(self.cloud_modeled_bytes())
    }

    fn snapshot_copy_bytes(&self, strategy: SnapshotStrategy) -> u64 {
        match strategy {
            SnapshotStrategy::DeepClone => self.state_bytes() as u64,
            // The inline part (box center + miss counter) is always copied;
            // only the cloud shares structure.
            SnapshotStrategy::CopyOnWrite => self.state_bytes() as u64 - self.cloud_modeled_bytes(),
        }
    }

    fn outside_region_work(&self) -> (u64, u64) {
        (2_000_000, 1_000_000)
    }

    fn sync_ops_per_update(&self) -> u64 {
        12 // detect -> verify -> track pipeline with queue handoffs
    }
}

impl Workload for FaceDetAndTrack {
    fn name(&self) -> &'static str {
        "facedet-and-track"
    }

    fn inner_parallelism(&self) -> InnerParallelism {
        // The OpenCV cascade parallelizes over scales, modestly.
        InnerParallelism::amdahl(0.95, 4)
    }

    fn tuned_config(&self, cores: usize) -> Config {
        // Table I: "STATS only creates 14 parallel chunks of computation
        // to avoid mispeculation" — with 4 extra original states the
        // thread count lands at 70 (1 + 14 + 13*4 + shards).
        let _ = cores;
        Config {
            chunks: 14,
            lookback: 2,
            extra_states: 4,
            combine_inner_tlp: true,
            snapshot: SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        }
    }

    fn native_input_count(&self) -> usize {
        1_050
    }

    fn generate_inputs(&self, n: usize, seed: u64) -> Vec<Frame> {
        self.stream.generate(n, seed)
    }

    fn quality(&self, inputs: &[Frame], outputs: &[Vec<f64>]) -> f64 {
        let truths: Vec<Vec<f64>> = inputs.iter().map(|f| f.truth.clone()).collect();
        let err = crate::quality::mean_euclidean(outputs, &truths);
        crate::quality::error_to_quality((err - 0.05).max(0.0) * 12.0)
    }

    fn uarch_profiles(&self, mode: ExecMode) -> Vec<StreamProfile> {
        // Table II: loses locality under STATS like facetrack; ~44% extra
        // instructions (Fig. 14).
        let seq_accesses = 900_000_000u64;
        let base = StreamProfile {
            region_base: 0xA000_0000,
            working_set: 8 * 1024 * 1024,
            accesses: seq_accesses,
            streaming: 0.6,
            hot: 0.3,
            branches: seq_accesses / 6,
            irregular_branches: 0.18,
            irregular_bias: 0.4,
        };
        match mode {
            ExecMode::Sequential => vec![base],
            ExecMode::OriginalTlp => (0..8)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x80_0000,
                    accesses: seq_accesses * 105 / (100 * 8),
                    branches: seq_accesses * 105 / (100 * 8 * 6),
                    ..base
                })
                .collect(),
            ExecMode::StatsTlp => (0..14)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x80_0000,
                    accesses: seq_accesses * 144 / (100 * 14),
                    branches: seq_accesses * 144 / (100 * 14 * 6),
                    streaming: 0.42,
                    hot: 0.28,
                    ..base
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::mean_euclidean;
    use stats_core::runtime::sequential::run_sequential;
    use stats_core::speculation::run_speculative;

    #[test]
    fn hybrid_tracker_follows_the_face() {
        let w = FaceDetAndTrack::paper();
        let inputs = w.generate_inputs(300, 1);
        let run = run_sequential(&w, &inputs, 42);
        let truths: Vec<Vec<f64>> = inputs.iter().map(|f| f.truth.clone()).collect();
        let err = mean_euclidean(&run.outputs[30..], &truths[30..]);
        assert!(err < 0.3, "tracking error {err}");
    }

    #[test]
    fn per_frame_costs_are_bimodal() {
        // The source of imbalance (§III-A): detector frames are an order
        // of magnitude cheaper than fallback frames.
        let w = FaceDetAndTrack::paper();
        let inputs = w.generate_inputs(500, 2);
        let run = run_sequential(&w, &inputs, 7);
        let mut costs: Vec<u64> = run.per_input_costs.iter().map(|c| c.work).collect();
        costs.sort_unstable();
        let cheap = costs[costs.len() / 4];
        let expensive = costs[costs.len() - 1];
        assert!(
            expensive > cheap * 5,
            "bimodal costs expected: {cheap} vs {expensive}"
        );
    }

    #[test]
    fn detector_usually_succeeds() {
        let w = FaceDetAndTrack::paper();
        let inputs = w.generate_inputs(600, 3);
        let run = run_sequential(&w, &inputs, 9);
        // Cheap frames (detector hits) should be the majority.
        let cheap = run
            .per_input_costs
            .iter()
            .filter(|c| c.work < 1_000_000)
            .count();
        let frac = cheap as f64 / 600.0;
        assert!(frac > 0.5, "detector success fraction {frac}");
    }

    #[test]
    fn tuned_config_commits() {
        let w = FaceDetAndTrack::paper();
        let inputs = w.generate_inputs(1_050, 2);
        let out = run_speculative(&w, &inputs, w.tuned_config(28), 5);
        assert!(out.commit_rate() >= 0.7, "rate {}", out.commit_rate());
    }

    #[test]
    fn cluttered_detections_sometimes_fire_on_the_distractor() {
        // The false-positive mode that limits deep speculation: over many
        // cluttered frames, some detections land near the distractor
        // rather than the face.
        let w = FaceDetAndTrack::paper();
        let inputs = w.generate_inputs(800, 12);
        let run = run_sequential(&w, &inputs, 3);
        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let confused = inputs
            .iter()
            .zip(&run.outputs)
            .filter(|(f, out)| d(out, &f.distractor) < d(out, &f.truth))
            .count();
        assert!(
            confused > 0,
            "the detector should occasionally fire on the distractor"
        );
        // But only occasionally — tracking still works overall.
        assert!(confused < 200, "confused on {confused}/800 frames");
    }

    #[test]
    fn oversubscription_is_table1_scale() {
        use stats_core::ResourceAccounting;
        let w = FaceDetAndTrack::paper();
        let cfg = w.tuned_config(28);
        let acc = ResourceAccounting::for_config(&cfg, w.state_bytes(), 2);
        // Table I reports 70 threads; ours lands in the same regime.
        assert!(acc.threads >= 60 && acc.threads <= 110, "{}", acc.threads);
    }

    #[test]
    fn pipeline_declares_multiple_sync_ops() {
        assert!(FaceDetAndTrack::paper().sync_ops_per_update() >= 3);
    }
}
