//! The benchmark suite: per-workload metadata and dispatch.

use crate::bodytrack::BodyTrack;
use crate::facedet_and_track::FaceDetAndTrack;
use crate::facetrack::FaceTrack;
use crate::streamclassifier::StreamClassifier;
use crate::streamcluster::StreamCluster;
use crate::swaptions::Swaptions;
use serde::{Deserialize, Serialize};
use stats_core::{Config, InnerParallelism, StateDependence};
use stats_uarch::StreamProfile;

/// The execution configurations Table II compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// The sequential program (no TLP).
    Sequential,
    /// Original developer-expressed TLP on all cores.
    OriginalTlp,
    /// STATS TLP on all cores.
    StatsTlp,
}

/// A benchmark: a [`StateDependence`] plus the metadata the experiment
/// harness needs (tuned configuration, input generation, quality scoring,
/// microarchitectural profiles).
pub trait Workload: StateDependence + Sync {
    /// Benchmark name as the paper prints it.
    fn name(&self) -> &'static str;

    /// The benchmark's pre-existing (original) TLP profile.
    fn inner_parallelism(&self) -> InnerParallelism;

    /// The configuration the autotuner settles on for `cores` cores
    /// (reproduced offline so figures do not re-run tuning; the
    /// `stats-autotuner` crate can re-derive comparable configurations).
    fn tuned_config(&self, cores: usize) -> Config;

    /// Native input-stream length (§IV-C input scaling).
    fn native_input_count(&self) -> usize;

    /// Generate `n` inputs deterministically from `seed`.
    fn generate_inputs(&self, n: usize, seed: u64) -> Vec<Self::Input>;

    /// Output-quality score in `(0, 1]`, higher is better (Fig. 16).
    fn quality(&self, inputs: &[Self::Input], outputs: &[Self::Output]) -> f64;

    /// Memory/branch stream profiles per execution mode, one entry per
    /// logical worker; the Table II harness replays them round-robin over
    /// the simulated cores.
    fn uarch_profiles(&self, mode: ExecMode) -> Vec<StreamProfile>;
}

/// Benchmark names, in the paper's presentation order.
pub const BENCHMARK_NAMES: [&str; 6] = [
    "swaptions",
    "streamcluster",
    "streamclassifier",
    "bodytrack",
    "facetrack",
    "facedet-and-track",
];

/// The evaluated benchmarks plus the paper's excluded negative control
/// (`fluidanimate`, §IV-C).
pub const EXTENDED_BENCHMARK_NAMES: [&str; 7] = [
    "swaptions",
    "streamcluster",
    "streamclassifier",
    "bodytrack",
    "facetrack",
    "facedet-and-track",
    "fluidanimate",
];

/// A generic operation over any workload (visitor with a generic method,
/// so the monomorphized experiment pipelines work on every benchmark).
pub trait WorkloadVisitor {
    /// Result of the operation.
    type Output;

    /// Apply the operation to a concrete workload.
    fn visit<W: Workload>(self, workload: &W) -> Self::Output;
}

/// Run a visitor against the named benchmark.
///
/// # Panics
///
/// Panics if `name` is not one of [`EXTENDED_BENCHMARK_NAMES`].
pub fn dispatch<V: WorkloadVisitor>(name: &str, visitor: V) -> V::Output {
    match name {
        "swaptions" => visitor.visit(&Swaptions::paper()),
        "streamcluster" => visitor.visit(&StreamCluster::paper()),
        "streamclassifier" => visitor.visit(&StreamClassifier::paper()),
        "bodytrack" => visitor.visit(&BodyTrack::paper()),
        "facetrack" => visitor.visit(&FaceTrack::paper()),
        "facedet-and-track" => visitor.visit(&FaceDetAndTrack::paper()),
        "fluidanimate" => visitor.visit(&crate::fluidanimate::FluidAnimate::paper()),
        other => panic!("unknown benchmark {other:?}; see BENCHMARK_NAMES"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NameOf;
    impl WorkloadVisitor for NameOf {
        type Output = &'static str;
        fn visit<W: Workload>(self, workload: &W) -> &'static str {
            workload.name()
        }
    }

    #[test]
    fn dispatch_reaches_every_benchmark() {
        for name in EXTENDED_BENCHMARK_NAMES {
            assert_eq!(dispatch(name, NameOf), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn dispatch_rejects_unknown() {
        dispatch("blackscholes", NameOf);
    }

    struct TunedConfigIsValid;
    impl WorkloadVisitor for TunedConfigIsValid {
        type Output = ();
        fn visit<W: Workload>(self, w: &W) {
            let cfg = w.tuned_config(28);
            let n = w.native_input_count();
            cfg.validate(n).unwrap_or_else(|e| {
                panic!("{}: tuned config invalid for {} inputs: {e}", w.name(), n)
            });
        }
    }

    #[test]
    fn every_tuned_config_is_valid_at_native_scale() {
        for name in BENCHMARK_NAMES {
            dispatch(name, TunedConfigIsValid);
        }
    }

    struct ProfilesAreSane;
    impl WorkloadVisitor for ProfilesAreSane {
        type Output = ();
        fn visit<W: Workload>(self, w: &W) {
            for mode in [
                ExecMode::Sequential,
                ExecMode::OriginalTlp,
                ExecMode::StatsTlp,
            ] {
                let profiles = w.uarch_profiles(mode);
                assert!(!profiles.is_empty(), "{}: no profiles", w.name());
                for p in &profiles {
                    p.validate();
                }
                if mode == ExecMode::Sequential {
                    assert_eq!(profiles.len(), 1, "{}: sequential is one stream", w.name());
                }
            }
        }
    }

    #[test]
    fn every_uarch_profile_validates() {
        for name in BENCHMARK_NAMES {
            dispatch(name, ProfilesAreSane);
        }
    }

    struct InputsAreDeterministic;
    impl WorkloadVisitor for InputsAreDeterministic {
        type Output = ();
        fn visit<W: Workload>(self, w: &W) {
            let a = w.generate_inputs(16, 5);
            let b = w.generate_inputs(16, 5);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.len(), 16);
        }
    }

    #[test]
    fn input_generation_is_stable() {
        for name in BENCHMARK_NAMES {
            dispatch(name, InputsAreDeterministic);
        }
    }
}
