//! Shared annealed-particle-filter machinery for the tracking benchmarks.
//!
//! bodytrack's core loop (§II-A of the paper) is an annealed particle
//! filter: per frame it diffuses a particle cloud, weights particles by an
//! observation likelihood, and resamples — repeating over annealing layers
//! with shrinking noise. `facetrack` and `facedet-and-track` use the same
//! machinery with a 2-D pose. The cloud is the *computational state* whose
//! dependence chain STATS parallelizes.

use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;

/// A weighted particle cloud over a `dims`-dimensional pose space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticleCloud {
    particles: Vec<Vec<f64>>,
    weights: Vec<f64>,
}

impl ParticleCloud {
    /// A fresh cloud: particles spread uniformly over the pose box
    /// `[-1, 1]^dims` with equal weights (what an alternative producer
    /// starts from).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `dims` is zero.
    pub fn fresh(n: usize, dims: usize, seed: u64) -> Self {
        assert!(n > 0 && dims > 0, "empty cloud");
        let mut rng = StatsRng::from_seed_value(seed ^ 0x9A27_1C7E);
        let particles = (0..n)
            .map(|_| (0..dims).map(|_| rng.noise(1.0)).collect())
            .collect();
        ParticleCloud {
            particles,
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether the cloud is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Pose dimensionality.
    pub fn dims(&self) -> usize {
        self.particles[0].len()
    }

    /// The weighted-mean pose estimate.
    pub fn estimate(&self) -> Vec<f64> {
        let dims = self.dims();
        let mut est = vec![0.0; dims];
        for (p, w) in self.particles.iter().zip(&self.weights) {
            for d in 0..dims {
                est[d] += p[d] * w;
            }
        }
        est
    }

    /// RMS spread of the cloud around its estimate (tracking confidence).
    pub fn spread(&self) -> f64 {
        let est = self.estimate();
        let var: f64 = self
            .particles
            .iter()
            .zip(&self.weights)
            .map(|(p, w)| {
                w * p
                    .iter()
                    .zip(&est)
                    .map(|(x, e)| (x - e) * (x - e))
                    .sum::<f64>()
            })
            .sum();
        var.sqrt()
    }

    /// One annealed filter step against an observation; returns the number
    /// of floating-point operations performed (the honest cost sample the
    /// workloads scale to native size).
    pub fn step(
        &mut self,
        observation: &[f64],
        obs_sigma: f64,
        motion_sigma: f64,
        layers: usize,
        rng: &mut StatsRng,
    ) -> u64 {
        let n = self.len();
        let dims = self.dims();
        let mut flops = 0u64;
        for layer in 0..layers {
            // Annealing: noise shrinks layer by layer.
            let anneal = 1.0 / (1.0 + layer as f64);
            let sigma = motion_sigma * anneal;
            // Diffuse.
            for p in &mut self.particles {
                for x in p.iter_mut() {
                    *x = (*x + rng.gaussian() * sigma).clamp(-1.5, 1.5);
                }
            }
            // Weight by a heavy-tailed likelihood: a narrow peak for
            // precision plus a wide component so a lost cloud still feels
            // a gradient toward the target and can re-acquire it.
            let inv = 1.0 / (2.0 * obs_sigma * obs_sigma * anneal.max(0.25));
            let mut total = 0.0;
            for (p, w) in self.particles.iter().zip(self.weights.iter_mut()) {
                let d2: f64 = p
                    .iter()
                    .zip(observation)
                    .map(|(x, o)| (x - o) * (x - o))
                    .sum();
                *w = (-d2 * inv).exp() + 0.02 * (-d2 * inv / 50.0).exp() + 1e-12;
                total += *w;
            }
            for w in &mut self.weights {
                *w /= total;
            }
            // Systematic resampling.
            self.resample(rng);
            flops += (n * dims * 6 + n * 4) as u64;
        }
        flops
    }

    /// Re-seed the cloud around a target pose (detector-style
    /// initialization when the track is lost or freshly started); returns
    /// the flop estimate.
    pub fn reseed_around(&mut self, target: &[f64], sigma: f64, rng: &mut StatsRng) -> u64 {
        let dims = self.dims();
        for p in &mut self.particles {
            for (x, t) in p.iter_mut().zip(target) {
                *x = (t + rng.gaussian() * sigma).clamp(-1.5, 1.5);
            }
        }
        let n = self.len();
        self.weights = vec![1.0 / n as f64; n];
        (n * dims * 3) as u64
    }

    fn resample(&mut self, rng: &mut StatsRng) {
        let n = self.len();
        let step = 1.0 / n as f64;
        let mut u = rng.unit() * step;
        let mut cum = 0.0;
        let mut idx = 0usize;
        let mut next = Vec::with_capacity(n);
        for p in self.particles.iter().enumerate() {
            let _ = p;
            while idx < n - 1 && cum + self.weights[idx] < u {
                cum += self.weights[idx];
                idx += 1;
            }
            next.push(self.particles[idx].clone());
            u += step;
        }
        self.particles = next;
        self.weights = vec![step; n];
    }

    /// Application-level acceptance predicate: two clouds are
    /// interchangeable when their pose estimates are within `tolerance`
    /// (Euclidean) — the same metric the paper uses for output quality of
    /// the trackers (§IV-C "average Euclidean distance between the boxes").
    pub fn estimates_match(&self, other: &ParticleCloud, tolerance: f64) -> bool {
        let (a, b) = (self.estimate(), other.estimate());
        let d2: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        d2.sqrt() <= tolerance
    }

    /// Serialized size in bytes of a cloud with the given shape.
    pub fn byte_size(n: usize, dims: usize) -> usize {
        n * dims * 8 + n * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StatsRng {
        StatsRng::from_seed_value(seed)
    }

    #[test]
    fn fresh_cloud_shape() {
        let c = ParticleCloud::fresh(64, 2, 1);
        assert_eq!(c.len(), 64);
        assert_eq!(c.dims(), 2);
        assert!(!c.is_empty());
        // Uniform cloud: estimate near origin, large spread.
        let est = c.estimate();
        assert!(est.iter().all(|x| x.abs() < 0.3));
        assert!(c.spread() > 0.3);
    }

    #[test]
    fn filter_converges_to_static_target() {
        let mut c = ParticleCloud::fresh(128, 2, 2);
        let target = vec![0.5, -0.3];
        let mut r = rng(3);
        for _ in 0..10 {
            c.step(&target, 0.05, 0.1, 3, &mut r);
        }
        let est = c.estimate();
        let err: f64 = est
            .iter()
            .zip(&target)
            .map(|(e, t)| (e - t) * (e - t))
            .sum::<f64>()
            .sqrt();
        assert!(err < 0.15, "did not converge: err {err}");
        assert!(c.spread() < 0.3);
    }

    #[test]
    fn filter_tracks_moving_target() {
        let mut c = ParticleCloud::fresh(128, 2, 4);
        let mut r = rng(5);
        let mut total_err = 0.0;
        let steps = 50;
        for i in 0..steps {
            let t = i as f64 / steps as f64;
            let target = vec![0.8 * (t * 3.0).sin(), 0.8 * (t * 2.0).cos()];
            c.step(&target, 0.05, 0.12, 3, &mut r);
            let est = c.estimate();
            total_err += est
                .iter()
                .zip(&target)
                .map(|(e, x)| (e - x) * (e - x))
                .sum::<f64>()
                .sqrt();
        }
        assert!((total_err / steps as f64) < 0.2);
    }

    #[test]
    fn short_memory_two_clouds_converge() {
        // Two clouds with different histories end up matching after a few
        // steps on the same observations — the property STATS exploits.
        let mut a = ParticleCloud::fresh(128, 2, 10);
        let mut b = ParticleCloud::fresh(128, 2, 99);
        let mut ra = rng(1);
        let mut rb = rng(2);
        // Give cloud `a` a divergent history first.
        for i in 0..5 {
            let obs = vec![-0.5 + i as f64 * 0.1, 0.9];
            a.step(&obs, 0.05, 0.1, 3, &mut ra);
        }
        // Now both see the same observations.
        for _ in 0..6 {
            let obs = vec![0.4, -0.2];
            a.step(&obs, 0.05, 0.1, 3, &mut ra);
            b.step(&obs, 0.05, 0.1, 3, &mut rb);
        }
        assert!(a.estimates_match(&b, 0.15));
    }

    #[test]
    fn step_reports_flops() {
        let mut c = ParticleCloud::fresh(64, 4, 1);
        let f = c.step(&[0.0; 4], 0.1, 0.1, 5, &mut rng(1));
        assert_eq!(f, 5 * (64 * 4 * 6 + 64 * 4) as u64);
    }

    #[test]
    fn resampling_preserves_count_and_normalizes() {
        let mut c = ParticleCloud::fresh(32, 2, 7);
        c.step(&[0.1, 0.1], 0.1, 0.1, 1, &mut rng(9));
        assert_eq!(c.len(), 32);
        let total: f64 = c.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn byte_size_formula() {
        assert_eq!(ParticleCloud::byte_size(64, 2), 64 * 16 + 64 * 8);
    }

    #[test]
    fn nondeterminism_changes_estimates_slightly() {
        let mut a = ParticleCloud::fresh(128, 2, 3);
        let mut b = ParticleCloud::fresh(128, 2, 3);
        let mut ra = rng(1);
        let mut rb = rng(2);
        for _ in 0..8 {
            a.step(&[0.3, 0.3], 0.05, 0.1, 3, &mut ra);
            b.step(&[0.3, 0.3], 0.05, 0.1, 3, &mut rb);
        }
        // Different random streams: different clouds...
        assert_ne!(a, b);
        // ...but matching estimates (the nondeterministic acceptable space).
        assert!(a.estimates_match(&b, 0.1));
    }
}
