//! Shared annealed-particle-filter machinery for the tracking benchmarks.
//!
//! bodytrack's core loop (§II-A of the paper) is an annealed particle
//! filter: per frame it diffuses a particle cloud, weights particles by an
//! observation likelihood, and resamples — repeating over annealing layers
//! with shrinking noise. `facetrack` and `facedet-and-track` use the same
//! machinery with a 2-D pose. The cloud is the *computational state* whose
//! dependence chain STATS parallelizes.

use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;
use stats_core::CowBox;

/// A weighted particle cloud over a `dims`-dimensional pose space.
///
/// Both buffers live in [`CowBox`] cells so a protocol snapshot
/// ([`ParticleCloud::fork`]) is two pointer bumps. The filter advances
/// *generationally* — each step builds the next particle generation in
/// fresh buffers and replaces the old ones wholesale — so a shared
/// generation is never written in place and copy-on-write snapshots stay
/// fault-free: the tracker states replicate for free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticleCloud {
    particles: CowBox<Vec<Vec<f64>>>,
    weights: CowBox<Vec<f64>>,
}

impl ParticleCloud {
    /// A fresh cloud: particles spread uniformly over the pose box
    /// `[-1, 1]^dims` with equal weights (what an alternative producer
    /// starts from).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `dims` is zero.
    pub fn fresh(n: usize, dims: usize, seed: u64) -> Self {
        assert!(n > 0 && dims > 0, "empty cloud");
        let mut rng = StatsRng::from_seed_value(seed ^ 0x9A27_1C7E);
        let particles = (0..n)
            .map(|_| (0..dims).map(|_| rng.noise(1.0)).collect())
            .collect();
        ParticleCloud {
            particles: CowBox::new(particles),
            weights: CowBox::new(vec![1.0 / n as f64; n]),
        }
    }

    /// O(1) protocol snapshot: share both buffers with the returned
    /// cloud. Either side's next in-place write would fault (and be
    /// reported by [`ParticleCloud::take_materialized`]); the
    /// generational [`step`](ParticleCloud::step) never writes in place,
    /// so in practice neither side ever faults.
    pub fn fork(&mut self) -> ParticleCloud {
        ParticleCloud {
            particles: self.particles.fork(),
            weights: self.weights.fork(),
        }
    }

    /// Drain copy-on-write materializations since the last drain, scaled
    /// to the workload's modeled state size: each component fault charges
    /// its byte share of `modeled_bytes` (integer arithmetic, so the
    /// charge is exact and platform-independent).
    pub fn take_materialized(&mut self, modeled_bytes: u64) -> u64 {
        let n = self.len() as u64;
        let dims = self.dims() as u64;
        let total = n * dims * 8 + n * 8;
        let particle_share = modeled_bytes * (n * dims * 8) / total;
        let weight_share = modeled_bytes * (n * 8) / total;
        self.particles.take_faults() as u64 * particle_share
            + self.weights.take_faults() as u64 * weight_share
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether the cloud is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Pose dimensionality.
    pub fn dims(&self) -> usize {
        self.particles[0].len()
    }

    /// The weighted-mean pose estimate.
    pub fn estimate(&self) -> Vec<f64> {
        let dims = self.dims();
        let mut est = vec![0.0; dims];
        for (p, w) in self.particles.iter().zip(self.weights.iter()) {
            for d in 0..dims {
                est[d] += p[d] * w;
            }
        }
        est
    }

    /// RMS spread of the cloud around its estimate (tracking confidence).
    pub fn spread(&self) -> f64 {
        let est = self.estimate();
        let var: f64 = self
            .particles
            .iter()
            .zip(self.weights.iter())
            .map(|(p, w)| {
                w * p
                    .iter()
                    .zip(&est)
                    .map(|(x, e)| (x - e) * (x - e))
                    .sum::<f64>()
            })
            .sum();
        var.sqrt()
    }

    /// One annealed filter step against an observation; returns the number
    /// of floating-point operations performed (the honest cost sample the
    /// workloads scale to native size).
    pub fn step(
        &mut self,
        observation: &[f64],
        obs_sigma: f64,
        motion_sigma: f64,
        layers: usize,
        rng: &mut StatsRng,
    ) -> u64 {
        let n = self.len();
        let dims = self.dims();
        let mut flops = 0u64;
        for layer in 0..layers {
            // Annealing: noise shrinks layer by layer.
            let anneal = 1.0 / (1.0 + layer as f64);
            let sigma = motion_sigma * anneal;
            // Diffuse into a fresh generation: the previous one may be
            // structurally shared with a protocol snapshot, and replacing
            // it wholesale keeps copy-on-write snapshots fault-free.
            let diffused: Vec<Vec<f64>> = self
                .particles
                .iter()
                .map(|p| {
                    p.iter()
                        .map(|x| (*x + rng.gaussian() * sigma).clamp(-1.5, 1.5))
                        .collect()
                })
                .collect();
            // Weight by a heavy-tailed likelihood: a narrow peak for
            // precision plus a wide component so a lost cloud still feels
            // a gradient toward the target and can re-acquire it.
            let inv = 1.0 / (2.0 * obs_sigma * obs_sigma * anneal.max(0.25));
            let mut weights = Vec::with_capacity(n);
            let mut total = 0.0;
            for p in &diffused {
                let d2: f64 = p
                    .iter()
                    .zip(observation)
                    .map(|(x, o)| (x - o) * (x - o))
                    .sum();
                let w = (-d2 * inv).exp() + 0.02 * (-d2 * inv / 50.0).exp() + 1e-12;
                total += w;
                weights.push(w);
            }
            for w in &mut weights {
                *w /= total;
            }
            // Systematic resampling over the diffused generation.
            let (next, step) = resample(&diffused, &weights, rng);
            self.particles.set(next);
            self.weights.set(vec![step; n]);
            flops += (n * dims * 6 + n * 4) as u64;
        }
        flops
    }

    /// Re-seed the cloud around a target pose (detector-style
    /// initialization when the track is lost or freshly started); returns
    /// the flop estimate.
    pub fn reseed_around(&mut self, target: &[f64], sigma: f64, rng: &mut StatsRng) -> u64 {
        let dims = self.dims();
        // Generational replacement, like `step`: pose dimensions beyond
        // the target's keep their current value.
        let reseeded: Vec<Vec<f64>> = self
            .particles
            .iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .map(|(d, x)| match target.get(d) {
                        Some(t) => (t + rng.gaussian() * sigma).clamp(-1.5, 1.5),
                        None => *x,
                    })
                    .collect()
            })
            .collect();
        let n = self.len();
        self.particles.set(reseeded);
        self.weights.set(vec![1.0 / n as f64; n]);
        (n * dims * 3) as u64
    }

    /// Application-level acceptance predicate: two clouds are
    /// interchangeable when their pose estimates are within `tolerance`
    /// (Euclidean) — the same metric the paper uses for output quality of
    /// the trackers (§IV-C "average Euclidean distance between the boxes").
    pub fn estimates_match(&self, other: &ParticleCloud, tolerance: f64) -> bool {
        let (a, b) = (self.estimate(), other.estimate());
        let d2: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        d2.sqrt() <= tolerance
    }

    /// Serialized size in bytes of a cloud with the given shape.
    pub fn byte_size(n: usize, dims: usize) -> usize {
        n * dims * 8 + n * 8
    }
}

/// Systematic resampling: draw the next generation from `particles`
/// proportionally to `weights`. Returns the generation and the uniform
/// weight each survivor carries.
fn resample(particles: &[Vec<f64>], weights: &[f64], rng: &mut StatsRng) -> (Vec<Vec<f64>>, f64) {
    let n = particles.len();
    let step = 1.0 / n as f64;
    let mut u = rng.unit() * step;
    let mut cum = 0.0;
    let mut idx = 0usize;
    let mut next = Vec::with_capacity(n);
    for _ in 0..n {
        while idx < n - 1 && cum + weights[idx] < u {
            cum += weights[idx];
            idx += 1;
        }
        next.push(particles[idx].clone());
        u += step;
    }
    (next, step)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StatsRng {
        StatsRng::from_seed_value(seed)
    }

    #[test]
    fn fresh_cloud_shape() {
        let c = ParticleCloud::fresh(64, 2, 1);
        assert_eq!(c.len(), 64);
        assert_eq!(c.dims(), 2);
        assert!(!c.is_empty());
        // Uniform cloud: estimate near origin, large spread.
        let est = c.estimate();
        assert!(est.iter().all(|x| x.abs() < 0.3));
        assert!(c.spread() > 0.3);
    }

    #[test]
    fn filter_converges_to_static_target() {
        let mut c = ParticleCloud::fresh(128, 2, 2);
        let target = vec![0.5, -0.3];
        let mut r = rng(3);
        for _ in 0..10 {
            c.step(&target, 0.05, 0.1, 3, &mut r);
        }
        let est = c.estimate();
        let err: f64 = est
            .iter()
            .zip(&target)
            .map(|(e, t)| (e - t) * (e - t))
            .sum::<f64>()
            .sqrt();
        assert!(err < 0.15, "did not converge: err {err}");
        assert!(c.spread() < 0.3);
    }

    #[test]
    fn filter_tracks_moving_target() {
        let mut c = ParticleCloud::fresh(128, 2, 4);
        let mut r = rng(5);
        let mut total_err = 0.0;
        let steps = 50;
        for i in 0..steps {
            let t = i as f64 / steps as f64;
            let target = vec![0.8 * (t * 3.0).sin(), 0.8 * (t * 2.0).cos()];
            c.step(&target, 0.05, 0.12, 3, &mut r);
            let est = c.estimate();
            total_err += est
                .iter()
                .zip(&target)
                .map(|(e, x)| (e - x) * (e - x))
                .sum::<f64>()
                .sqrt();
        }
        assert!((total_err / steps as f64) < 0.2);
    }

    #[test]
    fn short_memory_two_clouds_converge() {
        // Two clouds with different histories end up matching after a few
        // steps on the same observations — the property STATS exploits.
        let mut a = ParticleCloud::fresh(128, 2, 10);
        let mut b = ParticleCloud::fresh(128, 2, 99);
        let mut ra = rng(1);
        let mut rb = rng(2);
        // Give cloud `a` a divergent history first.
        for i in 0..5 {
            let obs = vec![-0.5 + i as f64 * 0.1, 0.9];
            a.step(&obs, 0.05, 0.1, 3, &mut ra);
        }
        // Now both see the same observations.
        for _ in 0..6 {
            let obs = vec![0.4, -0.2];
            a.step(&obs, 0.05, 0.1, 3, &mut ra);
            b.step(&obs, 0.05, 0.1, 3, &mut rb);
        }
        assert!(a.estimates_match(&b, 0.15));
    }

    #[test]
    fn step_reports_flops() {
        let mut c = ParticleCloud::fresh(64, 4, 1);
        let f = c.step(&[0.0; 4], 0.1, 0.1, 5, &mut rng(1));
        assert_eq!(f, 5 * (64 * 4 * 6 + 64 * 4) as u64);
    }

    #[test]
    fn resampling_preserves_count_and_normalizes() {
        let mut c = ParticleCloud::fresh(32, 2, 7);
        c.step(&[0.1, 0.1], 0.1, 0.1, 1, &mut rng(9));
        assert_eq!(c.len(), 32);
        let total: f64 = c.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn byte_size_formula() {
        assert_eq!(ParticleCloud::byte_size(64, 2), 64 * 16 + 64 * 8);
    }

    #[test]
    fn fork_is_fault_free_under_generational_stepping() {
        let mut live = ParticleCloud::fresh(64, 2, 8);
        let mut r = rng(4);
        live.step(&[0.2, -0.1], 0.05, 0.1, 2, &mut r);
        let mut snap = live.fork();
        let frozen = snap.estimate();
        // The live side keeps stepping; the snapshot must not move, and
        // neither side may materialize a single byte.
        for _ in 0..4 {
            live.step(&[0.2, -0.1], 0.05, 0.1, 2, &mut r);
        }
        assert_eq!(snap.estimate(), frozen);
        assert_eq!(live.take_materialized(500_000), 0);
        assert_eq!(snap.take_materialized(500_000), 0);
        // Reseeding is generational too.
        live.reseed_around(&[0.0, 0.0], 0.1, &mut r);
        assert_eq!(live.take_materialized(500_000), 0);
    }

    #[test]
    fn fork_then_step_matches_deep_clone_twin() {
        // A forked cloud stepped forward is bit-identical to a deep clone
        // stepped with the same RNG stream: structural sharing never leaks
        // into the numerics.
        let mut base = ParticleCloud::fresh(32, 2, 5);
        base.step(&[0.1, 0.1], 0.05, 0.1, 2, &mut rng(6));
        let mut deep = base.clone();
        let mut cow = base.fork();
        let mut ra = rng(7);
        let mut rb = rng(7);
        deep.step(&[0.3, -0.2], 0.05, 0.1, 3, &mut ra);
        cow.step(&[0.3, -0.2], 0.05, 0.1, 3, &mut rb);
        assert_eq!(deep, cow);
        assert_eq!(format!("{deep:?}"), format!("{cow:?}"));
    }

    #[test]
    fn materialized_bytes_charge_component_shares() {
        // Force an in-place write through a shared handle and check the
        // fault is charged at the particles' byte share of the modeled
        // state size.
        let mut live = ParticleCloud::fresh(64, 2, 9);
        let _snap = live.fork();
        live.particles.make_mut()[0][0] = 0.0;
        let n = 64u64;
        let total = n * 2 * 8 + n * 8;
        assert_eq!(
            live.take_materialized(500_000),
            500_000 * (n * 2 * 8) / total
        );
        assert_eq!(live.take_materialized(500_000), 0, "drain resets");
    }

    #[test]
    fn nondeterminism_changes_estimates_slightly() {
        let mut a = ParticleCloud::fresh(128, 2, 3);
        let mut b = ParticleCloud::fresh(128, 2, 3);
        let mut ra = rng(1);
        let mut rb = rng(2);
        for _ in 0..8 {
            a.step(&[0.3, 0.3], 0.05, 0.1, 3, &mut ra);
            b.step(&[0.3, 0.3], 0.05, 0.1, 3, &mut rb);
        }
        // Different random streams: different clouds...
        assert_ne!(a, b);
        // ...but matching estimates (the nondeterministic acceptable space).
        assert!(a.estimates_match(&b, 0.1));
    }
}
