//! Output-quality metrics (the paper's §IV-C and Fig. 16).
//!
//! The paper scores trackers by "the average Euclidean distance between
//! the boxes containing the detected faces", clusterers by their
//! clustering cost, and the pricer by price error. All our synthetic
//! streams carry ground truth, so the same scores are computable without
//! reference outputs. Scores are normalized to `(0, 1]` where higher is
//! better, so distributions from different benchmarks can share Fig. 16's
//! axes.

use serde::{Deserialize, Serialize};

/// Mean Euclidean distance between paired vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_euclidean(estimates: &[Vec<f64>], truths: &[Vec<f64>]) -> f64 {
    assert_eq!(estimates.len(), truths.len(), "paired sequences required");
    if estimates.is_empty() {
        return 0.0;
    }
    let total: f64 = estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| {
            e.iter()
                .zip(t)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        })
        .sum();
    total / estimates.len() as f64
}

/// Map an error (lower = better, `>= 0`) to a quality score in `(0, 1]`
/// (higher = better).
pub fn error_to_quality(error: f64) -> f64 {
    1.0 / (1.0 + error.max(0.0))
}

/// An empirical distribution of per-run quality scores — one Fig. 16 box.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QualityDistribution {
    samples: Vec<f64>,
}

impl QualityDistribution {
    /// Collect a distribution from per-run scores.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN scores"));
        QualityDistribution { samples }
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean score.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Standard deviation of the scores.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// Percentile in `[0, 100]` by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `p` is out of range.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "empty distribution");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let idx = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[idx]
    }

    /// Median score.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Best (maximum) score — the paper's "oracle" reference is the best
    /// observed output.
    pub fn best(&self) -> f64 {
        *self.samples.last().expect("empty distribution")
    }

    /// Worst (minimum) score.
    pub fn worst(&self) -> f64 {
        *self.samples.first().expect("empty distribution")
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Rank-based distribution comparison (Mann–Whitney U, normalized to the
/// common-language effect size): the probability that a random draw from
/// `a` exceeds a random draw from `b`, with ties counted half.
///
/// 0.5 means the distributions are statistically indistinguishable —
/// Fig. 16's visual claim, made quantitative.
///
/// ```
/// use stats_workloads::quality::superiority;
/// assert_eq!(superiority(&[1.0, 2.0], &[1.0, 2.0]), 0.5);
/// assert_eq!(superiority(&[5.0, 6.0], &[1.0, 2.0]), 1.0);
/// ```
pub fn superiority(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for x in a {
        for y in b {
            if x > y {
                wins += 1.0;
            } else if x == y {
                wins += 0.5;
            }
        }
    }
    wins / (a.len() * b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_euclidean_basics() {
        let a = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let b = vec![vec![3.0, 4.0], vec![1.0, 1.0]];
        // Distances: 5 and 0 -> mean 2.5.
        assert!((mean_euclidean(&a, &b) - 2.5).abs() < 1e-12);
        assert_eq!(mean_euclidean(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn mean_euclidean_rejects_mismatch() {
        mean_euclidean(&[vec![0.0]], &[]);
    }

    #[test]
    fn quality_mapping_is_monotone() {
        assert_eq!(error_to_quality(0.0), 1.0);
        assert!(error_to_quality(1.0) > error_to_quality(2.0));
        assert!(error_to_quality(100.0) > 0.0);
        // Negative errors clamp.
        assert_eq!(error_to_quality(-5.0), 1.0);
    }

    #[test]
    fn distribution_statistics() {
        let d = QualityDistribution::from_samples(vec![0.5, 0.9, 0.7, 0.8, 0.6]);
        assert_eq!(d.len(), 5);
        assert!((d.mean() - 0.7).abs() < 1e-12);
        assert_eq!(d.median(), 0.7);
        assert_eq!(d.best(), 0.9);
        assert_eq!(d.worst(), 0.5);
        assert!(d.std_dev() > 0.1 && d.std_dev() < 0.2);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let d = QualityDistribution::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(d.percentile(0.0), 1.0);
        assert_eq!(d.percentile(100.0), 100.0);
        assert!((d.percentile(25.0) - 26.0).abs() <= 1.0);
    }

    #[test]
    fn superiority_is_complementary() {
        let a = [1.0, 3.0, 5.0];
        let b = [2.0, 4.0, 6.0];
        let ab = superiority(&a, &b);
        let ba = superiority(&b, &a);
        assert!((ab + ba - 1.0).abs() < 1e-12);
        assert!(ba > 0.5, "b stochastically dominates");
        assert_eq!(superiority(&[], &b), 0.5);
    }

    #[test]
    fn single_sample_distribution() {
        let d = QualityDistribution::from_samples(vec![0.42]);
        assert_eq!(d.mean(), 0.42);
        assert_eq!(d.std_dev(), 0.0);
        assert_eq!(d.median(), 0.42);
    }
}
