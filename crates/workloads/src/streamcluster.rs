//! `streamcluster`: online k-median clustering of a point stream (PARSEC
//! analog).
//!
//! The state dependence is the set of weighted cluster centers threaded
//! through the batch stream. Centers gain *inertia* as they absorb points;
//! heavy centers adapt slowly to the stream's drift, so a long-running
//! sequential execution spends extra refinement iterations per batch.
//! Chunks started from an alternative producer's lightweight centers adapt
//! in fewer iterations — which is how the paper's observation that the
//! STATS version "converges faster" and executes *fewer* instructions
//! (Fig. 14, §V-C) emerges naturally here.

use crate::suite::{ExecMode, Workload};
use crate::synth::{PointBatch, PointStreamConfig};
use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;
use stats_core::{Config, CowBox, InnerParallelism, SnapshotStrategy, StateDependence, UpdateCost};
use stats_uarch::StreamProfile;

/// One weighted median center.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Center {
    /// Position in point space.
    pub pos: Vec<f64>,
    /// Absorbed point mass (inertia).
    pub weight: f64,
}

/// The clustering state: the current centers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Centers {
    /// Current centers, unordered. Boxed for O(1) chunk-boundary
    /// snapshots; the refinement loop's first in-place write after a
    /// fork materializes a private copy.
    pub centers: CowBox<Vec<Center>>,
}

impl Centers {
    /// Mean center weight (the inertia that slows adaptation).
    pub fn mean_weight(&self) -> f64 {
        if self.centers.is_empty() {
            return 0.0;
        }
        self.centers.iter().map(|c| c.weight).sum::<f64>() / self.centers.len() as f64
    }

    /// Average symmetric (Chamfer) distance between two center sets.
    pub fn chamfer(&self, other: &Centers) -> f64 {
        fn one_way(a: &Centers, b: &Centers) -> f64 {
            if a.centers.is_empty() || b.centers.is_empty() {
                return f64::INFINITY;
            }
            a.centers
                .iter()
                .map(|ca| {
                    b.centers
                        .iter()
                        .map(|cb| dist2(&ca.pos, &cb.pos))
                        .fold(f64::INFINITY, f64::min)
                        .sqrt()
                })
                .sum::<f64>()
                / a.centers.len() as f64
        }
        0.5 * (one_way(self, other) + one_way(other, self))
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// The streamcluster workload.
#[derive(Debug, Clone)]
pub struct StreamCluster {
    stream: PointStreamConfig,
    /// Maximum number of centers kept after consolidation.
    kmax: usize,
    /// Cost threshold controlling random center openings.
    open_cost: f64,
    /// Per-batch weight decay (bounds inertia).
    weight_decay: f64,
    /// Acceptance tolerance on the Chamfer distance between center sets.
    tolerance: f64,
}

impl StreamCluster {
    /// The paper-scale configuration.
    pub fn paper() -> Self {
        StreamCluster {
            stream: PointStreamConfig::cluster_stream(),
            kmax: 14,
            open_cost: 1.2,
            weight_decay: 0.95,
            tolerance: 0.38,
        }
    }

    fn refine_once(&self, state: &mut Centers, batch: &PointBatch, rng: &mut StatsRng) -> u64 {
        let mut dist_evals = 0u64;
        for p in &batch.points {
            let nearest = state
                .centers
                .iter()
                .enumerate()
                .map(|(i, c)| (i, dist2(p, &c.pos)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
            dist_evals += state.centers.len() as u64;
            match nearest {
                None => state.centers.push(Center {
                    pos: p.clone(),
                    weight: 1.0,
                }),
                Some((i, d2)) => {
                    // Random opening with probability proportional to the
                    // point's cost (the k-median online heuristic — this is
                    // the benchmark's nondeterminism).
                    let open_p = (d2 / self.open_cost).min(0.25);
                    if state.centers.len() < 2 * self.kmax && rng.chance(open_p) {
                        state.centers.push(Center {
                            pos: p.clone(),
                            weight: 1.0,
                        });
                    } else {
                        let c = &mut state.centers[i];
                        c.weight += 1.0;
                        let lr = 1.0 / c.weight.min(64.0);
                        for (x, y) in c.pos.iter_mut().zip(p) {
                            *x += lr * (y - *x);
                        }
                    }
                }
            }
        }
        // Consolidate: merge closest pairs until within kmax.
        while state.centers.len() > self.kmax {
            let mut best = (0, 1, f64::INFINITY);
            for i in 0..state.centers.len() {
                for j in i + 1..state.centers.len() {
                    let d = dist2(&state.centers[i].pos, &state.centers[j].pos);
                    dist_evals += 1;
                    if d < best.2 {
                        best = (i, j, d);
                    }
                }
            }
            let (i, j, _) = best;
            let cj = state.centers.swap_remove(j);
            let ci = &mut state.centers[i];
            let total = ci.weight + cj.weight;
            for (x, y) in ci.pos.iter_mut().zip(&cj.pos) {
                *x = (*x * ci.weight + y * cj.weight) / total;
            }
            ci.weight = total;
        }
        dist_evals
    }
}

impl StateDependence for StreamCluster {
    type State = Centers;
    type Input = PointBatch;
    type Output = f64;

    fn fresh_state(&self) -> Centers {
        Centers::default()
    }

    fn update(
        &self,
        state: &mut Centers,
        input: &PointBatch,
        rng: &mut StatsRng,
    ) -> (f64, UpdateCost) {
        // Inertia: heavy centers need extra refinement to follow the
        // drifting stream — one full pass plus a partial second pass whose
        // length grows with the centers' accumulated weight.
        let mut dist_evals = self.refine_once(state, input, rng);
        let mut extra = (state.mean_weight() / 150.0).min(3.0);
        while extra >= 1.0 {
            dist_evals += self.refine_once(state, input, rng);
            extra -= 1.0;
        }
        let take = ((input.points.len() as f64) * extra) as usize;
        if take > 0 {
            let partial = PointBatch {
                points: input.points[..take].to_vec(),
                true_centers: input.true_centers.clone(),
            };
            dist_evals += self.refine_once(state, &partial, rng);
        }
        for c in state.centers.iter_mut() {
            c.weight *= self.weight_decay;
        }
        // Batch clustering cost: mean distance to the nearest center.
        let cost: f64 = input
            .points
            .iter()
            .map(|p| {
                state
                    .centers
                    .iter()
                    .map(|c| dist2(p, &c.pos))
                    .fold(f64::INFINITY, f64::min)
                    .sqrt()
            })
            .sum::<f64>()
            / input.points.len() as f64;
        // Native cost: each distance evaluation over `dims` dims, scaled to
        // PARSEC native point counts (x256 the synthetic batch).
        let work = dist_evals * self.stream.dims as u64 * 4 * 256;
        (cost, UpdateCost::new(work, work * 2))
    }

    fn states_match(&self, a: &Centers, b: &Centers) -> bool {
        if a.centers.len().abs_diff(b.centers.len()) > 4 {
            return false;
        }
        a.chamfer(b) <= self.tolerance
    }

    fn state_bytes(&self) -> usize {
        104 // Table I
    }

    fn snapshot_state(&self, state: &mut Centers, strategy: SnapshotStrategy) -> Centers {
        match strategy {
            SnapshotStrategy::DeepClone => state.clone(),
            SnapshotStrategy::CopyOnWrite => Centers {
                centers: state.centers.fork(),
            },
        }
    }

    fn take_materialized(&self, state: &mut Centers) -> u64 {
        state.centers.take_faults() as u64 * self.state_bytes() as u64
    }

    fn snapshot_copy_bytes(&self, strategy: SnapshotStrategy) -> u64 {
        match strategy {
            SnapshotStrategy::DeepClone => self.state_bytes() as u64,
            // The centers ARE the state: a fork copies nothing up front.
            // The in-place refinement loop faults the payload on its first
            // write, so COW defers (rather than avoids) this tiny copy.
            SnapshotStrategy::CopyOnWrite => 0,
        }
    }

    fn outside_region_work(&self) -> (u64, u64) {
        // Input parsing and final output writing: the paper's dominant
        // residual for the stream benchmarks (§V-B, Fig. 10).
        (1_400_000_000, 600_000_000)
    }
}

impl Workload for StreamCluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn inner_parallelism(&self) -> InnerParallelism {
        InnerParallelism::amdahl(0.75, usize::MAX)
    }

    fn tuned_config(&self, cores: usize) -> Config {
        Config {
            chunks: 2 * cores, // Table I: 280 threads on 28 cores
            lookback: 4,
            extra_states: 1,
            combine_inner_tlp: true,
            snapshot: SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        }
    }

    fn native_input_count(&self) -> usize {
        2_800
    }

    fn generate_inputs(&self, n: usize, seed: u64) -> Vec<PointBatch> {
        self.stream.generate(n, seed)
    }

    fn quality(&self, inputs: &[PointBatch], outputs: &[f64]) -> f64 {
        // Clustering cost relative to the generator's own spread: the best
        // achievable mean distance is ~spread * sqrt(dims).
        let _ = inputs;
        if outputs.is_empty() {
            return 0.0;
        }
        let tail = &outputs[outputs.len() - (outputs.len() / 10).max(1)..];
        let mean_cost = tail.iter().sum::<f64>() / tail.len() as f64;
        let ideal = self.stream.spread * (self.stream.dims as f64).sqrt();
        // Sensitive around the achievable optimum: half the ideal cost is
        // unbeatable, so score the excess over it.
        crate::quality::error_to_quality((mean_cost / ideal - 0.5).max(0.0) * 3.0)
    }

    fn uarch_profiles(&self, mode: ExecMode) -> Vec<StreamProfile> {
        // Large streaming working set (the point stream) with a hot center
        // array; Table II row 2 shows very high miss rates (it is memory
        // bound) and *fewer* misses under STATS because it executes less.
        let seq_accesses = 2_600_000_000u64;
        let base = StreamProfile {
            region_base: 0x4000_0000,
            working_set: 96 * 1024 * 1024,
            accesses: seq_accesses,
            streaming: 0.82,
            hot: 0.1,
            branches: seq_accesses / 8,
            irregular_branches: 0.3,
            irregular_bias: 0.45,
        };
        match mode {
            ExecMode::Sequential => vec![base],
            ExecMode::OriginalTlp => (0..28)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x400_0000,
                    accesses: seq_accesses / 28,
                    branches: seq_accesses / (28 * 8),
                    ..base
                })
                .collect(),
            ExecMode::StatsTlp => (0..28)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x400_0000,
                    // Converges faster: ~15% fewer accesses (Fig. 14).
                    accesses: seq_accesses * 85 / (100 * 28),
                    branches: seq_accesses * 85 / (100 * 28 * 8),
                    ..base
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats_core::runtime::sequential::run_sequential;
    use stats_core::speculation::run_speculative;

    #[test]
    fn clustering_cost_is_reasonable() {
        let w = StreamCluster::paper();
        let inputs = w.generate_inputs(200, 1);
        let run = run_sequential(&w, &inputs, 42);
        // After warm-up, cost should approach the generator spread scale.
        let tail_cost = run.outputs[150..].iter().sum::<f64>() / 50.0;
        let ideal = w.stream.spread * (w.stream.dims as f64).sqrt();
        assert!(
            tail_cost < ideal * 3.0,
            "clustering not working: {tail_cost} vs ideal {ideal}"
        );
    }

    #[test]
    fn center_count_is_bounded() {
        let w = StreamCluster::paper();
        let inputs = w.generate_inputs(100, 2);
        let run = run_sequential(&w, &inputs, 7);
        assert!(run.final_state.centers.len() <= w.kmax);
        assert!(!run.final_state.centers.is_empty());
    }

    #[test]
    fn short_memory_mostly_commits() {
        let w = StreamCluster::paper();
        let inputs = w.generate_inputs(560, 3);
        let out = run_speculative(&w, &inputs, Config::stats_only(14, 8, 2), 11);
        assert!(
            out.commit_rate() > 0.75,
            "commit rate {}",
            out.commit_rate()
        );
    }

    #[test]
    fn stats_executes_fewer_instructions_like_fig14() {
        // Fresh (light) centers adapt in fewer iterations, so the chunked
        // execution does less total work than the sequential one.
        let w = StreamCluster::paper();
        let inputs = w.generate_inputs(560, 5);
        let seq = run_sequential(&w, &inputs, 9);
        let spec = run_speculative(&w, &inputs, Config::stats_only(28, 4, 1), 9);
        let realized = spec.realized_work();
        assert!(
            (realized as f64) < seq.cost.work as f64 * 1.0,
            "STATS chunks should need fewer refinement iterations: {realized} vs {}",
            seq.cost.work
        );
    }

    #[test]
    fn chamfer_distance_properties() {
        let a = Centers {
            centers: CowBox::new(vec![Center {
                pos: vec![0.0, 0.0],
                weight: 1.0,
            }]),
        };
        let b = Centers {
            centers: CowBox::new(vec![Center {
                pos: vec![3.0, 4.0],
                weight: 5.0,
            }]),
        };
        assert_eq!(a.chamfer(&a), 0.0);
        assert!((a.chamfer(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.chamfer(&b), b.chamfer(&a));
        assert_eq!(a.chamfer(&Centers::default()), f64::INFINITY);
    }

    #[test]
    fn openings_never_exceed_the_cap() {
        // The online heuristic may open centers mid-batch but must always
        // consolidate back under 2*kmax during and kmax after refinement.
        let w = StreamCluster::paper();
        let inputs = w.generate_inputs(150, 8);
        let mut state = w.fresh_state();
        let mut rng = stats_core::rng::StatsRng::from_seed_value(3);
        for input in &inputs {
            w.update(&mut state, input, &mut rng);
            assert!(
                state.centers.len() <= w.kmax,
                "{} centers",
                state.centers.len()
            );
        }
    }

    #[test]
    fn mean_weight_decays() {
        let w = StreamCluster::paper();
        let inputs = w.generate_inputs(300, 4);
        let run = run_sequential(&w, &inputs, 3);
        // Weight is bounded by the decay's geometric series, not unbounded.
        assert!(run.final_state.mean_weight() < 1_000.0);
    }
}
