//! Synthetic point streams for the clustering benchmarks.

use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;

/// A batch of unlabeled points (streamcluster's unit of work).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointBatch {
    /// Row-major points: `points[i]` is one `dims`-dimensional point.
    pub points: Vec<Vec<f64>>,
    /// The generating cluster centers at this moment (ground truth for
    /// quality scoring).
    pub true_centers: Vec<Vec<f64>>,
}

/// A batch of labeled points (streamclassifier's unit of work).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledBatch {
    /// The points.
    pub points: Vec<Vec<f64>>,
    /// True class of each point.
    pub labels: Vec<usize>,
}

/// Parameters of a drifting Gaussian-mixture stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointStreamConfig {
    /// Dimensionality of the points.
    pub dims: usize,
    /// Number of generating clusters.
    pub clusters: usize,
    /// Points per batch.
    pub batch: usize,
    /// Within-cluster standard deviation.
    pub spread: f64,
    /// Per-batch drift of each cluster center.
    pub drift: f64,
}

impl PointStreamConfig {
    /// streamcluster-like stream: 8-D, 12 clusters, 64-point batches.
    pub fn cluster_stream() -> Self {
        PointStreamConfig {
            dims: 8,
            clusters: 12,
            batch: 64,
            spread: 0.15,
            drift: 0.02,
        }
    }

    /// streamclassifier-like stream: 16-D, 8 classes, 48-point batches.
    pub fn classifier_stream() -> Self {
        PointStreamConfig {
            dims: 16,
            clusters: 8,
            batch: 48,
            spread: 0.2,
            drift: 0.015,
        }
    }

    fn drift_centers(&self, centers: &mut [Vec<f64>], rng: &mut StatsRng) {
        for c in centers.iter_mut() {
            for x in c.iter_mut() {
                *x = (*x + rng.noise(self.drift)).clamp(-1.0, 1.0);
            }
        }
    }

    fn initial_centers(&self, rng: &mut StatsRng) -> Vec<Vec<f64>> {
        (0..self.clusters)
            .map(|_| (0..self.dims).map(|_| rng.noise(1.0)).collect())
            .collect()
    }

    /// Generate `n` unlabeled batches.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<PointBatch> {
        let mut rng = StatsRng::from_seed_value(seed ^ 0x0C10_57E2);
        let mut centers = self.initial_centers(&mut rng);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            self.drift_centers(&mut centers, &mut rng);
            let points = (0..self.batch)
                .map(|_| {
                    let c = rng.gen_range(0..self.clusters);
                    centers[c]
                        .iter()
                        .map(|x| x + rng.gaussian() * self.spread)
                        .collect()
                })
                .collect();
            out.push(PointBatch {
                points,
                true_centers: centers.clone(),
            });
        }
        out
    }

    /// Generate `n` labeled batches.
    pub fn generate_labeled(&self, n: usize, seed: u64) -> Vec<LabeledBatch> {
        let mut rng = StatsRng::from_seed_value(seed ^ 0x0C1A_55ED);
        let mut centers = self.initial_centers(&mut rng);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            self.drift_centers(&mut centers, &mut rng);
            let mut points = Vec::with_capacity(self.batch);
            let mut labels = Vec::with_capacity(self.batch);
            for _ in 0..self.batch {
                let c = rng.gen_range(0..self.clusters);
                labels.push(c);
                points.push(
                    centers[c]
                        .iter()
                        .map(|x| x + rng.gaussian() * self.spread)
                        .collect(),
                );
            }
            out.push(LabeledBatch { points, labels });
        }
        out
    }
}

/// Squared Euclidean distance between two points.
#[cfg(test)]
pub(crate) fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_configured_shape() {
        let cfg = PointStreamConfig::cluster_stream();
        let batches = cfg.generate(10, 1);
        assert_eq!(batches.len(), 10);
        for b in &batches {
            assert_eq!(b.points.len(), cfg.batch);
            assert_eq!(b.true_centers.len(), cfg.clusters);
            for p in &b.points {
                assert_eq!(p.len(), cfg.dims);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PointStreamConfig::classifier_stream();
        assert_eq!(cfg.generate_labeled(5, 3), cfg.generate_labeled(5, 3));
        assert_ne!(cfg.generate_labeled(5, 3), cfg.generate_labeled(5, 4));
    }

    #[test]
    fn points_cluster_near_true_centers() {
        let cfg = PointStreamConfig::cluster_stream();
        let batches = cfg.generate(20, 9);
        for b in &batches {
            for p in &b.points {
                let nearest = b
                    .true_centers
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min);
                // Within ~4 sigma of some center in most cases.
                assert!(nearest.sqrt() < cfg.spread * 8.0 * (cfg.dims as f64).sqrt());
            }
        }
    }

    #[test]
    fn centers_drift_over_time() {
        let cfg = PointStreamConfig::cluster_stream();
        let batches = cfg.generate(500, 2);
        let first = &batches[0].true_centers;
        let last = &batches[499].true_centers;
        let moved: f64 = first
            .iter()
            .zip(last)
            .map(|(a, b)| dist2(a, b).sqrt())
            .sum::<f64>()
            / cfg.clusters as f64;
        assert!(moved > 0.05, "no drift: {moved}");
    }

    #[test]
    fn labels_are_valid_classes() {
        let cfg = PointStreamConfig::classifier_stream();
        let batches = cfg.generate_labeled(10, 1);
        for b in &batches {
            assert_eq!(b.points.len(), b.labels.len());
            assert!(b.labels.iter().all(|&l| l < cfg.clusters));
        }
    }
}
