//! Compact binary serialization of synthetic input streams.
//!
//! Native-scale streams are cheap to regenerate, but pinning a generated
//! dataset to disk makes experiment artifacts self-contained (the same
//! role PARSEC's `native` input archives play for the paper). The format
//! is a minimal little-endian framing with a magic/version header —
//! deliberately simple, round-trip property-tested.

use crate::synth::{Frame, LabeledBatch, PointBatch, RateBatch};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: u32 = 0x5754_5301; // "STW" + version 1

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the expected magic/version.
    BadMagic,
    /// The buffer ended before the declared payload.
    Truncated,
    /// The kind tag does not match the requested stream type.
    WrongKind {
        /// Tag found in the header.
        found: u8,
        /// Tag required by the decoder.
        expected: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a stats-workbench stream (bad magic)"),
            CodecError::Truncated => write!(f, "stream truncated"),
            CodecError::WrongKind { found, expected } => {
                write!(f, "wrong stream kind {found} (expected {expected})")
            }
        }
    }
}

impl std::error::Error for CodecError {}

const KIND_FRAMES: u8 = 1;
const KIND_POINTS: u8 = 2;
const KIND_LABELED: u8 = 3;
const KIND_RATES: u8 = 4;

fn put_header(buf: &mut BytesMut, kind: u8, count: usize) {
    buf.put_u32_le(MAGIC);
    buf.put_u8(kind);
    buf.put_u64_le(count as u64);
}

fn take_header(buf: &mut Bytes, expected: u8) -> Result<usize, CodecError> {
    if buf.remaining() < 13 {
        return Err(CodecError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let kind = buf.get_u8();
    if kind != expected {
        return Err(CodecError::WrongKind {
            found: kind,
            expected,
        });
    }
    Ok(buf.get_u64_le() as usize)
}

fn put_vec(buf: &mut BytesMut, v: &[f64]) {
    buf.put_u32_le(v.len() as u32);
    for x in v {
        buf.put_f64_le(*x);
    }
}

fn take_vec(buf: &mut Bytes) -> Result<Vec<f64>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 8 {
        return Err(CodecError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f64_le()).collect())
}

/// Encode a frame stream (the tracker benchmarks' inputs).
pub fn encode_frames(frames: &[Frame]) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, KIND_FRAMES, frames.len());
    for f in frames {
        put_vec(&mut buf, &f.truth);
        put_vec(&mut buf, &f.observation);
        put_vec(&mut buf, &f.distractor);
        buf.put_f64_le(f.clutter);
        buf.put_u8(u8::from(f.occluded));
    }
    buf.freeze()
}

/// Decode a frame stream.
///
/// # Errors
///
/// See [`CodecError`].
pub fn decode_frames(mut buf: Bytes) -> Result<Vec<Frame>, CodecError> {
    let count = take_header(&mut buf, KIND_FRAMES)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let truth = take_vec(&mut buf)?;
        let observation = take_vec(&mut buf)?;
        let distractor = take_vec(&mut buf)?;
        if buf.remaining() < 9 {
            return Err(CodecError::Truncated);
        }
        let clutter = buf.get_f64_le();
        let occluded = buf.get_u8() != 0;
        out.push(Frame {
            truth,
            observation,
            distractor,
            clutter,
            occluded,
        });
    }
    Ok(out)
}

/// Encode a point-batch stream (streamcluster's inputs).
pub fn encode_points(batches: &[PointBatch]) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, KIND_POINTS, batches.len());
    for b in batches {
        buf.put_u32_le(b.points.len() as u32);
        for p in &b.points {
            put_vec(&mut buf, p);
        }
        buf.put_u32_le(b.true_centers.len() as u32);
        for c in &b.true_centers {
            put_vec(&mut buf, c);
        }
    }
    buf.freeze()
}

/// Decode a point-batch stream.
///
/// # Errors
///
/// See [`CodecError`].
pub fn decode_points(mut buf: Bytes) -> Result<Vec<PointBatch>, CodecError> {
    let count = take_header(&mut buf, KIND_POINTS)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let np = buf.get_u32_le() as usize;
        let mut points = Vec::with_capacity(np);
        for _ in 0..np {
            points.push(take_vec(&mut buf)?);
        }
        if buf.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let nc = buf.get_u32_le() as usize;
        let mut true_centers = Vec::with_capacity(nc);
        for _ in 0..nc {
            true_centers.push(take_vec(&mut buf)?);
        }
        out.push(PointBatch {
            points,
            true_centers,
        });
    }
    Ok(out)
}

/// Encode a labeled-batch stream (streamclassifier's inputs).
pub fn encode_labeled(batches: &[LabeledBatch]) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, KIND_LABELED, batches.len());
    for b in batches {
        buf.put_u32_le(b.points.len() as u32);
        for (p, label) in b.points.iter().zip(&b.labels) {
            put_vec(&mut buf, p);
            buf.put_u32_le(*label as u32);
        }
    }
    buf.freeze()
}

/// Decode a labeled-batch stream.
///
/// # Errors
///
/// See [`CodecError`].
pub fn decode_labeled(mut buf: Bytes) -> Result<Vec<LabeledBatch>, CodecError> {
    let count = take_header(&mut buf, KIND_LABELED)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let np = buf.get_u32_le() as usize;
        let mut points = Vec::with_capacity(np);
        let mut labels = Vec::with_capacity(np);
        for _ in 0..np {
            points.push(take_vec(&mut buf)?);
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            labels.push(buf.get_u32_le() as usize);
        }
        out.push(LabeledBatch { points, labels });
    }
    Ok(out)
}

/// Encode a rate-batch stream (swaptions' inputs).
pub fn encode_rates(batches: &[RateBatch]) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, KIND_RATES, batches.len());
    for b in batches {
        buf.put_u32_le(b.swaption as u32);
        buf.put_u64_le(b.simulations);
        buf.put_f64_le(b.strike);
        buf.put_f64_le(b.maturity);
        buf.put_f64_le(b.rate0);
        buf.put_f64_le(b.volatility);
    }
    buf.freeze()
}

/// Decode a rate-batch stream.
///
/// # Errors
///
/// See [`CodecError`].
pub fn decode_rates(mut buf: Bytes) -> Result<Vec<RateBatch>, CodecError> {
    let count = take_header(&mut buf, KIND_RATES)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 4 + 8 + 4 * 8 {
            return Err(CodecError::Truncated);
        }
        out.push(RateBatch {
            swaption: buf.get_u32_le() as usize,
            simulations: buf.get_u64_le(),
            strike: buf.get_f64_le(),
            maturity: buf.get_f64_le(),
            rate0: buf.get_f64_le(),
            volatility: buf.get_f64_le(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{ImageStreamConfig, PointStreamConfig, RateStreamConfig};

    #[test]
    fn frames_round_trip() {
        let frames = ImageStreamConfig::face().generate(64, 7);
        let bytes = encode_frames(&frames);
        let back = decode_frames(bytes).unwrap();
        assert_eq!(frames, back);
    }

    #[test]
    fn points_round_trip() {
        let batches = PointStreamConfig::cluster_stream().generate(16, 3);
        assert_eq!(decode_points(encode_points(&batches)).unwrap(), batches);
    }

    #[test]
    fn labeled_round_trip() {
        let batches = PointStreamConfig::classifier_stream().generate_labeled(16, 3);
        assert_eq!(decode_labeled(encode_labeled(&batches)).unwrap(), batches);
    }

    #[test]
    fn rates_round_trip() {
        let batches = RateStreamConfig::paper().generate(32, 9);
        assert_eq!(decode_rates(encode_rates(&batches)).unwrap(), batches);
    }

    #[test]
    fn bad_magic_and_kind_are_rejected() {
        let frames = ImageStreamConfig::face().generate(4, 1);
        let good = encode_frames(&frames);
        // Wrong kind: decode frames as points.
        assert_eq!(
            decode_points(good.clone()),
            Err(CodecError::WrongKind {
                found: KIND_FRAMES,
                expected: KIND_POINTS
            })
        );
        // Corrupt magic.
        let mut corrupt = BytesMut::from(&good[..]);
        corrupt[0] ^= 0xFF;
        assert_eq!(decode_frames(corrupt.freeze()), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let frames = ImageStreamConfig::face().generate(6, 5);
        let bytes = encode_frames(&frames);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let prefix = bytes.slice(0..cut);
            assert!(
                decode_frames(prefix).is_err(),
                "prefix of {cut} bytes decoded successfully?!"
            );
        }
    }

    #[test]
    fn empty_streams_round_trip() {
        assert_eq!(
            decode_frames(encode_frames(&[])).unwrap(),
            Vec::<Frame>::new()
        );
        assert_eq!(
            decode_rates(encode_rates(&[])).unwrap(),
            Vec::<RateBatch>::new()
        );
    }
}
