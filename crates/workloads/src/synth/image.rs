//! Synthetic image streams for the tracking benchmarks.
//!
//! A frame is not a pixel array — the particle filters consume *observed
//! features*: a noisy measurement of the target's pose plus a clutter
//! level. This is exactly the abstraction level at which bodytrack's
//! likelihood function operates once its image-processing front end has
//! produced edge maps.

use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;

/// One synthesized frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Ground-truth pose of the target (position, joint angles, …).
    pub truth: Vec<f64>,
    /// Noisy observation of the pose (what the tracker's likelihood sees).
    pub observation: Vec<f64>,
    /// Clutter level in `[0, 1]`: raises observation noise and detector
    /// failure probability.
    pub clutter: f64,
    /// Whether the target is occluded in this frame (observation carries
    /// almost no information).
    pub occluded: bool,
    /// A face-like distractor object moving independently: detectors and
    /// freshly seeded trackers can lock onto it (the source of
    /// mispeculation in the face benchmarks).
    pub distractor: Vec<f64>,
}

/// Parameters of a synthetic video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageStreamConfig {
    /// Dimensions of the pose vector (2 for a face box center, more for a
    /// body model).
    pub pose_dims: usize,
    /// Per-frame random-walk step of the true pose.
    pub motion_step: f64,
    /// Standard deviation of the observation noise at zero clutter.
    pub noise_base: f64,
    /// Probability that a frame is occluded.
    pub occlusion_prob: f64,
    /// Smooth clutter oscillation period, in frames.
    pub clutter_period: f64,
}

impl ImageStreamConfig {
    /// A body-tracking stream: high-dimensional pose, moderate noise.
    pub fn body() -> Self {
        ImageStreamConfig {
            pose_dims: 16,
            motion_step: 0.05,
            noise_base: 0.035,
            occlusion_prob: 0.0,
            clutter_period: 97.0,
        }
    }

    /// A face-tracking stream: 2-D box center, occasional occlusion.
    pub fn face() -> Self {
        ImageStreamConfig {
            pose_dims: 2,
            motion_step: 0.08,
            noise_base: 0.05,
            occlusion_prob: 0.04,
            clutter_period: 61.0,
        }
    }

    /// Generate `n` frames deterministically from `seed`.
    ///
    /// The true pose performs a smooth bounded random walk; observations
    /// add clutter-scaled Gaussian noise.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Frame> {
        let mut rng = StatsRng::from_seed_value(seed ^ 0x1333_7AB1);
        let mut truth = vec![0.0f64; self.pose_dims];
        let mut distractor = vec![0.6f64; self.pose_dims];
        let mut frames = Vec::with_capacity(n);
        for i in 0..n {
            // Smooth motion: sinusoidal drift plus a random step, bounded
            // to [-1, 1] per dimension.
            for (d, t) in truth.iter_mut().enumerate() {
                let drift = 0.3 * ((i as f64 / (40.0 + d as f64)) + d as f64).sin();
                *t = (*t * 0.95 + drift * 0.05 + rng.noise(self.motion_step)).clamp(-1.0, 1.0);
            }
            let clutter =
                0.5 + 0.5 * (std::f64::consts::TAU * i as f64 / self.clutter_period).sin();
            let occluded = rng.chance(self.occlusion_prob);
            let sigma = self.noise_base * (1.0 + 2.0 * clutter) * if occluded { 8.0 } else { 1.0 };
            let observation = truth
                .iter()
                .map(|t| t + rng.gaussian() * sigma)
                .collect::<Vec<_>>();
            // The distractor wanders independently, biased away from the
            // target so sequential trackers rarely confuse the two.
            for (d, (x, t)) in distractor.iter_mut().zip(&truth).enumerate() {
                let repel = if (*x - t).abs() < 0.3 {
                    0.05 * (*x - t).signum()
                } else {
                    0.0
                };
                *x = (*x
                    + repel
                    + 0.04 * ((i as f64 / (31.0 + d as f64)) + 2.0 * d as f64).cos()
                    + rng.noise(self.motion_step))
                .clamp(-1.0, 1.0);
            }
            frames.push(Frame {
                truth: truth.clone(),
                observation,
                clutter,
                occluded,
                distractor: distractor.clone(),
            });
        }
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let cfg = ImageStreamConfig::face();
        let a = cfg.generate(100, 7);
        let b = cfg.generate(100, 7);
        assert_eq!(a, b);
        let c = cfg.generate(100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn truth_is_bounded_and_smooth() {
        let cfg = ImageStreamConfig::body();
        let frames = cfg.generate(500, 3);
        for pair in frames.windows(2) {
            for d in 0..cfg.pose_dims {
                assert!(pair[0].truth[d].abs() <= 1.0);
                let step = (pair[1].truth[d] - pair[0].truth[d]).abs();
                assert!(step < 0.3, "motion too abrupt: {step}");
            }
        }
    }

    #[test]
    fn observations_track_truth_on_average() {
        let cfg = ImageStreamConfig::face();
        let frames = cfg.generate(400, 11);
        let mean_err: f64 = frames
            .iter()
            .filter(|f| !f.occluded)
            .map(|f| {
                f.truth
                    .iter()
                    .zip(&f.observation)
                    .map(|(t, o)| (t - o).abs())
                    .sum::<f64>()
                    / f.truth.len() as f64
            })
            .sum::<f64>()
            / frames.len() as f64;
        assert!(mean_err < 0.5, "observations useless: {mean_err}");
    }

    #[test]
    fn occlusion_rate_matches_config() {
        let cfg = ImageStreamConfig::face();
        let frames = cfg.generate(2_000, 5);
        let rate = frames.iter().filter(|f| f.occluded).count() as f64 / 2_000.0;
        assert!((rate - cfg.occlusion_prob).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn body_stream_has_no_occlusion() {
        let frames = ImageStreamConfig::body().generate(300, 1);
        assert!(frames.iter().all(|f| !f.occluded));
    }

    #[test]
    fn clutter_oscillates_in_unit_range() {
        let frames = ImageStreamConfig::face().generate(200, 2);
        assert!(frames.iter().all(|f| (0.0..=1.0).contains(&f.clutter)));
        let max = frames.iter().map(|f| f.clutter).fold(0.0, f64::max);
        let min = frames.iter().map(|f| f.clutter).fold(1.0, f64::min);
        assert!(max - min > 0.5, "clutter should vary");
    }
}
