//! Synthetic simulation-batch descriptors for the swaptions benchmark.

use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;

/// One batch of Monte-Carlo simulations for a swaption (the unit of work
/// the STATS state dependence chains over).
///
/// The paper runs 32 million simulations over 4 swaptions (§IV-C); the
/// stream is the sequence of simulation batches, and the state dependence
/// is the running price estimate each batch refines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateBatch {
    /// Which of the swaptions this batch belongs to.
    pub swaption: usize,
    /// Number of simulations the batch represents at native scale.
    pub simulations: u64,
    /// Strike rate of the swaption.
    pub strike: f64,
    /// Years to maturity.
    pub maturity: f64,
    /// Initial short rate.
    pub rate0: f64,
    /// Short-rate volatility.
    pub volatility: f64,
}

/// Parameters of the batch stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateStreamConfig {
    /// Number of distinct swaptions (the paper uses 4).
    pub swaptions: usize,
    /// Simulations per batch at native scale.
    pub sims_per_batch: u64,
}

impl RateStreamConfig {
    /// The paper's configuration: 4 swaptions, 32M total simulations
    /// spread over the generated batches.
    pub fn paper() -> Self {
        RateStreamConfig {
            swaptions: 4,
            sims_per_batch: 16_000,
        }
    }

    /// Generate `n` batches; swaptions interleave round-robin so every
    /// chunk of the stream touches every swaption.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<RateBatch> {
        let mut rng = StatsRng::from_seed_value(seed ^ 0x5A97_0123);
        // Fixed per-swaption contract terms, drawn once.
        let contracts: Vec<(f64, f64, f64, f64)> = (0..self.swaptions)
            .map(|_| {
                (
                    0.03 + rng.unit() * 0.04, // strike 3-7%
                    1.0 + rng.unit() * 9.0,   // maturity 1-10y
                    0.02 + rng.unit() * 0.03, // initial rate
                    0.1 + rng.unit() * 0.3,   // volatility
                )
            })
            .collect();
        (0..n)
            .map(|i| {
                let s = i % self.swaptions;
                let (strike, maturity, rate0, volatility) = contracts[s];
                RateBatch {
                    swaption: s,
                    simulations: self.sims_per_batch,
                    strike,
                    maturity,
                    rate0,
                    volatility,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_interleave_swaptions() {
        let cfg = RateStreamConfig::paper();
        let batches = cfg.generate(16, 1);
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.swaption, i % 4);
        }
    }

    #[test]
    fn contract_terms_are_stable_per_swaption() {
        let cfg = RateStreamConfig::paper();
        let batches = cfg.generate(40, 2);
        for b in &batches {
            let first = batches.iter().find(|x| x.swaption == b.swaption).unwrap();
            assert_eq!(b.strike, first.strike);
            assert_eq!(b.maturity, first.maturity);
        }
    }

    #[test]
    fn terms_are_plausible() {
        let batches = RateStreamConfig::paper().generate(8, 3);
        for b in &batches {
            assert!(b.strike > 0.0 && b.strike < 0.1);
            assert!(b.maturity >= 1.0 && b.maturity <= 10.0);
            assert!(b.volatility > 0.0 && b.volatility < 0.5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RateStreamConfig::paper();
        assert_eq!(cfg.generate(10, 5), cfg.generate(10, 5));
        assert_ne!(cfg.generate(10, 5), cfg.generate(10, 6));
    }
}
