//! Deterministic synthetic input generators.
//!
//! The paper uses PARSEC native inputs, a 600-frame webcam video, and a
//! 1,050-frame video (§IV-C) — none of which ship with a library. These
//! generators produce statistically equivalent streams: moving targets
//! with measurement noise and clutter for the trackers, drifting labeled
//! Gaussian clusters for the stream benchmarks, and interest-rate batch
//! descriptors for the pricer. Every stream is a pure function of its
//! seed, and every element carries its ground truth so output quality can
//! be scored without external references.

pub mod codec;
mod image;
mod points;
mod rates;

pub use image::{Frame, ImageStreamConfig};
pub use points::{LabeledBatch, PointBatch, PointStreamConfig};
pub use rates::{RateBatch, RateStreamConfig};
