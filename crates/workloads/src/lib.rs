//! # stats-workloads
//!
//! Rust analogs of the six nondeterministic benchmarks the paper
//! characterizes (§IV-C), each exposing an explicit state dependence
//! through [`stats_core::StateDependence`]:
//!
//! | module | paper benchmark | algorithmic skeleton |
//! |---|---|---|
//! | [`swaptions`] | `swaptions` | Monte-Carlo short-rate swaption pricing |
//! | [`streamcluster`] | `streamcluster` | online k-median over a point stream |
//! | [`streamclassifier`] | `streamclassifier` | streaming prototype classifier |
//! | [`bodytrack`] | `bodytrack` | annealed particle filter over an image stream |
//! | [`facetrack`] | `facetrack` | particle filter tracking one face |
//! | [`facedet_and_track`] | `facedet-and-track` | detector with particle-filter fallback |
//!
//! The PARSEC sources, their native inputs, and OpenCV are unavailable to a
//! pure-Rust reproduction, so each analog keeps the *shape* that matters to
//! STATS: the same state dependence (particle clouds, cluster centers,
//! price accumulators), genuine nondeterminism through seeded
//! [`StatsRng`](stats_core::StatsRng) streams, the short memory property,
//! per-input cost variance (imbalance), and per-benchmark inner TLP.
//! Inputs come from deterministic synthetic generators ([`synth`]) that
//! carry ground truth, which powers the output-quality metrics of Fig. 16
//! ([`quality`]). [`fluidanimate`] — the benchmark the paper *excluded* —
//! is included as a negative control: its fluid state has long memory, so
//! speculation aborts everywhere and STATS brings no speedup, exactly the
//! paper's exclusion rationale.
//!
//! [`suite`] ties everything together: per-benchmark metadata (tuned
//! configurations, native input scales, microarchitectural profiles) and a
//! visitor-style dispatcher the experiment harness iterates with.

pub mod bodytrack;
pub mod facedet_and_track;
pub mod facetrack;
pub mod fluidanimate;
pub mod particle;
pub mod quality;
pub mod streamclassifier;
pub mod streamcluster;
pub mod suite;
pub mod swaptions;
pub mod synth;

pub use suite::{
    dispatch, ExecMode, Workload, WorkloadVisitor, BENCHMARK_NAMES, EXTENDED_BENCHMARK_NAMES,
};
