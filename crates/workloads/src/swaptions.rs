//! `swaptions`: Monte-Carlo swaption pricing (PARSEC analog).
//!
//! The paper's configuration prices 4 swaptions with 32 million simulations
//! (§IV-C: "we increased the number of simulations to 32 millions and
//! decreased the number of swaptions to 4"). The input stream is the
//! sequence of simulation batches; the state dependence is the running
//! price estimate each batch refines. The estimate is an exponentially
//! weighted average of normalized batch prices, which is stationary — the
//! short-memory property is strong, and STATS commits essentially always
//! (the paper: "swaptions parallelized by STATS reaches linear speedup on
//! 28 cores").

use crate::suite::{ExecMode, Workload};
use crate::synth::{RateBatch, RateStreamConfig};
use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;
use stats_core::{Config, InnerParallelism, SnapshotStrategy, StateDependence, UpdateCost};
use stats_uarch::StreamProfile;

/// Paths actually simulated per batch (statistics are scaled to the
/// batch's native simulation count).
const SAMPLE_PATHS: usize = 256;
/// Time steps per simulated path.
const PATH_STEPS: usize = 16;

/// The running price state: 3 × f64 = 24 bytes (Table I's state size).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PriceState {
    /// EWMA of normalized batch prices.
    pub price: f64,
    /// EWMA of squared deviation (convergence monitor).
    pub variance: f64,
    /// EWMA decay bookkeeping (warm-up ramp).
    pub warmup: f64,
}

/// The swaptions workload.
#[derive(Debug, Clone)]
pub struct Swaptions {
    stream: RateStreamConfig,
    /// EWMA decay: lower = shorter memory.
    decay: f64,
    /// Acceptance tolerance on the normalized price.
    tolerance: f64,
}

impl Swaptions {
    /// The paper-scale configuration.
    pub fn paper() -> Self {
        Swaptions {
            stream: RateStreamConfig::paper(),
            decay: 0.98,
            tolerance: 0.12,
        }
    }

    /// Monte-Carlo price of one batch, normalized by a deterministic
    /// reference so all swaptions share one stationary scale.
    fn batch_price(&self, batch: &RateBatch, rng: &mut StatsRng) -> f64 {
        let dt = batch.maturity / PATH_STEPS as f64;
        let kappa = 0.2;
        let theta = batch.rate0 * 1.2;
        let mut payoff_sum = 0.0;
        for _ in 0..SAMPLE_PATHS {
            let mut r = batch.rate0;
            for _ in 0..PATH_STEPS {
                // CIR-style short-rate step.
                r += kappa * (theta - r) * dt
                    + batch.volatility * r.abs().sqrt() * rng.gaussian() * dt.sqrt();
                r = r.max(0.0001);
            }
            payoff_sum += (r - batch.strike).max(0.0) * (-batch.rate0 * batch.maturity).exp();
        }
        let price = payoff_sum / SAMPLE_PATHS as f64;
        // Deterministic normalizer: a crude expected payoff scale.
        let reference = (batch.rate0 * 1.2 - batch.strike).abs().max(0.002)
            + 0.3 * batch.volatility * batch.rate0;
        price / reference
    }
}

impl StateDependence for Swaptions {
    type State = PriceState;
    type Input = RateBatch;
    type Output = f64;

    fn fresh_state(&self) -> PriceState {
        PriceState::default()
    }

    fn update(
        &self,
        state: &mut PriceState,
        input: &RateBatch,
        rng: &mut StatsRng,
    ) -> (f64, UpdateCost) {
        let q = self.batch_price(input, rng);
        state.warmup = self.decay * state.warmup + (1.0 - self.decay);
        let alpha = (1.0 - self.decay) / state.warmup.max(1e-9);
        let delta = q - state.price;
        state.price += alpha * delta;
        state.variance = (1.0 - alpha) * state.variance + alpha * delta * delta;
        // Native cost: `simulations` paths of PATH_STEPS steps, ~12 cycle-
        // equivalents per step (mul/add/sqrt/rng).
        let work = input.simulations * PATH_STEPS as u64 * 12;
        (state.price, UpdateCost::new(work, work * 2))
    }

    fn states_match(&self, a: &PriceState, b: &PriceState) -> bool {
        // Noise-adaptive acceptance: both states carry an EWMA of squared
        // batch deviations, so the check scales with the contract's own
        // Monte-Carlo noise (contracts with near-zero normalizers are
        // noisier; a fixed threshold would spuriously abort them).
        let noise = a.variance.max(b.variance).sqrt();
        (a.price - b.price).abs() <= self.tolerance + 2.5 * noise
    }

    fn state_bytes(&self) -> usize {
        24
    }

    // The 24-byte `Copy` state is cheaper to duplicate than to share:
    // swaptions keeps the default deep snapshot under both strategies
    // (the trait defaults charge `state_bytes` per copy event either way).

    fn outside_region_work(&self) -> (u64, u64) {
        // Argument parsing and result printing: negligible.
        (2_000_000, 1_000_000)
    }
}

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn inner_parallelism(&self) -> InnerParallelism {
        // The original pthreads version partitions *swaptions* across
        // threads; with 4 swaptions its TLP is capped at 4 (§IV-C).
        InnerParallelism::amdahl(0.98, 4)
    }

    fn tuned_config(&self, cores: usize) -> Config {
        Config {
            chunks: cores,
            lookback: 4,
            extra_states: 1,
            combine_inner_tlp: true,
            snapshot: SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        }
    }

    fn native_input_count(&self) -> usize {
        2_000 // x 16k simulations = the paper's 32M
    }

    fn generate_inputs(&self, n: usize, seed: u64) -> Vec<RateBatch> {
        self.stream.generate(n, seed)
    }

    fn quality(&self, inputs: &[RateBatch], outputs: &[f64]) -> f64 {
        // Price error: deviation of the converged estimate from a
        // deterministic high-precision oracle (many fixed-seed paths over
        // the same contracts).
        if outputs.len() < 10 || inputs.is_empty() {
            return 0.0;
        }
        let mut oracle_rng = StatsRng::from_seed_value(0x0AC1E);
        let mut reference = 0.0;
        let reps = 24;
        for r in 0..reps {
            reference += self.batch_price(&inputs[r % inputs.len().min(8)], &mut oracle_rng);
        }
        reference /= reps as f64;
        let tail = &outputs[outputs.len() * 3 / 4..];
        let estimate = tail.iter().sum::<f64>() / tail.len() as f64;
        crate::quality::error_to_quality((estimate - reference).abs() * 8.0)
    }

    fn uarch_profiles(&self, mode: ExecMode) -> Vec<StreamProfile> {
        // Tiny working set: path arrays and the 24-byte state. Misses are
        // rare at every level (Table II row 1), and STATS barely changes
        // the picture.
        let per_core_accesses = 1_200_000_000u64;
        let base = StreamProfile {
            region_base: 0x100_0000,
            working_set: 256 * 1024,
            accesses: per_core_accesses,
            streaming: 0.08,
            hot: 0.90,
            branches: per_core_accesses / 6,
            irregular_branches: 0.015,
            irregular_bias: 0.5,
        };
        match mode {
            ExecMode::Sequential => vec![base],
            ExecMode::OriginalTlp => (0..4)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x40_0000,
                    accesses: per_core_accesses / 4,
                    branches: per_core_accesses / 24,
                    ..base
                })
                .collect(),
            ExecMode::StatsTlp => (0..28)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x10_0000,
                    accesses: per_core_accesses / 28,
                    branches: per_core_accesses / (28 * 6),
                    ..base
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats_core::runtime::sequential::run_sequential;
    use stats_core::speculation::run_speculative;

    #[test]
    fn price_estimate_converges() {
        let w = Swaptions::paper();
        let inputs = w.generate_inputs(400, 1);
        let run = run_sequential(&w, &inputs, 42);
        // Normalized prices hover around a stationary value; late outputs
        // are close to each other.
        let tail = &run.outputs[300..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        for x in tail {
            assert!((x - mean).abs() < 0.15, "unstable estimate: {x} vs {mean}");
        }
    }

    #[test]
    fn short_memory_enables_commits() {
        let w = Swaptions::paper();
        let inputs = w.generate_inputs(560, 2);
        let cfg = Config::stats_only(28, 8, 2);
        let out = run_speculative(&w, &inputs, cfg, 7);
        let commit_rate = out.commit_rate();
        assert!(
            commit_rate > 0.9,
            "swaptions should commit nearly always: {commit_rate}"
        );
    }

    #[test]
    fn per_update_cost_is_native_scale() {
        let w = Swaptions::paper();
        let inputs = w.generate_inputs(4, 3);
        let run = run_sequential(&w, &inputs, 1);
        // 16k sims x 16 steps x 12 = ~3M work units per batch.
        assert_eq!(run.per_input_costs[0].work, 16_000 * 16 * 12);
    }

    #[test]
    fn state_is_24_bytes_like_table1() {
        assert_eq!(Swaptions::paper().state_bytes(), 24);
        assert_eq!(std::mem::size_of::<PriceState>(), 24);
    }

    #[test]
    fn quality_is_high_for_stable_runs() {
        let w = Swaptions::paper();
        let inputs = w.generate_inputs(400, 1);
        let run = run_sequential(&w, &inputs, 42);
        let q = w.quality(&inputs, &run.outputs);
        assert!(q > 0.3, "quality {q}");
    }

    #[test]
    fn acceptance_is_noise_adaptive() {
        // High-variance states tolerate proportionally larger price gaps —
        // the application-specific acceptance check the STATS interface
        // lets developers express (§II-A).
        let w = Swaptions::paper();
        let quiet_a = PriceState {
            price: 2.0,
            variance: 0.0,
            warmup: 1.0,
        };
        let quiet_b = PriceState {
            price: 2.2,
            variance: 0.0,
            warmup: 1.0,
        };
        assert!(!w.states_match(&quiet_a, &quiet_b), "0.2 gap at zero noise");
        let noisy_a = PriceState {
            price: 2.0,
            variance: 0.01,
            warmup: 1.0,
        };
        let noisy_b = PriceState {
            price: 2.2,
            variance: 0.01,
            warmup: 1.0,
        };
        assert!(
            w.states_match(&noisy_a, &noisy_b),
            "0.2 gap within 2.5 sigma"
        );
    }

    #[test]
    fn nondeterminism_varies_outputs_not_convergence() {
        let w = Swaptions::paper();
        let inputs = w.generate_inputs(200, 1);
        let a = run_sequential(&w, &inputs, 1);
        let b = run_sequential(&w, &inputs, 2);
        assert_ne!(a.outputs, b.outputs);
        let ma = a.outputs[150..].iter().sum::<f64>() / 50.0;
        let mb = b.outputs[150..].iter().sum::<f64>() / 50.0;
        assert!((ma - mb).abs() < 0.1, "runs should agree on the price");
    }
}
