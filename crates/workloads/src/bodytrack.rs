//! `bodytrack`: annealed particle filter tracking a body pose through an
//! image stream (PARSEC analog — the paper's driving example, §II-A).
//!
//! "Where the body is at image `I_i` does not depend on where it was in
//! the image `I_{i-k}` with high `k`" — the particle cloud is the state
//! dependence, and a cloud rebuilt from scratch over a couple of frames
//! converges to the same track: the short-memory property STATS exploits.
//! The cloud is big (Table I: 500 KB states), making state copies and
//! comparisons expensive — bodytrack is the paper's state-copy stress
//! case (Fig. 15).

use crate::particle::ParticleCloud;
use crate::suite::{ExecMode, Workload};
use crate::synth::{Frame, ImageStreamConfig};
use stats_core::rng::StatsRng;
use stats_core::{Config, InnerParallelism, SnapshotStrategy, StateDependence, UpdateCost};
use stats_uarch::StreamProfile;

/// Particles actually simulated (costs scale to the native count).
const PARTICLES: usize = 128;
/// Annealing layers actually simulated (PARSEC native uses 5).
const LAYERS: usize = 3;
/// Native-scale multiplier: the paper's bodytrack runs thousands of
/// particles over multi-camera edge maps per frame.
const NATIVE_SCALE: u64 = 1_100;

/// The bodytrack workload.
#[derive(Debug, Clone)]
pub struct BodyTrack {
    stream: ImageStreamConfig,
    /// Acceptance tolerance on the pose-estimate distance.
    tolerance: f64,
}

impl BodyTrack {
    /// The paper-scale configuration.
    pub fn paper() -> Self {
        BodyTrack {
            stream: ImageStreamConfig::body(),
            tolerance: 0.32,
        }
    }
}

impl StateDependence for BodyTrack {
    type State = ParticleCloud;
    type Input = Frame;
    type Output = Vec<f64>;

    fn fresh_state(&self) -> ParticleCloud {
        ParticleCloud::fresh(PARTICLES, self.stream.pose_dims, 0xB0D7)
    }

    fn update(
        &self,
        state: &mut ParticleCloud,
        input: &Frame,
        rng: &mut StatsRng,
    ) -> (Vec<f64>, UpdateCost) {
        let mut extra_flops = 0u64;
        // A diffuse cloud (fresh start) re-initializes around the observed
        // pose, as bodytrack does from its first-frame detection.
        if state.spread() > 0.5 {
            extra_flops = state.reseed_around(&input.observation, 0.1, rng);
        }
        let obs_sigma = 0.06 * (1.0 + input.clutter);
        let flops = extra_flops + state.step(&input.observation, obs_sigma, 0.08, LAYERS, rng);
        let estimate = state.estimate();
        let work = flops * NATIVE_SCALE;
        (estimate, UpdateCost::new(work, work * 2))
    }

    fn states_match(&self, a: &ParticleCloud, b: &ParticleCloud) -> bool {
        a.estimates_match(b, self.tolerance)
    }

    fn state_bytes(&self) -> usize {
        500_000 // Table I
    }

    fn snapshot_state(
        &self,
        state: &mut ParticleCloud,
        strategy: SnapshotStrategy,
    ) -> ParticleCloud {
        match strategy {
            SnapshotStrategy::DeepClone => state.clone(),
            SnapshotStrategy::CopyOnWrite => state.fork(),
        }
    }

    fn take_materialized(&self, state: &mut ParticleCloud) -> u64 {
        state.take_materialized(self.state_bytes() as u64)
    }

    fn snapshot_copy_bytes(&self, strategy: SnapshotStrategy) -> u64 {
        match strategy {
            // The whole 500 KB state is the cloud; a COW snapshot copies
            // nothing up front.
            SnapshotStrategy::DeepClone => self.state_bytes() as u64,
            SnapshotStrategy::CopyOnWrite => 0,
        }
    }

    fn outside_region_work(&self) -> (u64, u64) {
        // Model loading and output video writing.
        (120_000_000, 60_000_000)
    }

    fn sync_ops_per_update(&self) -> u64 {
        2 // per-frame image handoff + particle batch barrier
    }
}

impl Workload for BodyTrack {
    fn name(&self) -> &'static str {
        "bodytrack"
    }

    fn inner_parallelism(&self) -> InnerParallelism {
        // Original bodytrack parallelizes likelihood evaluation across
        // particles within a frame.
        InnerParallelism::amdahl(0.85, usize::MAX)
    }

    fn tuned_config(&self, cores: usize) -> Config {
        // Table I: 12 computational states on 28 cores. The autotuner
        // stops at 12 chunks: lookback-2 speculation over 16-D poses
        // starts aborting beyond that.
        let _ = cores;
        Config {
            chunks: 12,
            lookback: 5,
            extra_states: 4,
            combine_inner_tlp: true,
            snapshot: SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        }
    }

    fn native_input_count(&self) -> usize {
        600
    }

    fn generate_inputs(&self, n: usize, seed: u64) -> Vec<Frame> {
        self.stream.generate(n, seed)
    }

    fn quality(&self, inputs: &[Frame], outputs: &[Vec<f64>]) -> f64 {
        let truths: Vec<Vec<f64>> = inputs.iter().map(|f| f.truth.clone()).collect();
        let err = crate::quality::mean_euclidean(outputs, &truths);
        crate::quality::error_to_quality((err - 0.15).max(0.0) * 15.0)
    }

    fn uarch_profiles(&self, mode: ExecMode) -> Vec<StreamProfile> {
        // Edge maps + particle arrays: moderate working set with strong
        // locality. STATS executes ~2x the instructions (Fig. 14: +107%),
        // so absolute misses grow while rates stay similar (Table II).
        let seq_accesses = 1_800_000_000u64;
        let base = StreamProfile {
            region_base: 0x2000_0000,
            working_set: 12 * 1024 * 1024,
            accesses: seq_accesses,
            streaming: 0.45,
            hot: 0.45,
            branches: seq_accesses / 7,
            irregular_branches: 0.08,
            irregular_bias: 0.5,
        };
        match mode {
            ExecMode::Sequential => vec![base],
            ExecMode::OriginalTlp => (0..28)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x100_0000,
                    accesses: seq_accesses * 108 / (100 * 28),
                    branches: seq_accesses * 108 / (100 * 28 * 7),
                    ..base
                })
                .collect(),
            ExecMode::StatsTlp => (0..12)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x200_0000,
                    // ~2.07x instructions => ~2x accesses spread over chunks.
                    accesses: seq_accesses * 207 / (100 * 12),
                    branches: seq_accesses * 207 / (100 * 12 * 7),
                    // Chunked processing hurts temporal locality slightly.
                    streaming: 0.4,
                    hot: 0.4,
                    ..base
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::mean_euclidean;
    use stats_core::runtime::sequential::run_sequential;
    use stats_core::speculation::run_speculative;

    #[test]
    fn tracker_follows_the_body() {
        let w = BodyTrack::paper();
        let inputs = w.generate_inputs(120, 1);
        let run = run_sequential(&w, &inputs, 42);
        let truths: Vec<Vec<f64>> = inputs.iter().map(|f| f.truth.clone()).collect();
        // Skip warm-up frames.
        let err = mean_euclidean(&run.outputs[20..], &truths[20..]);
        assert!(err < 0.6, "tracking error too high: {err}");
    }

    #[test]
    fn accuracy_beats_dead_reckoning() {
        // The tracked estimate must be closer to the truth than a constant
        // guess at the origin (sanity check that tracking does something).
        let w = BodyTrack::paper();
        let inputs = w.generate_inputs(150, 3);
        let run = run_sequential(&w, &inputs, 7);
        let truths: Vec<Vec<f64>> = inputs.iter().map(|f| f.truth.clone()).collect();
        let zeros: Vec<Vec<f64>> = inputs.iter().map(|f| vec![0.0; f.truth.len()]).collect();
        let tracked = mean_euclidean(&run.outputs[20..], &truths[20..]);
        let constant = mean_euclidean(&zeros[20..], &truths[20..]);
        assert!(
            tracked < constant,
            "tracked {tracked} vs constant {constant}"
        );
    }

    #[test]
    fn short_memory_commits_at_tuned_config() {
        let w = BodyTrack::paper();
        let inputs = w.generate_inputs(600, 2);
        let cfg = w.tuned_config(28);
        let out = run_speculative(&w, &inputs, cfg, 11);
        assert!(
            out.commit_rate() >= 0.8,
            "tuned config should mostly commit: {}",
            out.commit_rate()
        );
    }

    #[test]
    fn deep_chunking_aborts_more() {
        let w = BodyTrack::paper();
        let inputs = w.generate_inputs(600, 2);
        let shallow = run_speculative(&w, &inputs, Config::stats_only(6, 3, 4), 13);
        let deep = run_speculative(&w, &inputs, Config::stats_only(50, 3, 4), 13);
        assert!(
            deep.aborts() >= shallow.aborts(),
            "more chunks should not reduce aborts: {} vs {}",
            deep.aborts(),
            shallow.aborts()
        );
    }

    #[test]
    fn per_frame_cost_is_native_scale() {
        let w = BodyTrack::paper();
        let inputs = w.generate_inputs(16, 1);
        let run = run_sequential(&w, &inputs, 1);
        // flops per steady-state frame = LAYERS * (N*D*6 + N*4); frame 0
        // additionally pays the re-initialization reseed, and any frame
        // where the cloud diffuses past the re-detect threshold does too —
        // which frames those are depends on the run seed, so check the
        // steady-state cost on the cheapest later frame.
        let flops = (LAYERS * (PARTICLES * 16 * 6 + PARTICLES * 4)) as u64;
        let steady = run.per_input_costs[1..]
            .iter()
            .map(|c| c.work)
            .min()
            .unwrap();
        assert_eq!(steady, flops * NATIVE_SCALE);
        assert!(run.per_input_costs[0].work > flops * NATIVE_SCALE);
    }

    #[test]
    fn quality_score_in_range() {
        let w = BodyTrack::paper();
        let inputs = w.generate_inputs(100, 5);
        let run = run_sequential(&w, &inputs, 9);
        let q = w.quality(&inputs, &run.outputs);
        assert!(q > 0.0 && q <= 1.0);
    }
}
