//! `facetrack`: particle filter tracking one face through a video (§IV-C:
//! 600 frames of "a person moving in front of a camera", scored by "the
//! average Euclidean distance between the boxes containing the detected
//! faces").
//!
//! The pose is a 2-D box center with occasional occlusions. Occlusions
//! make the acceptable-state space narrow and jumpy, so speculation beyond
//! a handful of chunks starts aborting — the paper's autotuner "only
//! creates 7 parallel chunks to avoid aborting the computation", making
//! mispeculation facetrack's dominant loss (Fig. 10).

use crate::particle::ParticleCloud;
use crate::suite::{ExecMode, Workload};
use crate::synth::{Frame, ImageStreamConfig};
use stats_core::rng::StatsRng;
use stats_core::{Config, InnerParallelism, SnapshotStrategy, StateDependence, UpdateCost};
use stats_uarch::StreamProfile;

/// Particles simulated (state is 8 KB at native scale per Table I).
const PARTICLES: usize = 96;
/// Annealing layers.
const LAYERS: usize = 2;
/// Native-scale multiplier.
const NATIVE_SCALE: u64 = 2_600;

/// The facetrack workload.
#[derive(Debug, Clone)]
pub struct FaceTrack {
    stream: ImageStreamConfig,
    /// Acceptance tolerance on the box-center distance.
    tolerance: f64,
}

impl FaceTrack {
    /// The paper-scale configuration.
    pub fn paper() -> Self {
        FaceTrack {
            stream: ImageStreamConfig::face(),
            tolerance: 0.12,
        }
    }
}

impl StateDependence for FaceTrack {
    type State = ParticleCloud;
    type Input = Frame;
    type Output = Vec<f64>;

    fn fresh_state(&self) -> ParticleCloud {
        ParticleCloud::fresh(PARTICLES, 2, 0xFACE)
    }

    fn update(
        &self,
        state: &mut ParticleCloud,
        input: &Frame,
        rng: &mut StatsRng,
    ) -> (Vec<f64>, UpdateCost) {
        let mut extra_work = 0u64;
        // A diffuse cloud (fresh start or lost track) re-detects the face.
        // Under clutter, the detector sometimes locks onto the distractor
        // — the nondeterministic failure mode that makes deep speculation
        // abort (§V-B: the autotuner stops at 7 chunks "to avoid aborting
        // the computation").
        if state.spread() > 0.45 {
            let target = if rng.chance(0.35 * input.clutter) {
                &input.distractor
            } else {
                &input.observation
            };
            extra_work += state.step(target, 0.08, 0.4, 1, rng) * NATIVE_SCALE;
        }
        // Sticky data association: once the cloud sits closer to the
        // distractor it keeps tracking it, escaping only occasionally.
        let est = state.estimate();
        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let captured =
            d(&est, &input.distractor) < 0.8 * d(&est, &input.observation) && !rng.chance(0.22);
        let target: &[f64] = if captured {
            &input.distractor
        } else {
            &input.observation
        };
        // Occluded frames carry almost no information: widen the
        // observation model so the cloud coasts on its motion prior.
        let obs_sigma = if input.occluded {
            1.2
        } else {
            0.05 * (1.0 + 2.0 * input.clutter)
        };
        let flops = state.step(target, obs_sigma, 0.1, LAYERS, rng);
        let estimate = state.estimate();
        let work = flops * NATIVE_SCALE + extra_work;
        (estimate, UpdateCost::new(work, work * 2))
    }

    fn states_match(&self, a: &ParticleCloud, b: &ParticleCloud) -> bool {
        a.estimates_match(b, self.tolerance)
    }

    fn state_bytes(&self) -> usize {
        8_000 // Table I
    }

    fn snapshot_state(
        &self,
        state: &mut ParticleCloud,
        strategy: SnapshotStrategy,
    ) -> ParticleCloud {
        match strategy {
            SnapshotStrategy::DeepClone => state.clone(),
            SnapshotStrategy::CopyOnWrite => state.fork(),
        }
    }

    fn take_materialized(&self, state: &mut ParticleCloud) -> u64 {
        state.take_materialized(self.state_bytes() as u64)
    }

    fn snapshot_copy_bytes(&self, strategy: SnapshotStrategy) -> u64 {
        match strategy {
            // The whole 8 KB state is the cloud; a COW snapshot copies
            // nothing up front.
            SnapshotStrategy::DeepClone => self.state_bytes() as u64,
            SnapshotStrategy::CopyOnWrite => 0,
        }
    }

    fn outside_region_work(&self) -> (u64, u64) {
        (60_000_000, 30_000_000)
    }

    fn sync_ops_per_update(&self) -> u64 {
        2
    }
}

impl Workload for FaceTrack {
    fn name(&self) -> &'static str {
        "facetrack"
    }

    fn inner_parallelism(&self) -> InnerParallelism {
        // OpenCV-based per-frame parallelism is limited.
        InnerParallelism::amdahl(0.5, 8)
    }

    fn tuned_config(&self, cores: usize) -> Config {
        // The paper: "STATS only creates 7 parallel chunks to avoid
        // aborting the computation" (§V-B).
        let _ = cores;
        Config {
            chunks: 7,
            lookback: 4,
            extra_states: 1,
            combine_inner_tlp: true,
            snapshot: SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        }
    }

    fn native_input_count(&self) -> usize {
        600
    }

    fn generate_inputs(&self, n: usize, seed: u64) -> Vec<Frame> {
        self.stream.generate(n, seed)
    }

    fn quality(&self, inputs: &[Frame], outputs: &[Vec<f64>]) -> f64 {
        let truths: Vec<Vec<f64>> = inputs.iter().map(|f| f.truth.clone()).collect();
        let err = crate::quality::mean_euclidean(outputs, &truths);
        crate::quality::error_to_quality((err - 0.05).max(0.0) * 12.0)
    }

    fn uarch_profiles(&self, mode: ExecMode) -> Vec<StreamProfile> {
        // Table II: facetrack loses data locality under STATS ("the STATS
        // execution model runs in parallel the computation of input chunks
        // breaking both the temporal and spatial locality").
        let seq_accesses = 1_000_000_000u64;
        let base = StreamProfile {
            region_base: 0x6000_0000,
            working_set: 6 * 1024 * 1024,
            accesses: seq_accesses,
            streaming: 0.55,
            hot: 0.35,
            branches: seq_accesses / 8,
            irregular_branches: 0.1,
            irregular_bias: 0.5,
        };
        match mode {
            ExecMode::Sequential => vec![base],
            ExecMode::OriginalTlp => (0..8)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x100_0000,
                    accesses: seq_accesses * 105 / (100 * 8),
                    branches: seq_accesses * 105 / (100 * 8 * 8),
                    ..base
                })
                .collect(),
            ExecMode::StatsTlp => (0..7)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x100_0000,
                    accesses: seq_accesses * 125 / (100 * 7),
                    branches: seq_accesses * 125 / (100 * 7 * 8),
                    // Locality loss: less streaming, more random.
                    streaming: 0.35,
                    hot: 0.3,
                    ..base
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::mean_euclidean;
    use stats_core::runtime::sequential::run_sequential;
    use stats_core::speculation::run_speculative;

    #[test]
    fn tracks_the_face() {
        let w = FaceTrack::paper();
        let inputs = w.generate_inputs(200, 1);
        let run = run_sequential(&w, &inputs, 42);
        let truths: Vec<Vec<f64>> = inputs.iter().map(|f| f.truth.clone()).collect();
        let err = mean_euclidean(&run.outputs[30..], &truths[30..]);
        assert!(err < 0.35, "tracking error {err}");
    }

    #[test]
    fn tuned_config_mostly_commits() {
        let w = FaceTrack::paper();
        let inputs = w.generate_inputs(600, 2);
        let out = run_speculative(&w, &inputs, w.tuned_config(28), 3);
        assert!(out.commit_rate() >= 0.65, "rate {}", out.commit_rate());
    }

    #[test]
    fn aggressive_chunking_aborts() {
        // The reason the autotuner stops at 7 chunks: 28 chunks with a
        // short lookback mispeculate noticeably.
        let w = FaceTrack::paper();
        let inputs = w.generate_inputs(600, 2);
        let aggressive = run_speculative(&w, &inputs, Config::stats_only(28, 4, 1), 3);
        let tuned = run_speculative(&w, &inputs, w.tuned_config(28), 3);
        assert!(
            aggressive.aborts() > tuned.aborts(),
            "28 chunks: {} aborts vs 7 chunks: {}",
            aggressive.aborts(),
            tuned.aborts()
        );
    }

    #[test]
    fn occlusions_do_not_derail_tracking() {
        let w = FaceTrack::paper();
        let inputs = w.generate_inputs(400, 9);
        assert!(inputs.iter().any(|f| f.occluded), "stream needs occlusions");
        let run = run_sequential(&w, &inputs, 5);
        let truths: Vec<Vec<f64>> = inputs.iter().map(|f| f.truth.clone()).collect();
        let err = mean_euclidean(&run.outputs[30..], &truths[30..]);
        assert!(err < 0.5, "occlusions broke tracking: {err}");
    }

    #[test]
    fn captured_tracks_eventually_escape() {
        // The sticky data association has a per-frame escape chance, so a
        // long sequential run is never permanently lost to the distractor.
        let w = FaceTrack::paper();
        let inputs = w.generate_inputs(600, 21);
        let run = run_sequential(&w, &inputs, 17);
        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        // In the last quarter of the stream, the estimate is closer to the
        // face than the distractor for a clear majority of frames.
        let tail = 450..600;
        let on_face = tail
            .clone()
            .filter(|&i| {
                d(&run.outputs[i], &inputs[i].truth) < d(&run.outputs[i], &inputs[i].distractor)
            })
            .count();
        assert!(on_face > 100, "only {on_face}/150 tail frames on the face");
    }

    #[test]
    fn state_size_matches_table1() {
        assert_eq!(FaceTrack::paper().state_bytes(), 8_000);
    }
}
