//! `streamclassifier`: streaming prototype classification (analog of the
//! benchmark from \[50\] used by the paper).
//!
//! An online nearest-prototype classifier over a drifting labeled stream:
//! the state is one prototype vector per class, updated by exponential
//! smoothing toward misclassified points. The prototypes form the state
//! dependence; their memory is short because drift makes old data
//! irrelevant. Like `streamcluster`, long-lived prototypes accumulate
//! confidence and re-examine more candidates per batch, so the chunked
//! STATS execution does slightly *less* total work.

use crate::suite::{ExecMode, Workload};
use crate::synth::{LabeledBatch, PointStreamConfig};
use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;
use stats_core::{Config, CowBox, InnerParallelism, SnapshotStrategy, StateDependence, UpdateCost};
use stats_uarch::StreamProfile;

/// The classifier state: one prototype per class plus confidence mass.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Prototypes {
    /// `protos[class]` is the class's prototype vector. Boxed for O(1)
    /// chunk-boundary snapshots; faults on the first post-fork update.
    pub protos: CowBox<Vec<Vec<f64>>>,
    /// Per-class confidence (observation mass), snapshot independently of
    /// the prototypes so a confidence-only frame copies fewer bytes.
    pub confidence: CowBox<Vec<f64>>,
}

impl Prototypes {
    fn init(classes: usize, dims: usize) -> Self {
        Prototypes {
            protos: CowBox::new(vec![vec![0.0; dims]; classes]),
            confidence: CowBox::new(vec![0.0; classes]),
        }
    }

    /// Mean prototype distance to another state.
    pub fn distance(&self, other: &Prototypes) -> f64 {
        if self.protos.len() != other.protos.len() {
            return f64::INFINITY;
        }
        let total: f64 = self
            .protos
            .iter()
            .zip(other.protos.iter())
            .map(|(a, b)| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum();
        total / self.protos.len() as f64
    }
}

/// The streamclassifier workload.
#[derive(Debug, Clone)]
pub struct StreamClassifier {
    stream: PointStreamConfig,
    /// Base learning rate toward misclassified points.
    learning_rate: f64,
    /// Confidence decay per batch.
    confidence_decay: f64,
    /// Acceptance tolerance on mean prototype distance.
    tolerance: f64,
}

impl StreamClassifier {
    /// The paper-scale configuration (inputs from \[50\]).
    pub fn paper() -> Self {
        StreamClassifier {
            stream: PointStreamConfig::classifier_stream(),
            learning_rate: 0.15,
            confidence_decay: 0.97,
            tolerance: 0.4,
        }
    }
}

impl StateDependence for StreamClassifier {
    type State = Prototypes;
    type Input = LabeledBatch;
    type Output = f64;

    fn fresh_state(&self) -> Prototypes {
        Prototypes::init(self.stream.clusters, self.stream.dims)
    }

    fn update(
        &self,
        state: &mut Prototypes,
        input: &LabeledBatch,
        rng: &mut StatsRng,
    ) -> (f64, UpdateCost) {
        // One pass over the batch plus confidence-driven re-examination:
        // confident classifiers double-check borderline points against
        // more candidates, so long-lived (sequential) prototypes do extra
        // work that freshly seeded chunk prototypes skip.
        let mean_conf = state.confidence.iter().sum::<f64>() / state.confidence.len() as f64;
        let mut dist_evals = 0u64;
        let mut correct = 0usize;
        let process = |state: &mut Prototypes,
                       rng: &mut StatsRng,
                       count_correct: &mut usize,
                       take: usize|
         -> u64 {
            let mut evals = 0u64;
            *count_correct = 0;
            for (p, &label) in input.points.iter().zip(&input.labels).take(take) {
                let predicted = state
                    .protos
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        (
                            i,
                            c.iter().zip(p).map(|(x, y)| (x - y) * (x - y)).sum::<f64>(),
                        )
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
                    .map(|(i, _)| i)
                    .expect("at least one class");
                evals += state.protos.len() as u64;
                if predicted == label {
                    *count_correct += 1;
                    state.confidence[label] += 0.5;
                } else {
                    // Move the true prototype toward the point, with a
                    // randomly jittered learning rate (nondeterminism).
                    let lr = self.learning_rate * (1.0 + rng.noise(0.3));
                    for (x, y) in state.protos[label].iter_mut().zip(p) {
                        *x += lr * (y - *x);
                    }
                }
            }
            evals
        };
        let n_points = input.points.len();
        dist_evals += process(state, rng, &mut correct, n_points);
        let mut extra = (mean_conf / 200.0).min(3.0);
        let mut scratch = 0usize;
        while extra >= 1.0 {
            dist_evals += process(state, rng, &mut scratch, n_points);
            extra -= 1.0;
        }
        let take = (n_points as f64 * extra) as usize;
        if take > 0 {
            dist_evals += process(state, rng, &mut scratch, take);
        }
        for c in state.confidence.iter_mut() {
            *c *= self.confidence_decay;
        }
        let accuracy = correct as f64 / input.points.len() as f64;
        // Native cost scaled up from the synthetic batch (x192).
        let work = dist_evals * self.stream.dims as u64 * 3 * 192;
        (accuracy, UpdateCost::new(work, work * 2))
    }

    fn states_match(&self, a: &Prototypes, b: &Prototypes) -> bool {
        a.distance(b) <= self.tolerance
    }

    fn state_bytes(&self) -> usize {
        104 // Table I
    }

    fn snapshot_state(&self, state: &mut Prototypes, strategy: SnapshotStrategy) -> Prototypes {
        match strategy {
            SnapshotStrategy::DeepClone => state.clone(),
            SnapshotStrategy::CopyOnWrite => Prototypes {
                protos: state.protos.fork(),
                confidence: state.confidence.fork(),
            },
        }
    }

    fn take_materialized(&self, state: &mut Prototypes) -> u64 {
        // Pro-rate the modeled 104 bytes over the two components by their
        // actual in-memory sizes.
        let classes = state.protos.len() as u64;
        let dims = state.protos.first().map_or(0, Vec::len) as u64;
        let proto_actual = classes * dims * 8;
        let conf_actual = classes * 8;
        let total = (proto_actual + conf_actual).max(1);
        let modeled = self.state_bytes() as u64;
        state.protos.take_faults() as u64 * (modeled * proto_actual / total)
            + state.confidence.take_faults() as u64 * (modeled * conf_actual / total)
    }

    fn snapshot_copy_bytes(&self, strategy: SnapshotStrategy) -> u64 {
        match strategy {
            SnapshotStrategy::DeepClone => self.state_bytes() as u64,
            // Both components share structure; copies happen only on the
            // first post-fork write to each.
            SnapshotStrategy::CopyOnWrite => 0,
        }
    }

    fn outside_region_work(&self) -> (u64, u64) {
        (180_000_000, 90_000_000)
    }
}

impl Workload for StreamClassifier {
    fn name(&self) -> &'static str {
        "streamclassifier"
    }

    fn inner_parallelism(&self) -> InnerParallelism {
        InnerParallelism::amdahl(0.65, usize::MAX)
    }

    fn tuned_config(&self, cores: usize) -> Config {
        Config {
            chunks: cores, // Table I: 28 threads
            lookback: 4,
            extra_states: 1,
            combine_inner_tlp: true,
            snapshot: SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        }
    }

    fn native_input_count(&self) -> usize {
        2_800
    }

    fn generate_inputs(&self, n: usize, seed: u64) -> Vec<LabeledBatch> {
        self.stream.generate_labeled(n, seed)
    }

    fn quality(&self, _inputs: &[LabeledBatch], outputs: &[f64]) -> f64 {
        // Mean accuracy after warm-up IS the quality score.
        if outputs.len() < 20 {
            return 0.0;
        }
        let tail = &outputs[outputs.len() / 4..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    fn uarch_profiles(&self, mode: ExecMode) -> Vec<StreamProfile> {
        // Table II row 3: enormous streaming footprint, ~97% L2/LLC miss
        // rates (pure streaming), slightly fewer accesses under STATS.
        let seq_accesses = 3_100_000_000u64;
        let base = StreamProfile {
            region_base: 0x8000_0000,
            working_set: 192 * 1024 * 1024,
            accesses: seq_accesses,
            streaming: 0.93,
            hot: 0.04,
            branches: seq_accesses / 9,
            irregular_branches: 0.35,
            irregular_bias: 0.5,
        };
        match mode {
            ExecMode::Sequential => vec![base],
            ExecMode::OriginalTlp => (0..28)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x800_0000,
                    accesses: seq_accesses * 105 / (100 * 28),
                    branches: seq_accesses * 105 / (100 * 28 * 9),
                    ..base
                })
                .collect(),
            ExecMode::StatsTlp => (0..28)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x800_0000,
                    accesses: seq_accesses * 88 / (100 * 28),
                    branches: seq_accesses * 88 / (100 * 28 * 9),
                    ..base
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats_core::runtime::sequential::run_sequential;
    use stats_core::speculation::run_speculative;

    #[test]
    fn classifier_learns_the_stream() {
        let w = StreamClassifier::paper();
        let inputs = w.generate_inputs(300, 1);
        let run = run_sequential(&w, &inputs, 42);
        let early = run.outputs[..30].iter().sum::<f64>() / 30.0;
        let late = run.outputs[250..].iter().sum::<f64>() / 50.0;
        assert!(
            late > early && late > 0.5,
            "no learning: early {early}, late {late}"
        );
    }

    #[test]
    fn short_memory_commits() {
        let w = StreamClassifier::paper();
        let inputs = w.generate_inputs(560, 2);
        let out = run_speculative(&w, &inputs, Config::stats_only(28, 6, 1), 5);
        assert!(out.commit_rate() > 0.8, "rate {}", out.commit_rate());
    }

    #[test]
    fn prototype_distance_detects_divergence() {
        let w = StreamClassifier::paper();
        let a = w.fresh_state();
        let mut b = w.fresh_state();
        assert_eq!(a.distance(&b), 0.0);
        b.protos[0][0] = 10.0;
        assert!(a.distance(&b) > 1.0);
        let c = Prototypes::init(3, 2);
        assert_eq!(a.distance(&c), f64::INFINITY);
    }

    #[test]
    fn quality_tracks_accuracy() {
        let w = StreamClassifier::paper();
        let inputs = w.generate_inputs(400, 3);
        let run = run_sequential(&w, &inputs, 1);
        let q = w.quality(&inputs, &run.outputs);
        assert!(q > 0.5 && q <= 1.0, "quality {q}");
    }

    #[test]
    fn confidence_inflates_sequential_work() {
        let w = StreamClassifier::paper();
        let inputs = w.generate_inputs(560, 4);
        let seq = run_sequential(&w, &inputs, 7);
        let spec = run_speculative(&w, &inputs, Config::stats_only(28, 4, 1), 7);
        assert!(
            spec.realized_work() <= seq.cost.work,
            "chunked runs should not exceed sequential refinement work: {} vs {}",
            spec.realized_work(),
            seq.cost.work
        );
    }
}
