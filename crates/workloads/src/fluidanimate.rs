//! `fluidanimate`: the benchmark the paper *excluded* — kept here as a
//! negative control.
//!
//! §IV-C: "We did not consider fluidanimate because the STATS
//! parallelization had no significant impact in the program's
//! performance." The reason is structural: a fluid simulation's state
//! (the velocity/density field) carries *long* memory — momentum diffuses
//! slowly, so the field after frame `i` genuinely depends on forces from
//! hundreds of frames back. An alternative producer that replays only a
//! few frames from a fresh state cannot reconstruct it, every speculation
//! aborts, and STATS degenerates to serial execution plus overhead.
//!
//! This module exists to demonstrate that the workbench's speculation
//! machinery *fails honestly* where the paper says it should: the tests
//! assert near-zero commit rates and no speedup.

use crate::suite::{ExecMode, Workload};
use serde::{Deserialize, Serialize};
use stats_core::rng::StatsRng;
use stats_core::{Config, CowBox, InnerParallelism, SnapshotStrategy, StateDependence, UpdateCost};
use stats_uarch::StreamProfile;

/// Coarse cells in the simulated velocity field.
const CELLS: usize = 64;
/// Native-scale multiplier per frame.
const NATIVE_SCALE: u64 = 90_000;

/// One frame's external forcing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Forcing {
    /// Cell the force is applied to.
    pub cell: usize,
    /// Signed force magnitude.
    pub force: f64,
}

/// The fluid state: a coarse velocity field with momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidState {
    /// Per-cell velocity. Boxed for O(1) snapshots, though the in-place
    /// force application faults the whole field right after every fork —
    /// COW buys the negative control nothing, by design.
    pub velocity: CowBox<Vec<f64>>,
}

/// The fluidanimate workload (negative control).
#[derive(Debug, Clone)]
pub struct FluidAnimate {
    /// Per-frame momentum retention: close to 1 = long memory.
    retention: f64,
    /// Acceptance tolerance on the field distance.
    tolerance: f64,
}

impl FluidAnimate {
    /// The configuration mirroring the excluded PARSEC benchmark.
    pub fn paper() -> Self {
        FluidAnimate {
            retention: 0.998,
            tolerance: 0.05,
        }
    }

    fn field_distance(a: &FluidState, b: &FluidState) -> f64 {
        a.velocity
            .iter()
            .zip(b.velocity.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

impl StateDependence for FluidAnimate {
    type State = FluidState;
    type Input = Forcing;
    type Output = f64;

    fn fresh_state(&self) -> FluidState {
        FluidState {
            velocity: CowBox::new(vec![0.0; CELLS]),
        }
    }

    fn update(
        &self,
        state: &mut FluidState,
        input: &Forcing,
        rng: &mut StatsRng,
    ) -> (f64, UpdateCost) {
        // Apply the force, then diffuse with high momentum retention:
        // the field remembers old forces almost indefinitely.
        let cell = input.cell % CELLS;
        state.velocity[cell] += input.force + rng.noise(0.001);
        let next: Vec<f64> = (0..CELLS)
            .map(|i| {
                let left = state.velocity[(i + CELLS - 1) % CELLS];
                let right = state.velocity[(i + 1) % CELLS];
                self.retention * (0.9 * state.velocity[i] + 0.05 * (left + right))
            })
            .collect();
        state.velocity.set(next);
        let kinetic: f64 = state.velocity.iter().map(|v| v * v).sum();
        let work = CELLS as u64 * 8 * NATIVE_SCALE / 64;
        (kinetic, UpdateCost::new(work, work * 2))
    }

    fn states_match(&self, a: &FluidState, b: &FluidState) -> bool {
        Self::field_distance(a, b) <= self.tolerance
    }

    fn state_bytes(&self) -> usize {
        CELLS * 8
    }

    fn snapshot_state(&self, state: &mut FluidState, strategy: SnapshotStrategy) -> FluidState {
        match strategy {
            SnapshotStrategy::DeepClone => state.clone(),
            SnapshotStrategy::CopyOnWrite => FluidState {
                velocity: state.velocity.fork(),
            },
        }
    }

    fn take_materialized(&self, state: &mut FluidState) -> u64 {
        state.velocity.take_faults() as u64 * self.state_bytes() as u64
    }

    fn snapshot_copy_bytes(&self, strategy: SnapshotStrategy) -> u64 {
        match strategy {
            SnapshotStrategy::DeepClone => self.state_bytes() as u64,
            // Deferred, not avoided: the next force application faults the
            // whole field, so COW merely moves the copy off the boundary.
            SnapshotStrategy::CopyOnWrite => 0,
        }
    }
}

impl Workload for FluidAnimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn inner_parallelism(&self) -> InnerParallelism {
        InnerParallelism::amdahl(0.8, usize::MAX)
    }

    fn tuned_config(&self, _cores: usize) -> Config {
        // There is no useful STATS configuration — exactly why the paper
        // excluded it. The least-bad option is not to speculate.
        Config::original_only()
    }

    fn native_input_count(&self) -> usize {
        1_200
    }

    fn generate_inputs(&self, n: usize, seed: u64) -> Vec<Forcing> {
        let mut rng = StatsRng::from_seed_value(seed ^ 0xF1013);
        (0..n)
            .map(|_| Forcing {
                cell: rng.gen_range(0..CELLS),
                force: rng.noise(0.2),
            })
            .collect()
    }

    fn quality(&self, _inputs: &[Forcing], outputs: &[f64]) -> f64 {
        // Energy-conservation plausibility: kinetic energy must stay
        // bounded.
        let max = outputs.iter().fold(0.0f64, |a, b| a.max(*b));
        crate::quality::error_to_quality((max - 5.0).max(0.0))
    }

    fn uarch_profiles(&self, mode: ExecMode) -> Vec<StreamProfile> {
        let accesses = 800_000_000u64;
        let base = StreamProfile {
            region_base: 0xE000_0000,
            working_set: 48 * 1024 * 1024,
            accesses,
            streaming: 0.7,
            hot: 0.2,
            branches: accesses / 10,
            irregular_branches: 0.05,
            irregular_bias: 0.5,
        };
        match mode {
            ExecMode::Sequential => vec![base],
            _ => (0..28)
                .map(|i| StreamProfile {
                    region_base: base.region_base + i * 0x100_0000,
                    accesses: accesses / 28,
                    branches: accesses / (28 * 10),
                    ..base
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats_core::runtime::sequential::run_sequential;
    use stats_core::speculation::run_speculative;

    #[test]
    fn fluid_state_has_long_memory() {
        // A fresh field replaying the last k forces is nowhere near the
        // full field: the short-memory property does NOT hold.
        let w = FluidAnimate::paper();
        let inputs = w.generate_inputs(400, 1);
        let full = run_sequential(&w, &inputs, 42);
        let mut short = w.fresh_state();
        let mut rng = stats_core::rng::StatsRng::from_seed_value(7);
        for inp in &inputs[400 - 16..] {
            w.update(&mut short, inp, &mut rng);
        }
        assert!(
            !w.states_match(&full.final_state, &short),
            "fluidanimate must violate short memory"
        );
    }

    #[test]
    fn speculation_aborts_everywhere() {
        let w = FluidAnimate::paper();
        let inputs = w.generate_inputs(280, 2);
        for (chunks, k) in [(4usize, 8usize), (14, 16), (28, 8)] {
            let out = run_speculative(&w, &inputs, Config::stats_only(chunks, k, 2), 3);
            assert!(
                out.commit_rate() < 0.2,
                "{chunks} chunks / k={k}: fluidanimate committed {:.0}%",
                out.commit_rate() * 100.0
            );
        }
    }

    #[test]
    fn stats_brings_no_speedup() {
        // The paper's exclusion criterion, reproduced: STATS parallelizes
        // nothing because every chunk serializes behind its re-execution.
        use stats_core::runtime::simulated::SimulatedRuntime;
        let w = FluidAnimate::paper();
        let inputs = w.generate_inputs(280, 2);
        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run(
                "fluidanimate",
                &w,
                &inputs,
                Config::stats_only(14, 8, 1),
                InnerParallelism::none(),
                9,
            )
            .unwrap();
        assert!(
            report.speedup() < 1.5,
            "no significant impact expected, got {:.2}x",
            report.speedup()
        );
    }

    #[test]
    fn outputs_remain_correct_despite_aborting() {
        // Semantics preservation holds even in the all-abort regime.
        let w = FluidAnimate::paper();
        let inputs = w.generate_inputs(120, 4);
        let out = run_speculative(&w, &inputs, Config::stats_only(6, 8, 1), 11);
        assert_eq!(out.outputs.len(), 120);
        // Kinetic energy stays bounded (the field is diffusive).
        assert!(out.outputs.iter().all(|e| e.is_finite() && *e < 50.0));
    }

    #[test]
    fn sequential_field_is_stable() {
        let w = FluidAnimate::paper();
        let inputs = w.generate_inputs(600, 6);
        let run = run_sequential(&w, &inputs, 13);
        let q = w.quality(&inputs, &run.outputs);
        assert!(q > 0.5, "field blew up: quality {q}");
    }
}
