//! Property tests: every JSON surface stays valid for arbitrary inputs,
//! and counter aggregation is exact for arbitrary recording schedules.

use proptest::prelude::*;
use stats_telemetry::json::{escape, validate, JsonObject};
use stats_telemetry::{Counter, Event, TelemetrySink, COUNTERS};

/// Characters that stress JSON escaping, mixed with arbitrary code points.
const HOSTILE: &[char] = &[
    '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{1f}', '\u{7f}', 'λ', '中', '😀', '/', '{',
    '}', '[', ']', ':', ',', ' ', '0',
];

/// Arbitrary strings biased toward escaping-hostile characters.
fn hostile_string() -> impl Strategy<Value = String> {
    proptest::collection::vec((any::<bool>(), any::<u32>()), 0..40).prop_map(|chars| {
        chars
            .into_iter()
            .map(|(pick_hostile, raw)| {
                if pick_hostile {
                    HOSTILE[raw as usize % HOSTILE.len()]
                } else {
                    char::from_u32(raw % 0x11_0000).unwrap_or('\u{fffd}')
                }
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn escaped_strings_always_embed_validly(s in hostile_string()) {
        let line = format!("{{\"k\":\"{}\"}}", escape(&s));
        prop_assert!(validate(&line).is_ok(), "escape broke JSON for {:?}", s);
    }

    #[test]
    fn object_builder_output_always_validates(
        s in hostile_string(),
        n in any::<u64>(),
        f in any::<f64>(),
        b in any::<bool>(),
    ) {
        let mut o = JsonObject::new();
        o.str("s", &s).u64("n", n).f64("f", f).bool("b", b);
        let line = o.finish();
        prop_assert!(validate(&line).is_ok(), "builder broke JSON: {}", line);
    }

    #[test]
    fn event_lines_always_validate(
        benchmark in hostile_string(),
        seq in any::<u64>(),
        chunk in any::<usize>(),
    ) {
        for e in [
            Event::RunStarted {
                benchmark: benchmark.clone(),
                runtime: "threaded",
                inputs: chunk,
                chunks: 3,
                lookback: 1,
                extra_states: 1,
                seed: seq,
            },
            Event::ChunkStarted { chunk, len: chunk },
            Event::Diagnostic { message: benchmark.clone() },
        ] {
            let line = e.to_json_line(seq);
            prop_assert!(validate(&line).is_ok(), "event broke JSON: {}", line);
        }
    }

    #[test]
    fn snapshot_totals_match_recording_schedule(
        ops in proptest::collection::vec((0usize..8, 0usize..COUNTERS.len(), 0u64..1_000), 0..200),
        workers in 1usize..8,
    ) {
        let sink = TelemetrySink::new(workers);
        let mut expected = [0u64; COUNTERS.len()];
        for &(worker, counter, n) in &ops {
            sink.add(worker, COUNTERS[counter], n);
            expected[counter] += n;
        }
        let snap = sink.snapshot();
        prop_assert!(snap.consistent);
        for (i, &counter) in COUNTERS.iter().enumerate() {
            prop_assert_eq!(snap.get(counter), expected[i]);
        }
        prop_assert!(validate(&snap.to_json()).is_ok());
    }

    #[test]
    fn per_worker_rows_sum_to_totals(
        ops in proptest::collection::vec((0usize..6, 0u64..100), 0..100),
    ) {
        let sink = TelemetrySink::new(3);
        for &(worker, n) in &ops {
            sink.add(worker, Counter::StateComparisons, n);
        }
        let snap = sink.snapshot();
        let per_worker_sum: u64 = (0..snap.workers())
            .map(|w| snap.worker(w, Counter::StateComparisons))
            .sum();
        prop_assert_eq!(per_worker_sum, snap.get(Counter::StateComparisons));
    }
}
