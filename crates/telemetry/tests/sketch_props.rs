//! Property tests for the streaming quantile/histogram sketch, using
//! the vendored `proptest`.
//!
//! The sketch backs the profiler's per-category latency distributions,
//! so its guarantees are pinned generatively:
//!
//! * merging is exact and associative (bucket counts add), so sharded
//!   sketches can be combined in any order;
//! * every reported quantile is within the configured relative error of
//!   the true order statistic, whatever the insertion order;
//! * quantiles are monotone in `q`;
//! * counts/min/max are exact under splits and merges.

use proptest::prelude::*;
use stats_telemetry::sketch::QuantileSketch;

fn sketch_of(values: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.insert(v);
    }
    s
}

/// True order statistic matching the sketch's rank convention.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * (sorted.len() - 1) as f64).floor() as usize).min(sorted.len() - 1);
    sorted[rank]
}

proptest! {
    /// Merge is associative and independent of insertion order: any
    /// 3-way split of a stream, merged in either association order,
    /// equals the sketch of the whole stream.
    #[test]
    fn merge_is_associative(
        mut values in proptest::collection::vec(0u64..1_000_000_000, 3..200),
        cut_a in 0usize..200,
        cut_b in 0usize..200,
        shuffle_seed in 0u64..1000,
    ) {
        // Deterministic pseudo-shuffle so insertion order varies.
        let n = values.len();
        for i in 0..n {
            let j = ((shuffle_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            values.swap(i, j);
        }
        let a_end = cut_a % n;
        let b_end = a_end + (cut_b % (n - a_end + 1));
        let (a, b, c) = (
            sketch_of(&values[..a_end]),
            sketch_of(&values[a_end..b_end]),
            sketch_of(&values[b_end..]),
        );
        let whole = sketch_of(&values);

        // (a ⊔ b) ⊔ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(left.count(), n as u64);
    }

    /// Every quantile is within the relative-error target of the true
    /// order statistic (plus one unit of integer rounding), for any
    /// value distribution and insertion order.
    #[test]
    fn rank_error_bound_holds(
        values in proptest::collection::vec(0u64..10_000_000, 1..300),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let s = sketch_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in qs {
            let truth = true_quantile(&sorted, q);
            let got = s.quantile(q).unwrap();
            if truth == 0 {
                prop_assert_eq!(got, 0, "q={}: zero order statistic must be exact", q);
            } else {
                let err = (got as f64 - truth as f64).abs() / truth as f64;
                prop_assert!(
                    err <= s.alpha() + 1.0 / truth as f64 + 1e-9,
                    "q={}: got {}, want ~{}, relative error {}",
                    q, got, truth, err
                );
            }
        }
    }

    /// Quantiles never decrease as q increases, whatever the stream.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..300),
    ) {
        let s = sketch_of(&values);
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q).unwrap();
            prop_assert!(
                v >= prev,
                "quantile({}) = {} < quantile of smaller q = {}",
                q, v, prev
            );
            prev = v;
        }
        // Extremes stay inside the observed range.
        prop_assert!(s.quantile(0.0).unwrap() >= s.min().unwrap());
        prop_assert!(s.quantile(1.0).unwrap() <= s.max().unwrap());
    }

    /// Counts, min, and max are exact across arbitrary splits/merges.
    #[test]
    fn exact_statistics_survive_merges(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..200),
        cut in 0usize..200,
    ) {
        let cut = cut % values.len();
        let mut merged = sketch_of(&values[..cut]);
        merged.merge(&sketch_of(&values[cut..]));
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.min(), values.iter().copied().min());
        prop_assert_eq!(merged.max(), values.iter().copied().max());
        // Histogram mass equals the count.
        let mass: u64 = merged.histogram().iter().map(|(_, n)| n).sum();
        prop_assert_eq!(mass, merged.count());
    }
}
