//! Wall-clock span capture and causal attribution for the pooled runtime.
//!
//! The simulator attributes speedup loss in *virtual* time
//! (`stats-bench`'s `attribution` module); this module does the same job
//! for the real threaded runtime in *wall-clock* time, TASKPROF-style:
//!
//! 1. **Capture** — [`Profiler`] holds one bounded record ring per pool
//!    worker plus one for the coordinator, cache-line-sharded so
//!    recording is a cursor `fetch_add` and three relaxed stores. Spans
//!    are `{category, chunk, t_start, t_end}` stamped via
//!    [`crate::clock::monotonic_ns`], the single sanctioned wall-clock
//!    read. When a ring fills, further records are dropped and counted —
//!    never blocked on.
//! 2. **Assemble** — after the run quiesces, [`WallProfile::assemble`]
//!    drains the rings, sorts spans, and relabels the speculative
//!    compute of aborted chunks to [`Category::AbortedCompute`] using
//!    the run's decision vector (the capture path stays decision-blind).
//! 3. **Attribute** — [`WallProfile::attribute`] replays the captured
//!    span graph through a small discrete-event model of the pool
//!    (normal lane for chunk tasks, urgent lane for replicas/reruns,
//!    ordered commits) and answers the paper's §V-B what-if questions by
//!    re-scheduling with a category's measured durations zeroed. Waits
//!    are *derived* by the re-scheduler, not taken from measured blocked
//!    time — measured waits on an oversubscribed host mostly reflect
//!    time-slicing, while measured *work* durations inflate roughly
//!    uniformly, preserving the category ordering the paper cares
//!    about. Losses land in the six coarse groups of §V-B
//!    ([`WallLoss`]): imbalance, extra computation, synchronization,
//!    sequential, mispeculation, and an unreachability residual.
//!
//! Timestamps never feed protocol decisions; with profiling enabled the
//! runtime's decisions and outputs are bit-identical (asserted by
//! `tests/native_attribution.rs`).

use crate::json::JsonObject;
use crate::sketch::QuantileSketch;
use stats_trace::{Category, Cycles, ThreadId, Trace, TraceBuilder, TraceError, CATEGORIES};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default per-shard record capacity. A chunk contributes a handful of
/// spans (warmup, copy, compute, replicas, compare), so this covers
/// plans of several thousand chunks per worker before dropping.
pub const DEFAULT_SHARD_CAPACITY: usize = 1 << 14;

// ---------------------------------------------------------------------------
// Worker registration
// ---------------------------------------------------------------------------

const UNREGISTERED: u32 = u32::MAX;

// stats-analyzer: allow(ND004): profiling shard label for the current pool thread; read only to pick a ring buffer, never by protocol logic.
thread_local! {
    // stats-analyzer: allow(ND004): observation-only shard label, see above.
    static WORKER_INDEX: Cell<u32> = const { Cell::new(UNREGISTERED) };
}

/// Tag the calling thread as pool worker `index` so its profiler
/// records land in that worker's shard. Called by the pool's worker
/// loop at thread start; unregistered threads (the coordinator) record
/// into the dedicated coordinator shard.
pub fn register_worker(index: usize) {
    WORKER_INDEX.with(|w| w.set(index.min(UNREGISTERED as usize - 1) as u32));
}

/// The pool-worker index of the calling thread, if registered.
pub fn registered_worker() -> Option<usize> {
    WORKER_INDEX.with(|w| {
        let i = w.get();
        (i != UNREGISTERED).then_some(i as usize)
    })
}

// ---------------------------------------------------------------------------
// Capture
// ---------------------------------------------------------------------------

/// One captured wall-clock span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallSpan {
    /// What the thread was doing.
    pub category: Category,
    /// The chunk (or boundary) the work belongs to.
    pub chunk: u32,
    /// Recording shard: `0..workers` are pool workers, `workers` is the
    /// coordinator.
    pub worker: u32,
    /// Start, nanoseconds since the profiling epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the profiling epoch.
    pub end_ns: u64,
}

impl WallSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Shard header on its own cache line so cursor bumps on one worker
/// never false-share with another worker's.
#[repr(align(64))]
#[derive(Debug)]
struct ShardHeader {
    cursor: AtomicU64,
    dropped: AtomicU64,
}

#[derive(Debug)]
struct Slot {
    /// Packed `(category_index + 1) | worker << 8 | chunk << 24`;
    /// zero means "not yet published".
    meta: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
}

#[derive(Debug)]
struct Shard {
    header: ShardHeader,
    slots: Box<[Slot]>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot {
                meta: AtomicU64::new(0),
                start: AtomicU64::new(0),
                end: AtomicU64::new(0),
            })
            .collect();
        Shard {
            header: ShardHeader {
                cursor: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            },
            slots,
        }
    }
}

fn category_index(category: Category) -> usize {
    CATEGORIES
        .iter()
        .position(|c| *c == category)
        .expect("category listed in CATEGORIES")
}

/// Low-overhead wall-clock span recorder: one bounded ring per pool
/// worker plus a coordinator shard. `&Profiler` is shared across the
/// pool; recording is wait-free and drops (with a count) on overflow.
#[derive(Debug)]
pub struct Profiler {
    shards: Vec<Shard>,
    workers: usize,
}

impl Profiler {
    /// A profiler for a pool of `workers` threads (plus the
    /// coordinator) with the default per-shard capacity.
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, DEFAULT_SHARD_CAPACITY)
    }

    /// As [`Profiler::new`] with an explicit per-shard record capacity.
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        Profiler {
            shards: (0..=workers).map(|_| Shard::new(capacity.max(1))).collect(),
            workers,
        }
    }

    /// Pool width this profiler was sized for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Record one span. The shard is picked from the calling thread's
    /// registration ([`register_worker`]); unregistered callers (the
    /// coordinator) use the dedicated last shard.
    #[inline]
    pub fn record(&self, category: Category, chunk: usize, start_ns: u64, end_ns: u64) {
        let shard_idx = match registered_worker() {
            Some(i) if i < self.workers => i,
            _ => self.workers,
        };
        let shard = &self.shards[shard_idx];
        let slot_idx = shard.header.cursor.fetch_add(1, Ordering::Relaxed);
        if slot_idx as usize >= shard.slots.len() {
            shard.header.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let meta = (category_index(category) as u64 + 1)
            | ((shard_idx as u64 & 0xFFFF) << 8)
            | ((chunk as u64) << 24);
        let slot = &shard.slots[slot_idx as usize];
        slot.start.store(start_ns, Ordering::Relaxed);
        slot.end.store(end_ns, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Release);
    }

    /// Records dropped to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.header.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Drain all published records (sorted by start time) and reset the
    /// rings for reuse. Call only after the run has quiesced — i.e.
    /// after the pool scope has joined — so every writer is done.
    pub fn take_spans(&self) -> (Vec<WallSpan>, u64) {
        let mut spans = Vec::new();
        let mut dropped = 0;
        for shard in &self.shards {
            let reserved = shard.header.cursor.swap(0, Ordering::Relaxed) as usize;
            dropped += shard.header.dropped.swap(0, Ordering::Relaxed);
            for slot in shard.slots.iter().take(reserved.min(shard.slots.len())) {
                let meta = slot.meta.swap(0, Ordering::Acquire);
                if meta == 0 {
                    continue; // reserved but never published
                }
                let cat = CATEGORIES[((meta & 0xFF) - 1) as usize];
                spans.push(WallSpan {
                    category: cat,
                    chunk: (meta >> 24) as u32,
                    worker: ((meta >> 8) & 0xFFFF) as u32,
                    start_ns: slot.start.load(Ordering::Relaxed),
                    end_ns: slot.end.load(Ordering::Relaxed),
                });
            }
        }
        spans.sort_by_key(|s| (s.start_ns, s.worker, s.end_ns));
        (spans, dropped)
    }
}

// ---------------------------------------------------------------------------
// Assembled profile
// ---------------------------------------------------------------------------

/// The six coarse loss groups of the paper's §V-B, in presentation
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WallLoss {
    /// Uneven chunk durations leaving workers idle.
    Imbalance,
    /// Work the serial program never does: alternative producers,
    /// replica generation, state comparison, state copies, setup.
    ExtraComputation,
    /// Coordination cost per commit (channel/condvar handoffs).
    Synchronization,
    /// Serial time outside the parallelized region.
    Sequential,
    /// Aborted speculation plus serialized reruns.
    Mispeculation,
    /// Residual between the ideal and what any what-if recovers.
    Unreachability,
}

/// All six groups in presentation order.
pub const WALL_LOSSES: [WallLoss; 6] = [
    WallLoss::Imbalance,
    WallLoss::ExtraComputation,
    WallLoss::Synchronization,
    WallLoss::Sequential,
    WallLoss::Mispeculation,
    WallLoss::Unreachability,
];

impl WallLoss {
    /// Stable lower-case name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            WallLoss::Imbalance => "imbalance",
            WallLoss::ExtraComputation => "extra_computation",
            WallLoss::Synchronization => "synchronization",
            WallLoss::Sequential => "sequential",
            WallLoss::Mispeculation => "mispeculation",
            WallLoss::Unreachability => "unreachability",
        }
    }
}

/// What-if projections answered by re-scheduling the span graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIfs {
    /// Projected speedup if synchronization were free.
    pub sync_free: f64,
    /// Projected speedup if state copies were free.
    pub copies_free: f64,
    /// Projected speedup with twice the workers.
    pub double_workers: f64,
    /// Projected speedup if every speculation had committed (no aborted
    /// attempts, no reruns). Breadth candidates that lost the commit
    /// check are kept — hedging is a deliberate cost, not
    /// mispeculation — so this stays a valid ceiling for breadth runs.
    pub mispeculation_free: f64,
}

/// The result of attributing one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct WallAttribution {
    /// Pool width of the profiled run.
    pub workers: usize,
    /// Chunks in the plan.
    pub chunks: usize,
    /// Committed / speculative chunks.
    pub commit_rate: f64,
    /// Ideal speedup: `min(workers, chunks)`.
    pub ideal: f64,
    /// Speedup of the re-scheduled baseline (host-independent).
    pub projected: f64,
    /// Measured speedup: serial estimate / measured wall time. On an
    /// oversubscribed host this is bounded by real cores and diverges
    /// from `projected`; both are reported.
    pub measured: f64,
    /// Marginal speedup recovered by zeroing each group (the paper's
    /// "% speedup lost" numerators), in [`WALL_LOSSES`] order.
    pub losses: Vec<(WallLoss, f64)>,
    /// Extra-computation sub-categories (alt producer, replica gen,
    /// comparison, copies, setup) and their marginals.
    pub extra_breakdown: Vec<(Category, f64)>,
    /// What-if projections.
    pub whatifs: WhatIfs,
    /// Serial-time estimate in nanoseconds (committed compute + reruns).
    pub serial_ns: u64,
    /// Measured wall-clock time of the profiled run.
    pub elapsed_ns: u64,
    /// Records lost to ring overflow (0 in healthy runs).
    pub dropped: u64,
}

impl WallAttribution {
    /// Marginal for one loss group.
    pub fn loss(&self, loss: WallLoss) -> f64 {
        self.losses
            .iter()
            .find(|(l, _)| *l == loss)
            .map_or(0.0, |(_, v)| *v)
    }

    /// The loss group with the largest marginal.
    pub fn dominant(&self) -> WallLoss {
        self.losses
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(WallLoss::Unreachability, |(l, _)| l)
    }

    /// Serialize as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("workers", self.workers as u64)
            .u64("chunks", self.chunks as u64)
            .f64("commit_rate", self.commit_rate)
            .f64("ideal", self.ideal)
            .f64("projected", self.projected)
            .f64("measured", self.measured)
            .u64("serial_ns", self.serial_ns)
            .u64("elapsed_ns", self.elapsed_ns)
            .u64("dropped", self.dropped);
        let mut losses = String::from("{");
        for (i, (l, v)) in self.losses.iter().enumerate() {
            if i > 0 {
                losses.push(',');
            }
            losses.push_str(&format!("\"{}\":{:.6}", l.name(), v));
        }
        losses.push('}');
        o.raw("losses", &losses);
        let mut extra = String::from("{");
        for (i, (c, v)) in self.extra_breakdown.iter().enumerate() {
            if i > 0 {
                extra.push(',');
            }
            extra.push_str(&format!("\"{}\":{:.6}", c.name(), v));
        }
        extra.push('}');
        o.raw("extra_breakdown", &extra);
        o.raw(
            "whatifs",
            &format!(
                "{{\"sync_free\":{:.6},\"copies_free\":{:.6},\"double_workers\":{:.6},\"mispeculation_free\":{:.6}}}",
                self.whatifs.sync_free,
                self.whatifs.copies_free,
                self.whatifs.double_workers,
                self.whatifs.mispeculation_free
            ),
        );
        o.finish()
    }
}

/// A run's captured spans plus the run facts needed to interpret them.
#[derive(Debug, Clone)]
pub struct WallProfile {
    /// Pool width.
    pub workers: usize,
    /// All captured spans, sorted by start time. Speculative compute of
    /// aborted chunks is relabeled [`Category::AbortedCompute`].
    pub spans: Vec<WallSpan>,
    /// Per-chunk abort flags from the run's decision vector.
    pub aborted: Vec<bool>,
    /// Measured wall-clock duration of the run.
    pub elapsed_ns: u64,
    /// Records lost to ring overflow.
    pub dropped: u64,
}

impl WallProfile {
    /// Drain `profiler` and assemble a profile for a run that made the
    /// given per-chunk abort decisions and took `elapsed_ns` of wall
    /// time. The earliest `ChunkCompute` span of each aborted chunk is
    /// the speculative attempt and is relabeled `AbortedCompute`; the
    /// remaining one is its serialized rerun.
    pub fn assemble(profiler: &Profiler, aborted: Vec<bool>, elapsed_ns: u64) -> Self {
        Self::assemble_with_breadth(profiler, aborted, 1, elapsed_ns)
    }

    /// [`WallProfile::assemble`] for a run at speculation breadth
    /// `breadth`. Each speculative chunk ran `breadth` candidate
    /// attempts, every one recording a `ChunkCompute` span. In start
    /// order: a committed chunk keeps its first compute span as the
    /// realized run and relabels the rest `AbortedCompute` (losing
    /// candidates — dead work, but not serial work); an aborted chunk
    /// relabels its first `breadth` spans (all attempts lost) and keeps
    /// the remainder — the rerun, possibly in several pool segments.
    pub fn assemble_with_breadth(
        profiler: &Profiler,
        aborted: Vec<bool>,
        breadth: usize,
        elapsed_ns: u64,
    ) -> Self {
        let (mut spans, dropped) = profiler.take_spans();
        let breadth = breadth.max(1);
        for (chunk, &was_aborted) in aborted.iter().enumerate() {
            for (seen, s) in spans
                .iter_mut()
                .filter(|s| s.category == Category::ChunkCompute && s.chunk as usize == chunk)
                .enumerate()
            {
                let relabel = if was_aborted {
                    seen < breadth
                } else {
                    seen > 0
                };
                if relabel {
                    s.category = Category::AbortedCompute;
                }
            }
        }
        WallProfile {
            workers: profiler.workers(),
            spans,
            aborted,
            elapsed_ns,
            dropped,
        }
    }

    /// Total nanoseconds recorded for `category`.
    pub fn category_ns(&self, category: Category) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.category == category)
            .map(WallSpan::duration_ns)
            .sum()
    }

    /// Span-duration distribution per active category.
    pub fn category_sketches(&self) -> BTreeMap<Category, QuantileSketch> {
        let mut out: BTreeMap<Category, QuantileSketch> = BTreeMap::new();
        for s in &self.spans {
            out.entry(s.category).or_default().insert(s.duration_ns());
        }
        out
    }

    /// Human-readable thread names, `(thread index, name)`, matching
    /// the `worker` field of spans and [`WallProfile::to_trace`].
    pub fn thread_names(&self) -> Vec<(usize, String)> {
        let mut names: Vec<(usize, String)> = (0..self.workers)
            .map(|i| (i, format!("stats-pool-{i}")))
            .collect();
        names.push((self.workers, "coordinator".to_string()));
        names
    }

    /// Convert to a `stats-trace` [`Trace`] (1 cycle = 1 ns) so the
    /// existing timeline/chrome/folded renderers apply to native runs.
    /// Spans recorded by one thread never overlap (each thread records
    /// serially on a monotonic clock), which satisfies the builder's
    /// validation; zero-length spans are kept.
    pub fn to_trace(&self, scenario: &str) -> Result<Trace, TraceError> {
        let mut b = TraceBuilder::new(scenario);
        b.cores(self.workers + 1);
        b.sequential_cycles(Cycles(self.serial_estimate_ns()));
        for s in &self.spans {
            b.push_labeled(
                ThreadId(s.worker as usize),
                s.category,
                Cycles(s.start_ns),
                Cycles(s.end_ns),
                0,
                format!("chunk {}", s.chunk),
            );
        }
        b.finish()
    }

    /// Serial-time estimate: the compute the serial program performs —
    /// committed chunks' speculative compute plus aborted chunks'
    /// reruns, plus any outside-region time.
    pub fn serial_estimate_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| matches!(s.category, Category::ChunkCompute | Category::OutsideRegion))
            .map(WallSpan::duration_ns)
            .sum()
    }

    /// Attribute this run's speedup loss to the six groups and compute
    /// the what-if projections. See the module docs for the algorithm.
    pub fn attribute(&self) -> WallAttribution {
        let model = DesModel::from_profile(self);
        let serial = self.serial_estimate_ns().max(1) as f64;
        let chunks = self.aborted.len().max(1);
        let ideal = self.workers.min(chunks) as f64;
        let s = |makespan: f64| serial / makespan.max(1.0);

        let base = s(model.makespan(&Scenario::default()));
        let marg = |sc: Scenario| (s(model.makespan(&sc)) - base).max(0.0);

        let imbalance = marg(Scenario {
            equalize_compute: true,
            ..Scenario::default()
        });
        let extra_breakdown = vec![
            (
                Category::AltProducer,
                marg(Scenario {
                    zero_warmup: true,
                    ..Scenario::default()
                }),
            ),
            (
                Category::OriginalStateGen,
                marg(Scenario {
                    zero_replicas: true,
                    ..Scenario::default()
                }),
            ),
            (
                Category::StateComparison,
                marg(Scenario {
                    zero_compare: true,
                    ..Scenario::default()
                }),
            ),
            (
                Category::StateCopy,
                marg(Scenario {
                    zero_copies: true,
                    ..Scenario::default()
                }),
            ),
            (
                Category::Setup,
                marg(Scenario {
                    zero_setup: true,
                    ..Scenario::default()
                }),
            ),
        ];
        let extra: f64 = extra_breakdown.iter().map(|(_, v)| v).sum();
        let sync = marg(Scenario {
            zero_sync: true,
            ..Scenario::default()
        });
        // The native run covers only the parallelized region, so the
        // sequential (outside-region) loss is structurally zero here;
        // the field exists so the six-group shape matches §V-B.
        let sequential = 0.0;
        let mispeculation = marg(Scenario {
            assume_all_commit: true,
            ..Scenario::default()
        });

        let explained = imbalance + extra + sync + sequential + mispeculation;
        let unreachability = (ideal - base - explained).max(0.0);

        let committed = self.aborted.iter().filter(|a| !**a).count();
        let commit_rate = committed as f64 / chunks as f64;

        // A causal what-if only removes work (or adds capacity), so it
        // must never project a slowdown; greedy list scheduling can
        // still lengthen the re-scheduled makespan (Graham's anomaly),
        // which is a scheduler artifact, not a causal prediction — keep
        // the baseline in that case.
        let whatifs = WhatIfs {
            sync_free: s(model.makespan(&Scenario {
                zero_sync: true,
                ..Scenario::default()
            }))
            .max(base),
            copies_free: s(model.makespan(&Scenario {
                zero_copies: true,
                ..Scenario::default()
            }))
            .max(base),
            double_workers: s(model.makespan(&Scenario {
                worker_factor: 2,
                ..Scenario::default()
            }))
            .max(base),
            mispeculation_free: s(model.makespan(&Scenario {
                assume_all_commit: true,
                ..Scenario::default()
            }))
            .max(base),
        };

        WallAttribution {
            workers: self.workers,
            chunks,
            commit_rate,
            ideal,
            projected: base,
            measured: serial / self.elapsed_ns.max(1) as f64,
            losses: vec![
                (WallLoss::Imbalance, imbalance),
                (WallLoss::ExtraComputation, extra),
                (WallLoss::Synchronization, sync),
                (WallLoss::Sequential, sequential),
                (WallLoss::Mispeculation, mispeculation),
                (WallLoss::Unreachability, unreachability),
            ],
            extra_breakdown,
            whatifs,
            serial_ns: serial as u64,
            elapsed_ns: self.elapsed_ns,
            dropped: self.dropped,
        }
    }
}

// ---------------------------------------------------------------------------
// The re-scheduler: a discrete-event model of the pooled executor
// ---------------------------------------------------------------------------

/// Measured per-chunk durations extracted from a profile, in the shape
/// the pooled executor schedules them: one normal-lane task per chunk
/// (warmup + speculative copy + compute), urgent-lane replica tasks per
/// boundary, coordinator-side comparison per seal, urgent reruns on
/// abort.
#[derive(Debug, Clone)]
struct DesModel {
    workers: usize,
    setup: f64,
    warmup: Vec<f64>,
    spec_copy: Vec<f64>,
    compute: Vec<f64>,
    rerun: Vec<f64>,
    compare: Vec<f64>,
    coord_copy: Vec<f64>,
    replicas: Vec<Vec<f64>>,
    /// Per-chunk compute durations of breadth candidates that lost the
    /// commit check (and, on aborts, of every failed attempt). They run
    /// as ordinary pool tasks the commit check waits on, and — unlike
    /// reruns — survive `assume_all_commit`: hedging is a deliberate
    /// cost, not mispeculation.
    dead_candidates: Vec<Vec<f64>>,
    aborted: Vec<bool>,
    /// Per-seal coordination cost: the *minimum* observed sync span, a
    /// robust estimate of the uncontended handoff cost (measured blocked
    /// time is dominated by waiting, which the scheduler derives
    /// itself).
    sync_per_seal: f64,
}

/// Knobs for one what-if re-schedule. Default = the measured baseline.
#[derive(Debug, Clone, Default)]
struct Scenario {
    equalize_compute: bool,
    zero_warmup: bool,
    zero_replicas: bool,
    zero_compare: bool,
    zero_copies: bool,
    zero_setup: bool,
    zero_sync: bool,
    assume_all_commit: bool,
    worker_factor: usize,
}

impl DesModel {
    fn from_profile(profile: &WallProfile) -> Self {
        let chunks = profile.aborted.len().max(1);
        let coord = profile.workers as u32;
        let mut m = DesModel {
            workers: profile.workers,
            setup: 0.0,
            warmup: vec![0.0; chunks],
            spec_copy: vec![0.0; chunks],
            compute: vec![0.0; chunks],
            rerun: vec![0.0; chunks],
            compare: vec![0.0; chunks],
            coord_copy: vec![0.0; chunks],
            replicas: vec![Vec::new(); chunks],
            dead_candidates: vec![Vec::new(); chunks],
            aborted: profile.aborted.clone(),
            sync_per_seal: 0.0,
        };
        let mut min_sync = f64::INFINITY;
        for s in &profile.spans {
            let c = (s.chunk as usize).min(chunks - 1);
            let d = s.duration_ns() as f64;
            match s.category {
                Category::Setup => m.setup += d,
                Category::AltProducer => m.warmup[c] += d,
                Category::StateCopy => {
                    if s.worker == coord {
                        m.coord_copy[c] += d;
                    } else {
                        m.spec_copy[c] += d;
                    }
                }
                Category::ChunkCompute => {
                    if m.aborted[c] {
                        m.rerun[c] += d;
                    } else {
                        m.compute[c] += d;
                    }
                }
                Category::AbortedCompute => m.dead_candidates[c].push(d),
                Category::OriginalStateGen => m.replicas[c].push(d),
                Category::StateComparison => m.compare[c] += d,
                Category::Sync => min_sync = min_sync.min(d),
                Category::Commit | Category::OutsideRegion => {}
            }
        }
        if min_sync.is_finite() {
            m.sync_per_seal = min_sync;
        }
        m
    }

    /// Speculative attempts chunk `c` made: its dead candidates plus the
    /// realized one when it committed.
    fn attempts(&self, c: usize) -> usize {
        let dead = self.dead_candidates[c].len();
        if self.aborted[c] {
            dead.max(1)
        } else {
            dead + 1
        }
    }

    /// Makespan of the re-scheduled run under `scenario`, in ns.
    fn makespan(&self, scenario: &Scenario) -> f64 {
        let chunks = self.aborted.len();
        let workers = self.workers * scenario.worker_factor.max(1);
        let setup = if scenario.zero_setup { 0.0 } else { self.setup };
        let mean_compute = self.compute.iter().sum::<f64>() / chunks as f64;
        // Warmup and hand-off copies accumulate over every breadth
        // candidate of a chunk; each attempt task carries its share.
        let share = |c: usize| -> f64 {
            let warmup = if scenario.zero_warmup {
                0.0
            } else {
                self.warmup[c]
            };
            let copy = if scenario.zero_copies {
                0.0
            } else {
                self.spec_copy[c]
            };
            (warmup + copy) / self.attempts(c) as f64
        };

        let mut sim = PoolSim::new(workers, setup);
        // Per chunk: the main attempt (the realized run, or the first
        // failed attempt when it aborted) plus one task per remaining
        // dead candidate. The commit check waits on all of them.
        let mut main_ids = Vec::with_capacity(chunks);
        let mut extra_ids: Vec<Vec<usize>> = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let dead = &self.dead_candidates[c];
            let (main_compute, rest) = if self.aborted[c] && !dead.is_empty() {
                (dead[0], &dead[1..])
            } else {
                let compute = if scenario.equalize_compute {
                    mean_compute
                } else {
                    self.compute[c]
                };
                (compute, &dead[..])
            };
            main_ids.push(sim.enqueue_normal(share(c) + main_compute));
            extra_ids.push(
                rest.iter()
                    .map(|&d| sim.enqueue_normal(share(c) + d))
                    .collect(),
            );
        }
        let mut seal = setup;
        for c in 0..chunks {
            // Replica tasks for this boundary went on the urgent lane
            // the moment the previous chunk sealed.
            let replica_ids: Vec<usize> = self.replicas[c]
                .iter()
                .map(|&d| {
                    let d = if scenario.zero_replicas { 0.0 } else { d };
                    sim.enqueue_urgent(seal, d)
                })
                .collect();
            let mut result = sim.pump_until(main_ids[c]);
            for &id in &extra_ids[c] {
                result = result.max(sim.pump_until(id));
            }
            let mut ready = result.max(seal);
            for id in replica_ids {
                ready = ready.max(sim.pump_until(id));
            }
            let mut validate = if scenario.zero_compare {
                0.0
            } else {
                self.compare[c]
            };
            if !scenario.zero_sync {
                validate += self.sync_per_seal;
            }
            if !scenario.zero_copies {
                validate += self.coord_copy[c];
            }
            let vend = ready + validate;
            let aborted = self.aborted[c] && !scenario.assume_all_commit;
            seal = if aborted {
                let rr = sim.enqueue_urgent(vend, self.rerun[c]);
                sim.pump_until(rr)
            } else {
                vend
            };
        }
        seal
    }
}

/// The worker pool as a schedulable resource: a normal FIFO lane (chunk
/// tasks, all ready at setup) and an urgent lane (replicas, reruns)
/// that jumps the queue, mirroring `runtime::pool`'s two-ended queue.
/// Injections must arrive in nondecreasing ready order, which the
/// commit-ordered coordinator loop guarantees.
struct PoolSim {
    free: Vec<f64>,
    normal: VecDeque<(usize, f64)>,
    urgent: VecDeque<(usize, f64, f64)>,
    finish: Vec<f64>,
    normal_ready: f64,
}

impl PoolSim {
    fn new(workers: usize, setup: f64) -> Self {
        PoolSim {
            free: vec![setup; workers.max(1)],
            normal: VecDeque::new(),
            urgent: VecDeque::new(),
            finish: Vec::new(),
            normal_ready: setup,
        }
    }

    fn enqueue_normal(&mut self, dur: f64) -> usize {
        let id = self.finish.len();
        self.finish.push(f64::NAN);
        self.normal.push_back((id, dur));
        id
    }

    fn enqueue_urgent(&mut self, ready: f64, dur: f64) -> usize {
        let id = self.finish.len();
        self.finish.push(f64::NAN);
        self.urgent.push_back((id, ready, dur));
        id
    }

    fn pump_until(&mut self, task: usize) -> f64 {
        while self.finish[task].is_nan() {
            assert!(self.step(), "task {task} was never dispatched");
        }
        self.finish[task]
    }

    /// Dispatch the next task to the earliest-free worker; returns
    /// false when both lanes are empty.
    fn step(&mut self) -> bool {
        let (w, tw) = self
            .free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, t)| (i, *t))
            .expect("pool has at least one worker");
        // A worker checking the queue at time `tw` sees urgent work
        // only if it was already enqueued by then.
        if let Some(&(id, ready, dur)) = self.urgent.front() {
            if ready <= tw || self.normal.is_empty() {
                self.urgent.pop_front();
                let start = tw.max(ready);
                self.free[w] = start + dur;
                self.finish[id] = start + dur;
                return true;
            }
        }
        if let Some((id, dur)) = self.normal.pop_front() {
            let start = tw.max(self.normal_ready);
            self.free[w] = start + dur;
            self.finish[id] = start + dur;
            return true;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Multi-seed aggregation (Touati-style mean ± confidence interval)
// ---------------------------------------------------------------------------

/// A mean with a ~95% confidence half-width over `n` samples
/// (Student-t for small n), per Touati's speedup-reporting methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the ~95% confidence interval (0 when n < 2).
    pub half_width: f64,
    /// Sample count.
    pub n: usize,
}

/// Two-sided 97.5% Student-t quantiles for 1..=10 degrees of freedom.
const T_975: [f64; 10] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
];

impl Estimate {
    /// Estimate from raw samples. Empty input yields a zero estimate.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Estimate {
                mean: 0.0,
                half_width: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Estimate {
                mean,
                half_width: 0.0,
                n,
            };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let t = T_975.get(n - 2).copied().unwrap_or(1.96);
        Estimate {
            mean,
            half_width: t * (var / n as f64).sqrt(),
            n,
        }
    }

    /// Lower edge of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper edge of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: Category, chunk: u32, worker: u32, start: u64, end: u64) -> WallSpan {
        WallSpan {
            category: cat,
            chunk,
            worker,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn record_and_drain_round_trips() {
        let p = Profiler::with_capacity(2, 16);
        p.record(Category::ChunkCompute, 3, 100, 250);
        p.record(Category::StateComparison, 3, 250, 260);
        let (spans, dropped) = p.take_spans();
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 2);
        // Unregistered thread lands in the coordinator shard.
        assert_eq!(spans[0].worker, 2);
        assert_eq!(spans[0].category, Category::ChunkCompute);
        assert_eq!(spans[0].chunk, 3);
        assert_eq!(spans[0].duration_ns(), 150);
        // Drain resets the rings.
        assert_eq!(p.take_spans().0.len(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let p = Profiler::with_capacity(1, 2);
        for i in 0..5 {
            p.record(Category::Sync, i, 0, 1);
        }
        assert_eq!(p.dropped(), 3);
        let (spans, dropped) = p.take_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn worker_registration_routes_to_shard() {
        let p = std::sync::Arc::new(Profiler::with_capacity(2, 8));
        let p2 = p.clone();
        std::thread::spawn(move || {
            register_worker(1);
            p2.record(Category::ChunkCompute, 0, 10, 20);
        })
        .join()
        .unwrap();
        let (spans, _) = p.take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].worker, 1);
    }

    #[test]
    fn assemble_relabels_aborted_speculation() {
        let p = Profiler::with_capacity(1, 16);
        // chunk 0 committed; chunk 1 aborted: spec attempt then rerun.
        p.record(Category::ChunkCompute, 0, 0, 100);
        p.record(Category::ChunkCompute, 1, 0, 90);
        p.record(Category::ChunkCompute, 1, 200, 290);
        let profile = WallProfile::assemble(&p, vec![false, true], 300);
        let aborted: Vec<_> = profile
            .spans
            .iter()
            .filter(|s| s.category == Category::AbortedCompute)
            .collect();
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].chunk, 1);
        assert_eq!(aborted[0].end_ns, 90, "earliest attempt is the spec one");
        // Serial estimate counts committed compute + the rerun only.
        assert_eq!(profile.serial_estimate_ns(), 100 + 90);
    }

    /// A synthetic 2-worker profile: 4 chunks of 1000ns compute, 100ns
    /// warmup, 50ns copy, 20ns compare, one 200ns replica per boundary.
    fn synthetic_profile(aborted: Vec<bool>) -> WallProfile {
        let chunks = aborted.len();
        let mut spans = Vec::new();
        let mut t = 0;
        spans.push(span(Category::Setup, 0, 2, 0, 30));
        for c in 0..chunks {
            let w = (c % 2) as u32;
            spans.push(span(Category::AltProducer, c as u32, w, t, t + 100));
            spans.push(span(Category::StateCopy, c as u32, w, t + 100, t + 150));
            spans.push(span(Category::ChunkCompute, c as u32, w, t + 150, t + 1150));
            if c > 0 {
                spans.push(span(
                    Category::OriginalStateGen,
                    c as u32,
                    1 - w,
                    t,
                    t + 200,
                ));
            }
            spans.push(span(
                Category::StateComparison,
                c as u32,
                2,
                t + 1150,
                t + 1170,
            ));
            spans.push(span(Category::Sync, c as u32, 2, t + 1140, t + 1150));
            t += 1200;
        }
        let mut profile = WallProfile {
            workers: 2,
            spans,
            aborted,
            elapsed_ns: t + 100,
            dropped: 0,
        };
        // Route through the same relabeling as assemble().
        for (chunk, _) in profile
            .aborted
            .clone()
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
        {
            if let Some(first) = profile
                .spans
                .iter_mut()
                .find(|s| s.category == Category::ChunkCompute && s.chunk as usize == chunk)
            {
                first.category = Category::AbortedCompute;
            }
        }
        profile
    }

    #[test]
    fn attribution_accounts_for_the_ideal() {
        let profile = synthetic_profile(vec![false; 4]);
        let a = profile.attribute();
        assert_eq!(a.chunks, 4);
        assert!((a.commit_rate - 1.0).abs() < 1e-12);
        assert!(a.projected > 0.0 && a.projected <= a.ideal + 1e-9);
        let total: f64 = a.losses.iter().map(|(_, v)| v).sum();
        // Losses + projected cover the ideal (unreachability is the
        // residual, clamped at zero).
        assert!(
            a.projected + total >= a.ideal - 1e-6,
            "projected {} + losses {} < ideal {}",
            a.projected,
            total,
            a.ideal
        );
        assert!(a.losses.iter().all(|(_, v)| *v >= 0.0));
    }

    #[test]
    fn what_ifs_never_hurt() {
        for aborted in [vec![false; 4], vec![false, true, false, false]] {
            let profile = synthetic_profile(aborted);
            let a = profile.attribute();
            assert!(a.whatifs.sync_free >= a.projected - 1e-9);
            assert!(a.whatifs.copies_free >= a.projected - 1e-9);
            assert!(a.whatifs.double_workers >= a.projected - 1e-9);
            assert!(a.whatifs.mispeculation_free >= a.projected - 1e-9);
        }
    }

    #[test]
    fn mispeculation_free_recovers_abort_loss() {
        let mut p = synthetic_profile(vec![false, true, false, false]);
        let t0 = p.elapsed_ns;
        p.spans
            .push(span(Category::ChunkCompute, 1, 0, t0, t0 + 1000));
        p.elapsed_ns += 1000;
        let a = p.attribute();
        assert!(
            a.whatifs.mispeculation_free > a.projected,
            "dropping the abort must beat the baseline: {} vs {}",
            a.whatifs.mispeculation_free,
            a.projected
        );
        // The ceiling equals baseline + the mispeculation marginal.
        let expect = a.projected + a.loss(WallLoss::Mispeculation);
        assert!((a.whatifs.mispeculation_free - expect).abs() < 1e-9);
    }

    #[test]
    fn breadth_assembly_relabels_losing_candidates() {
        let p = Profiler::with_capacity(1, 16);
        // Chunk 0 committed at breadth 2: winner + one loser.
        p.record(Category::ChunkCompute, 0, 0, 100);
        p.record(Category::ChunkCompute, 0, 10, 95);
        // Chunk 1 aborted at breadth 2: two failed attempts, then an
        // overlapped rerun in two pool segments.
        p.record(Category::ChunkCompute, 1, 0, 90);
        p.record(Category::ChunkCompute, 1, 5, 92);
        p.record(Category::ChunkCompute, 1, 200, 260);
        p.record(Category::ChunkCompute, 1, 260, 290);
        let profile = WallProfile::assemble_with_breadth(&p, vec![false, true], 2, 300);
        let dead: Vec<_> = profile
            .spans
            .iter()
            .filter(|s| s.category == Category::AbortedCompute)
            .map(|s| (s.chunk, s.start_ns))
            .collect();
        // Spans are globally start-sorted after draining.
        assert_eq!(dead, vec![(1, 0), (1, 5), (0, 10)]);
        // Serial estimate: winner (100) + both rerun segments (60 + 30).
        assert_eq!(profile.serial_estimate_ns(), 100 + 60 + 30);
        // The dead candidates gate the commit check but survive
        // `assume_all_commit`, so the what-if ceiling stays causal.
        let a = profile.attribute();
        assert!(a.whatifs.mispeculation_free >= a.projected - 1e-9);
    }

    #[test]
    fn aborts_surface_as_mispeculation() {
        let clean = synthetic_profile(vec![false; 4]).attribute();
        let with_abort = {
            let mut p = synthetic_profile(vec![false, true, false, false]);
            // The rerun of the aborted chunk.
            let t0 = p.elapsed_ns;
            p.spans
                .push(span(Category::ChunkCompute, 1, 0, t0, t0 + 1000));
            p.elapsed_ns += 1000;
            p.attribute()
        };
        assert_eq!(clean.loss(WallLoss::Mispeculation), 0.0);
        assert!(
            with_abort.loss(WallLoss::Mispeculation) > 0.0,
            "an aborted chunk must show up as mispeculation loss"
        );
        assert!(with_abort.commit_rate < 1.0);
    }

    #[test]
    fn imbalance_shows_up_when_one_chunk_dominates() {
        let mut p = synthetic_profile(vec![false; 4]);
        // Stretch chunk 3's compute 8x.
        for s in &mut p.spans {
            if s.category == Category::ChunkCompute && s.chunk == 3 {
                s.end_ns = s.start_ns + 8000;
            }
        }
        p.elapsed_ns += 7000;
        let a = p.attribute();
        assert!(
            a.loss(WallLoss::Imbalance) > 0.0,
            "skewed chunk durations must attribute imbalance loss"
        );
    }

    #[test]
    fn trace_conversion_is_valid_and_named() {
        let profile = synthetic_profile(vec![false; 4]);
        let trace = profile.to_trace("native bodytrack").unwrap();
        assert_eq!(trace.thread_count(), 3);
        assert!(trace.makespan().get() > 0);
        let names = profile.thread_names();
        assert_eq!(names[0].1, "stats-pool-0");
        assert_eq!(names[2].1, "coordinator");
    }

    #[test]
    fn attribution_json_is_valid() {
        let profile = synthetic_profile(vec![false, true, false, false]);
        let json = profile.attribute().to_json();
        crate::json::validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"imbalance\""));
        assert!(json.contains("\"whatifs\""));
        assert!(json.contains("\"mispeculation_free\""));
    }

    #[test]
    fn estimate_confidence_interval() {
        let e = Estimate::from_samples(&[2.0, 2.0, 2.0]);
        assert_eq!(e.mean, 2.0);
        assert_eq!(e.half_width, 0.0);
        let e = Estimate::from_samples(&[1.0, 2.0, 3.0]);
        assert!((e.mean - 2.0).abs() < 1e-12);
        assert!(e.half_width > 0.0);
        assert!(e.lo() < 2.0 && e.hi() > 2.0);
        assert_eq!(Estimate::from_samples(&[]).n, 0);
        assert_eq!(Estimate::from_samples(&[5.0]).half_width, 0.0);
    }

    #[test]
    fn category_sketches_cover_active_categories() {
        let profile = synthetic_profile(vec![false; 4]);
        let sketches = profile.category_sketches();
        assert!(sketches.contains_key(&Category::ChunkCompute));
        let cc = &sketches[&Category::ChunkCompute];
        assert_eq!(cc.count(), 4);
        assert!(cc.quantile(0.5).unwrap() >= 900);
    }
}
