//! Exporters: Prometheus text exposition, a human-readable table, and a
//! folded-stacks profile consumable by standard flamegraph tooling.

use crate::counters::{Counter, COUNTERS};
use crate::sink::Snapshot;
use stats_trace::{Trace, CATEGORIES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Prometheus text-exposition rendering of a snapshot.
///
/// Counters are exported as `stats_<name>_total` with a `worker` label per
/// shard; the queue high-water mark and snapshot health indicators are
/// gauges. The output follows the text format's `# HELP`/`# TYPE` comment
/// conventions so it can be served from a scrape endpoint or written to a
/// textfile-collector drop directory unchanged.
pub fn prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for &counter in &COUNTERS {
        let name = format!("stats_{}_total", counter.name());
        let _ = writeln!(out, "# HELP {name} {}", counter_help(counter));
        let _ = writeln!(out, "# TYPE {name} counter");
        for w in 0..snapshot.workers() {
            let _ = writeln!(
                out,
                "{name}{{worker=\"{w}\"}} {}",
                snapshot.worker(w, counter)
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP stats_queue_high_water Highest validation-queue depth observed"
    );
    let _ = writeln!(out, "# TYPE stats_queue_high_water gauge");
    let _ = writeln!(out, "stats_queue_high_water {}", snapshot.queue_high_water);
    for c in &snapshot.categories {
        let _ = writeln!(
            out,
            "stats_category_spans_total{{category=\"{}\"}} {}",
            c.category.name(),
            c.spans
        );
        let _ = writeln!(
            out,
            "stats_category_cycles_total{{category=\"{}\"}} {}",
            c.category.name(),
            c.cycles
        );
    }
    let _ = writeln!(
        out,
        "# HELP stats_snapshot_consistent 1 when the double-read converged"
    );
    let _ = writeln!(out, "# TYPE stats_snapshot_consistent gauge");
    let _ = writeln!(
        out,
        "stats_snapshot_consistent {}",
        u64::from(snapshot.consistent)
    );
    let _ = writeln!(
        out,
        "stats_events_emitted_total {}",
        snapshot.events_emitted
    );
    let _ = writeln!(
        out,
        "stats_events_dropped_total {}",
        snapshot.events_dropped
    );
    out
}

fn counter_help(counter: Counter) -> &'static str {
    match counter {
        Counter::ChunksStarted => "Chunks whose (speculative or first) run began",
        Counter::ChunksCommitted => "Chunks whose speculation validated and committed",
        Counter::ChunksAborted => "Chunks whose speculation aborted",
        Counter::Reruns => "Serialized re-executions after an abort",
        Counter::RerunSegments => "Pool-scheduled segments the reruns split into",
        Counter::SpecCandidates => "Breadth candidates launched for speculative chunks",
        Counter::CandidateHits => "Commits won by a non-primary breadth candidate",
        Counter::ReplicasValidated => "Extra original states generated for validation",
        Counter::StateCopies => "Computational-state clones at protocol points",
        Counter::StateComparisons => "states_match evaluations during validation",
        Counter::StateBytesLogical => "Bytes logically replicated (state size x copy events)",
        Counter::StateBytesCopied => "Bytes physically copied by snapshots and COW faults",
        Counter::BusyTime => "Worker compute time (ns threaded, cycles simulated)",
        Counter::IdleTime => "Worker protocol-wait time (ns threaded, cycles simulated)",
        Counter::FaultsInjected => "Fault-plan injections that fired (one per failed attempt)",
        Counter::RetriesScheduled => "Retries scheduled by the fault-recovery guards",
        Counter::WorkersLost => "Pool workers doomed by injected worker-death faults",
    }
}

/// Human-readable metrics table (the `stats metrics` view).
pub fn table(snapshot: &Snapshot) -> String {
    let width = COUNTERS
        .iter()
        .map(|c| c.name().len())
        .max()
        .unwrap_or(0)
        .max("queue_high_water".len());
    let mut out = String::new();
    let _ = writeln!(out, "{:<width$}  total", "counter");
    for &counter in &COUNTERS {
        let _ = writeln!(out, "{:<width$}  {}", counter.name(), snapshot.get(counter));
    }
    let _ = writeln!(
        out,
        "{:<width$}  {}",
        "queue_high_water", snapshot.queue_high_water
    );
    let _ = writeln!(
        out,
        "{:<width$}  {:.3}",
        "commit_rate",
        snapshot.commit_rate()
    );
    if !snapshot.categories.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<width$}  spans  cycles", "category");
        for c in &snapshot.categories {
            let _ = writeln!(
                out,
                "{:<width$}  {:<5}  {}",
                c.category.name(),
                c.spans,
                c.cycles
            );
        }
    }
    if !snapshot.consistent {
        let _ = writeln!(out, "(snapshot torn: taken under concurrent recording)");
    }
    out
}

/// Folded-stacks (flamegraph-collapsed) profile of a trace.
///
/// One line per `(thread, category)` with cycle totals:
/// `scenario;thread 3;state-comparison 1234`. The format is what
/// `flamegraph.pl` / `inferno-flamegraph` consume, so a simulated-run trace
/// can be turned into a flame graph with stock tooling. Lines follow the
/// canonical category presentation order within each thread.
pub fn folded(trace: &Trace) -> String {
    let mut per: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for span in trace.spans() {
        let cat_pos = CATEGORIES
            .iter()
            .position(|c| *c == span.category)
            .expect("span category listed in CATEGORIES");
        *per.entry((span.thread.0, cat_pos)).or_insert(0) += span.duration().get();
    }
    let scenario = if trace.meta().scenario.is_empty() {
        "stats"
    } else {
        &trace.meta().scenario
    };
    // Folded-stack frames are ';'- and ' '-delimited; sanitize the scenario
    // so benchmark names can never break the format.
    let scenario: String = scenario
        .chars()
        .map(|c| if c == ';' || c == ' ' { '_' } else { c })
        .collect();
    let mut out = String::new();
    for ((thread, cat_pos), cycles) in per {
        let _ = writeln!(
            out,
            "{scenario};thread {thread};{} {cycles}",
            CATEGORIES[cat_pos].name()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TelemetrySink;
    use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};

    fn sample_snapshot() -> Snapshot {
        let sink = TelemetrySink::new(2);
        sink.incr(0, Counter::ChunksStarted);
        sink.incr(1, Counter::ChunksStarted);
        sink.incr(0, Counter::ChunksCommitted);
        sink.add(1, Counter::StateComparisons, 4);
        sink.record_span(Category::Sync, Cycles(17));
        sink.queue_enter();
        sink.snapshot()
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE stats_chunks_started_total counter"));
        assert!(text.contains("stats_chunks_started_total{worker=\"0\"} 1"));
        assert!(text.contains("stats_chunks_started_total{worker=\"1\"} 1"));
        assert!(text.contains("stats_state_comparisons_total{worker=\"1\"} 4"));
        assert!(text.contains("stats_queue_high_water 1"));
        assert!(text.contains("stats_category_cycles_total{category=\"sync\"} 17"));
        assert!(text.contains("stats_snapshot_consistent 1"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            assert!(parts.next().unwrap().starts_with("stats_"));
        }
    }

    #[test]
    fn table_lists_every_counter() {
        let text = table(&sample_snapshot());
        for c in COUNTERS {
            assert!(text.contains(c.name()), "missing {}", c.name());
        }
        assert!(text.contains("queue_high_water"));
        assert!(text.contains("commit_rate"));
        assert!(text.contains("sync"));
        assert!(!text.contains("torn"));
    }

    #[test]
    fn folded_stacks_aggregate_per_thread_and_category() {
        let mut b = TraceBuilder::new("swaptions run");
        b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(10), 0);
        b.push(
            ThreadId(0),
            Category::ChunkCompute,
            Cycles(10),
            Cycles(110),
            0,
        );
        b.push(
            ThreadId(0),
            Category::ChunkCompute,
            Cycles(110),
            Cycles(160),
            0,
        );
        b.push(ThreadId(1), Category::Sync, Cycles(0), Cycles(30), 0);
        let trace = b.finish().unwrap();
        let text = folded(&trace);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "swaptions_run;thread 0;setup 10",
                "swaptions_run;thread 0;chunk-compute 150",
                "swaptions_run;thread 1;sync 30",
            ]
        );
    }

    #[test]
    fn folded_stacks_empty_trace() {
        let trace = TraceBuilder::new("empty").finish().unwrap();
        assert_eq!(folded(&trace), "");
    }
}
