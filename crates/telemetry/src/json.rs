//! Minimal JSON emission and validation.
//!
//! The workbench's dependency policy keeps the offline crate set small,
//! so — like `stats_trace::chrome` — this module hand-writes the tiny
//! JSON subset telemetry needs: flat objects of strings, integers,
//! floats, and booleans, plus a validating parser used by tests to prove
//! every emitted line is well-formed.

use std::fmt::Write as _;

/// Escape a string for a JSON string literal (same approach as the
/// Chrome-trace exporter: quotes, backslashes, and all control characters
/// below U+0020; everything else — including non-ASCII — passes through
/// as UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for one flat JSON object.
///
/// ```
/// use stats_telemetry::json::{validate, JsonObject};
///
/// let mut o = JsonObject::new();
/// o.str("name", "swaptions \"native\"").u64("chunks", 28).bool("ok", true);
/// let line = o.finish();
/// assert!(validate(&line).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape(k));
        self
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (non-finite values serialize as `null`, which
    /// JSON requires).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-serialized JSON value (caller guarantees validity).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Validate that `s` is one well-formed JSON value (with optional
/// surrounding whitespace). Returns the byte offset and a message on the
/// first error.
///
/// This is a strict recursive-descent parser over the JSON grammar —
/// enough to let tests assert that everything the workbench emits
/// (event lines, snapshots, `stats run --json`, Chrome traces) parses.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(escape("\u{1}\u{1f}"), "\\u0001\\u001f");
        assert_eq!(escape("λ→中"), "λ→中");
    }

    #[test]
    fn object_builder_produces_valid_json() {
        let mut o = JsonObject::new();
        o.str("s", "va\"l\\ue\n")
            .u64("n", 42)
            .f64("f", 1.5)
            .f64("nan", f64::NAN)
            .bool("b", false)
            .raw("arr", "[1,2,3]");
        let line = o.finish();
        validate(&line).unwrap();
        assert!(line.contains("\"nan\":null"));
        assert!(line.contains("\"arr\":[1,2,3]"));
    }

    #[test]
    fn empty_object_is_valid() {
        let line = JsonObject::new().finish();
        assert_eq!(line, "{}");
        validate(&line).unwrap();
    }

    #[test]
    fn validator_accepts_real_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            "\"a\\u00e9\"",
            "{\"a\":[1,{\"b\":null}],\"c\":\"x\"}",
            "  [true, false]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1,}",
            "\"unterminated",
            "\"raw\ncontrol\"",
            "01x",
            "1.",
            "1e",
            "{\"a\":1}{",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn escape_then_validate_round_trip_for_hostile_strings() {
        for hostile in [
            "quote \" backslash \\ newline \n",
            "\\\\\\",
            "\\\"\\",
            "\u{0}\u{1}\u{2}\u{1f}",
            "unicode λ→中 😀",
            "trailing backslash \\",
        ] {
            let line = format!("{{\"k\":\"{}\"}}", escape(hostile));
            validate(&line).unwrap_or_else(|e| panic!("{hostile:?}: {e}"));
        }
    }
}
