//! The sink the runtimes record into, and the snapshots read out of it.

use crate::counters::{Counter, MetricsCore, COUNTERS};
use crate::events::{Event, EventLog};
use crate::json::JsonObject;
use crate::profiler::Profiler;
use stats_trace::{Category, Cycles, CATEGORIES};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-[`Category`] span accounting recorded by the simulated runtime at
/// task-graph lowering time; reconciles 1:1 against the post-mortem
/// trace (one span per task, identical cycles).
#[derive(Debug, Default)]
struct CategoryCounters {
    spans: [AtomicU64; CATEGORIES.len()],
    cycles: [AtomicU64; CATEGORIES.len()],
}

fn category_index(category: Category) -> usize {
    CATEGORIES
        .iter()
        .position(|c| *c == category)
        .expect("category listed in CATEGORIES")
}

/// One category's aggregate in a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategorySnapshot {
    /// The trace category.
    pub category: Category,
    /// Number of spans recorded.
    pub spans: u64,
    /// Total cycles recorded.
    pub cycles: u64,
}

/// The telemetry handle: lock-free counters, a queue-depth gauge, span
/// accounting, and an optional JSONL event log.
///
/// A `&TelemetrySink` is `Sync` and is shared by reference across worker
/// threads; recording is wait-free on the counter path.
#[derive(Debug)]
pub struct TelemetrySink {
    metrics: MetricsCore,
    categories: CategoryCounters,
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
    events: Option<EventLog>,
    profiler: Option<Profiler>,
}

impl TelemetrySink {
    /// A sink sized for `workers` concurrent recorders (one counter
    /// shard each), with no event log.
    pub fn new(workers: usize) -> Self {
        TelemetrySink {
            metrics: MetricsCore::new(workers),
            categories: CategoryCounters::default(),
            queue_depth: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            events: None,
            profiler: None,
        }
    }

    /// Attach a JSONL event log writing to `writer`.
    #[must_use]
    pub fn with_event_writer(mut self, writer: Box<dyn Write + Send>) -> Self {
        self.events = Some(EventLog::new(writer));
        self
    }

    /// Attach a wall-clock span profiler. Runtimes that see a profiler
    /// on their sink record spans into it; without one the span hooks
    /// are a single `Option` check (the counters-only path is
    /// unchanged).
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// The attached profiler, if any.
    #[inline]
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Number of counter shards.
    pub fn workers(&self) -> usize {
        self.metrics.workers()
    }

    /// Record `n` occurrences of `counter` for `worker` (lock-free).
    #[inline]
    pub fn add(&self, worker: usize, counter: Counter, n: u64) {
        self.metrics.add(worker, counter, n);
    }

    /// Record one occurrence of `counter` for `worker` (lock-free).
    #[inline]
    pub fn incr(&self, worker: usize, counter: Counter) {
        self.metrics.add(worker, counter, 1);
    }

    /// A work item entered the coordinator's validation queue; updates
    /// the depth gauge and its high-water mark.
    #[inline]
    pub fn queue_enter(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// A work item left the validation queue.
    #[inline]
    pub fn queue_leave(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record one trace span of `category` lasting `cycles`.
    #[inline]
    pub fn record_span(&self, category: Category, cycles: Cycles) {
        let i = category_index(category);
        self.categories.spans[i].fetch_add(1, Ordering::Relaxed);
        self.categories.cycles[i].fetch_add(cycles.get(), Ordering::Relaxed);
    }

    /// Emit a structured event if an event log is attached (no-op
    /// otherwise, so instrumented code needs no conditionals).
    pub fn event(&self, event: &Event) {
        if let Some(log) = &self.events {
            log.emit(event);
        }
    }

    /// Whether an event log is attached.
    pub fn has_event_log(&self) -> bool {
        self.events.is_some()
    }

    /// Flush the event log, if any.
    pub fn flush(&self) {
        if let Some(log) = &self.events {
            log.flush();
        }
    }

    /// Aggregate all counters into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let (per_worker, consistent) = self.metrics.read_consistent();
        let mut totals = [0u64; COUNTERS.len()];
        for row in &per_worker {
            for (t, v) in totals.iter_mut().zip(row) {
                *t += v;
            }
        }
        let categories = CATEGORIES
            .iter()
            .map(|&category| {
                let i = category_index(category);
                CategorySnapshot {
                    category,
                    spans: self.categories.spans[i].load(Ordering::Relaxed),
                    cycles: self.categories.cycles[i].load(Ordering::Relaxed),
                }
            })
            .filter(|c| c.spans > 0 || c.cycles > 0)
            .collect();
        Snapshot {
            totals,
            per_worker,
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            categories,
            consistent,
            events_emitted: self.events.as_ref().map_or(0, EventLog::emitted),
            events_dropped: self.events.as_ref().map_or(0, EventLog::dropped),
        }
    }
}

/// A point-in-time aggregate of a [`TelemetrySink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    totals: [u64; COUNTERS.len()],
    per_worker: Vec<[u64; COUNTERS.len()]>,
    /// Highest validation-queue depth observed.
    pub queue_high_water: u64,
    /// Per-category span accounting (categories with activity only).
    pub categories: Vec<CategorySnapshot>,
    /// Whether the double-read converged (always true once quiesced).
    pub consistent: bool,
    /// Event-log lines written.
    pub events_emitted: u64,
    /// Event-log lines lost to I/O errors.
    pub events_dropped: u64,
}

impl Snapshot {
    /// Total of `counter` across all workers.
    pub fn get(&self, counter: Counter) -> u64 {
        self.totals[COUNTERS
            .iter()
            .position(|c| *c == counter)
            .expect("counter listed in COUNTERS")]
    }

    /// `counter` for one worker shard.
    pub fn worker(&self, worker: usize, counter: Counter) -> u64 {
        self.per_worker[worker][COUNTERS
            .iter()
            .position(|c| *c == counter)
            .expect("counter listed in COUNTERS")]
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Span count recorded for `category` (0 when inactive).
    pub fn category_spans(&self, category: Category) -> u64 {
        self.categories
            .iter()
            .find(|c| c.category == category)
            .map_or(0, |c| c.spans)
    }

    /// Cycle total recorded for `category` (0 when inactive).
    pub fn category_cycles(&self, category: Category) -> u64 {
        self.categories
            .iter()
            .find(|c| c.category == category)
            .map_or(0, |c| c.cycles)
    }

    /// Commit rate over speculative chunks; 1.0 when nothing speculated.
    pub fn commit_rate(&self) -> f64 {
        let committed = self.get(Counter::ChunksCommitted);
        let aborted = self.get(Counter::ChunksAborted);
        if committed + aborted == 0 {
            return 1.0;
        }
        committed as f64 / (committed + aborted) as f64
    }

    /// Serialize the snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        for (counter, total) in COUNTERS.iter().zip(&self.totals) {
            o.u64(counter.name(), *total);
        }
        o.u64("queue_high_water", self.queue_high_water)
            .f64("commit_rate", self.commit_rate())
            .bool("consistent", self.consistent)
            .u64("events_emitted", self.events_emitted)
            .u64("events_dropped", self.events_dropped);
        if !self.categories.is_empty() {
            let mut cats = String::from("{");
            for (i, c) in self.categories.iter().enumerate() {
                if i > 0 {
                    cats.push(',');
                }
                cats.push_str(&format!(
                    "\"{}\":{{\"spans\":{},\"cycles\":{}}}",
                    c.category.name(),
                    c.spans,
                    c.cycles
                ));
            }
            cats.push('}');
            o.raw("categories", &cats);
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn counters_aggregate_across_workers() {
        let sink = TelemetrySink::new(4);
        sink.incr(0, Counter::ChunksStarted);
        sink.incr(1, Counter::ChunksStarted);
        sink.incr(1, Counter::ChunksCommitted);
        sink.add(2, Counter::StateCopies, 5);
        let s = sink.snapshot();
        assert_eq!(s.get(Counter::ChunksStarted), 2);
        assert_eq!(s.worker(1, Counter::ChunksStarted), 1);
        assert_eq!(s.get(Counter::StateCopies), 5);
        assert_eq!(s.workers(), 4);
        assert!(s.consistent);
    }

    #[test]
    fn queue_gauge_tracks_high_water() {
        let sink = TelemetrySink::new(1);
        sink.queue_enter();
        sink.queue_enter();
        sink.queue_enter();
        sink.queue_leave();
        sink.queue_enter();
        let s = sink.snapshot();
        assert_eq!(s.queue_high_water, 3);
    }

    #[test]
    fn category_accounting_round_trips() {
        let sink = TelemetrySink::new(1);
        sink.record_span(Category::Sync, Cycles(10));
        sink.record_span(Category::Sync, Cycles(5));
        sink.record_span(Category::ChunkCompute, Cycles(100));
        let s = sink.snapshot();
        assert_eq!(s.category_spans(Category::Sync), 2);
        assert_eq!(s.category_cycles(Category::Sync), 15);
        assert_eq!(s.category_spans(Category::ChunkCompute), 1);
        assert_eq!(s.category_spans(Category::Setup), 0);
        // Inactive categories are omitted from the snapshot listing.
        assert!(s.categories.iter().all(|c| c.spans > 0 || c.cycles > 0));
    }

    #[test]
    fn commit_rate_definition() {
        let sink = TelemetrySink::new(1);
        assert_eq!(sink.snapshot().commit_rate(), 1.0);
        sink.add(0, Counter::ChunksCommitted, 3);
        sink.add(0, Counter::ChunksAborted, 1);
        assert!((sink.snapshot().commit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_is_valid_and_complete() {
        let buf = SharedBuf::default();
        let sink = TelemetrySink::new(2).with_event_writer(Box::new(buf.clone()));
        sink.incr(0, Counter::ChunksStarted);
        sink.record_span(Category::Setup, Cycles(42));
        sink.event(&Event::ChunkStarted { chunk: 0, len: 10 });
        sink.queue_enter();
        let s = sink.snapshot();
        let json = s.to_json();
        validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"chunks_started\":1"));
        assert!(json.contains("\"queue_high_water\":1"));
        assert!(json.contains("\"setup\":{\"spans\":1,\"cycles\":42}"));
        assert!(json.contains("\"events_emitted\":1"));
    }

    #[test]
    fn events_are_optional() {
        let sink = TelemetrySink::new(1);
        assert!(!sink.has_event_log());
        // No-op, must not panic.
        sink.event(&Event::ChunkCommitted { chunk: 0 });
        sink.flush();
        assert_eq!(sink.snapshot().events_emitted, 0);
    }
}
