//! The single sanctioned wall-clock read point.
//!
//! Profiling the pooled runtime needs wall-clock timestamps, but the
//! determinism contract forbids ambient time from leaking into protocol
//! decisions (analyzer rules ND002/ND012). The compromise is a choke
//! point: every runtime timestamp is taken through [`monotonic_ns`],
//! which reads a process-wide monotonic clock relative to a lazily
//! initialised epoch. Hot paths outside this module never name
//! `Instant`/`SystemTime` directly — ND012 enforces exactly that — so
//! auditing "can time influence a decision?" reduces to auditing the
//! callers of this one function.
//!
//! The epoch is pinned on first use, so timestamps are small, strictly
//! comparable across threads (same `Instant` basis), and cheap to pack
//! into profiler records.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide profiling epoch (first call).
///
/// Monotonic and cross-thread comparable. Used only for observability:
/// profiler spans, elapsed-time reporting. Never feed this into
/// anything that decides protocol behaviour.
#[inline]
pub fn monotonic_ns() -> u64 {
    // stats-analyzer: allow(ND002): telemetry clock abstraction — the one sanctioned wall-clock read; timestamps feed profiling/reporting only, never protocol decisions.
    let now = Instant::now();
    let epoch = *EPOCH.get_or_init(|| now);
    now.duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut prev = monotonic_ns();
        for _ in 0..1000 {
            let t = monotonic_ns();
            assert!(t >= prev, "clock went backwards: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn clock_advances() {
        let t0 = monotonic_ns();
        // Burn a little real time; a spin keeps the test sleep-free.
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let t1 = monotonic_ns();
        assert!(t1 > t0, "clock did not advance across real work");
    }

    #[test]
    fn cross_thread_timestamps_share_the_epoch() {
        let before = monotonic_ns();
        let from_thread = std::thread::spawn(monotonic_ns).join().unwrap();
        let after = monotonic_ns();
        assert!(before <= from_thread && from_thread <= after);
    }
}
