//! A mergeable streaming quantile/histogram sketch for span durations.
//!
//! The profiler needs per-category latency distributions (p50/p90/p99 of
//! span durations) without retaining every span. This is a DDSketch-style
//! sketch over `u64` nanosecond values: logarithmic buckets with growth
//! factor `gamma = (1 + alpha) / (1 - alpha)`, which guarantees every
//! reported quantile is within *relative* error `alpha` of the true
//! value (plus integer rounding). Bucket counts add, so merging two
//! sketches is exact and associative — the property tests in
//! `tests/sketch_props.rs` pin merge associativity, the rank-error
//! bound, and quantile monotonicity under arbitrary insertion orders.

use std::collections::BTreeMap;

/// Default relative-error target: quantiles within 1% of the true value.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// A mergeable log-bucketed quantile sketch over `u64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    ln_gamma: f64,
    /// Count per log-bucket index; bucket `i` covers `(gamma^(i-1), gamma^i]`.
    buckets: BTreeMap<i64, u64>,
    /// Zero is outside every log bucket and gets its own counter.
    zeros: u64,
    count: u64,
    min: u64,
    max: u64,
}

impl QuantileSketch {
    /// A sketch with the default 1% relative-error target.
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_ALPHA)
    }

    /// A sketch with relative-error target `alpha` (0 < alpha < 1).
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zeros: 0,
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The configured relative-error target.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of values inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest inserted value (None when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest inserted value (None when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    fn bucket_of(&self, value: u64) -> i64 {
        debug_assert!(value >= 1);
        // ceil(ln(v) / ln(gamma)); v = 1 maps to bucket 0.
        ((value as f64).ln() / self.ln_gamma).ceil() as i64
    }

    /// Insert one value.
    pub fn insert(&mut self, value: u64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value == 0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(self.bucket_of(value)).or_insert(0) += 1;
        }
    }

    /// Merge `other` into `self`. Panics if the error targets differ —
    /// bucket boundaries would not line up and the merge would be lossy.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different alpha"
        );
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The value at quantile `q` in [0, 1], within relative error
    /// `alpha` of the true order statistic (plus integer rounding).
    /// Returns `None` when the sketch is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic we are after (0-based).
        let rank = ((q * (self.count - 1) as f64).floor() as u64).min(self.count - 1);
        if rank < self.zeros {
            return Some(0);
        }
        let mut seen = self.zeros;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen > rank {
                // Midpoint estimate of bucket (gamma^(b-1), gamma^b]:
                // 2*gamma^b / (gamma + 1), within alpha of any member.
                let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
                let upper = (bucket as f64 * self.ln_gamma).exp();
                let est = 2.0 * upper / (gamma + 1.0);
                // Clamp to the observed range so estimates never stray
                // outside real data (keeps min/max quantiles exact-ish).
                let est = est.round().max(1.0);
                return Some((est as u64).clamp(self.min.max(1), self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty histogram buckets as `(upper_bound, count)` pairs in
    /// increasing order; a zero bucket appears as `(0, zeros)`.
    pub fn histogram(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        if self.zeros > 0 {
            out.push((0, self.zeros));
        }
        for (&bucket, &n) in &self.buckets {
            let upper = (bucket as f64 * self.ln_gamma).exp().round() as u64;
            out.push((upper.max(1), n));
        }
        out
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_value_is_recovered_exactly() {
        let mut s = QuantileSketch::new();
        s.insert(1_000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = s.quantile(q).unwrap();
            let err = (got as f64 - 1_000.0).abs() / 1_000.0;
            assert!(err <= s.alpha() + 1e-9, "q={q}: got {got}");
        }
    }

    #[test]
    fn quantiles_respect_relative_error_on_a_known_stream() {
        let mut s = QuantileSketch::new();
        for v in 1..=10_000u64 {
            s.insert(v);
        }
        for (q, truth) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = s.quantile(q).unwrap() as f64;
            let err = (got - truth as f64).abs() / truth as f64;
            assert!(
                err <= s.alpha() + 0.001,
                "q={q}: got {got}, want ~{truth}, err {err}"
            );
        }
    }

    #[test]
    fn zeros_are_tracked() {
        let mut s = QuantileSketch::new();
        s.insert(0);
        s.insert(0);
        s.insert(100);
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0).unwrap(), 100);
        assert_eq!(s.histogram()[0], (0, 2));
    }

    #[test]
    fn merge_matches_union_stream() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for v in 1..=500u64 {
            a.insert(v * 3);
            all.insert(v * 3);
        }
        for v in 1..=500u64 {
            b.insert(v * 7);
            all.insert(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merging_mismatched_alphas_panics() {
        let mut a = QuantileSketch::with_alpha(0.01);
        let b = QuantileSketch::with_alpha(0.02);
        a.merge(&b);
    }
}
