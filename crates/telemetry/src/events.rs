//! The structured JSONL event log.
//!
//! Every lifecycle event of a run — and every autotuner iteration —
//! becomes one JSON object on one line, stamped with a monotonic
//! sequence number so consumers can detect loss and reconstruct order
//! even when lines from concurrent workers interleave in the file.

use crate::json::JsonObject;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One telemetry event. Fields are primitives so the event vocabulary
/// stays independent of the runtime crates (which depend on this one).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A run entered the STATS region.
    RunStarted {
        /// Benchmark or scenario name.
        benchmark: String,
        /// Which runtime executes it (`"threaded"` or `"simulated"`).
        runtime: &'static str,
        /// Input-stream length.
        inputs: usize,
        /// Configured chunk count.
        chunks: usize,
        /// Configured lookback `k`.
        lookback: usize,
        /// Configured extra original states `m`.
        extra_states: usize,
        /// Master seed.
        seed: u64,
    },
    /// A chunk's (speculative or first) run began.
    ChunkStarted {
        /// Chunk index.
        chunk: usize,
        /// Inputs the chunk covers.
        len: usize,
    },
    /// Validation of a chunk's speculative state finished.
    ValidationFinished {
        /// The validated chunk.
        chunk: usize,
        /// `states_match` evaluations performed.
        comparisons: u64,
        /// Which original state matched (0 = producer's final state,
        /// `j` = replica `j-1`); absent on abort.
        matched_original: Option<usize>,
    },
    /// A chunk committed.
    ChunkCommitted {
        /// Chunk index.
        chunk: usize,
    },
    /// A breadth candidate won a chunk's commit check.
    CandidateCommitted {
        /// Chunk index.
        chunk: usize,
        /// Winning candidate index (0 is the primary alternative
        /// producer).
        candidate: usize,
        /// Which original state it matched (0 = producer's final state,
        /// `j` = replica `j-1`).
        original: usize,
    },
    /// A chunk aborted (re-execution follows).
    ChunkAborted {
        /// Chunk index.
        chunk: usize,
    },
    /// An aborted chunk's serialized re-execution finished.
    RerunFinished {
        /// Chunk index.
        chunk: usize,
    },
    /// One pool-scheduled segment of an aborted chunk's re-execution
    /// finished (overlapped abort recovery splits reruns into several).
    RerunSegmentFinished {
        /// Chunk index.
        chunk: usize,
        /// 0-based segment index within the rerun.
        segment: usize,
    },
    /// A fault-plan injection fired in a protocol task.
    FaultInjected {
        /// Chunk the faulted task belongs to (boundary chunk for
        /// replica replays).
        chunk: usize,
        /// Task class (`"chunk"`, `"replica"`, `"rerun"`, `"transfer"`).
        task: &'static str,
        /// Within-class slot: candidate, replica, or segment index.
        index: usize,
        /// 0-based attempt the injection fired on.
        attempt: usize,
        /// Injected fault kind (snake_case).
        kind: &'static str,
    },
    /// A faulted task's bounded-retry recovery cleared.
    RecoveryFinished {
        /// Chunk the recovered task belongs to.
        chunk: usize,
        /// Task class (`"chunk"`, `"replica"`, `"rerun"`, `"transfer"`).
        task: &'static str,
        /// Retries the recovery consumed.
        retries: usize,
    },
    /// The run left the STATS region.
    RunFinished {
        /// Committed chunk count (excludes chunk 0).
        committed: usize,
        /// Aborted chunk count.
        aborted: usize,
        /// Worker parallelism the run executed with: pool width for the
        /// pooled threaded runtime, chunk count for thread-per-chunk and
        /// for the simulated lowering (one virtual worker per chunk).
        workers: usize,
    },
    /// The autotuner evaluated one configuration.
    TuneIteration {
        /// 1-based evaluation index.
        iteration: usize,
        /// 0-based ask/tell round the evaluation belongs to.
        batch: usize,
        /// Configuration tried.
        chunks: usize,
        /// Lookback of the configuration.
        lookback: usize,
        /// Extra original states of the configuration.
        extra_states: usize,
        /// Whether inner TLP was combined.
        combine_inner_tlp: bool,
        /// Objective cost (lower is better).
        cost: f64,
        /// Best cost seen so far (including this one).
        best_cost: f64,
    },
    /// One ask/tell round of the batched autotuner finished: the
    /// searcher proposed `proposed` configurations, `evaluated` of them
    /// were fresh (first-seen) and ran the objective, the rest were
    /// answered from the result database.
    TuneBatch {
        /// 0-based ask/tell round index.
        batch: usize,
        /// Configurations the searcher proposed this round.
        proposed: usize,
        /// Fresh configurations that ran the objective.
        evaluated: usize,
        /// Proposals answered from the memoized result database.
        cache_hits: usize,
        /// Worker parallelism the batch was evaluated with (1 when
        /// tuning serially).
        workers: usize,
    },
    /// One tuning evaluation's run-level quality metrics (emitted by
    /// harnesses that re-run or inspect the evaluated configuration).
    TuneEvaluated {
        /// 1-based evaluation index.
        iteration: usize,
        /// Speedup of the evaluated configuration.
        speedup: f64,
        /// Output quality in `(0, 1]`.
        quality: f64,
    },
    /// A tuning session finished; the best configuration was re-run
    /// across several seeds to expose per-run variance (Touati-style
    /// statistical reporting).
    TuneFinished {
        /// Best chunk count.
        chunks: usize,
        /// Best lookback.
        lookback: usize,
        /// Best extra original states.
        extra_states: usize,
        /// Whether inner TLP was combined.
        combine_inner_tlp: bool,
        /// Seeds the best configuration was replayed over.
        seeds: usize,
        /// Mean speedup across those seeds.
        mean_speedup: f64,
        /// Population variance of the speedup across those seeds.
        speedup_variance: f64,
    },
    /// A final counter snapshot, serialized by the caller.
    Snapshot {
        /// The snapshot's JSON rendering ([`crate::Snapshot::to_json`]).
        json: String,
    },
    /// A free-form runtime diagnostic (the telemetry-log replacement for
    /// `println!` in hot paths — see analyzer rule ND006).
    Diagnostic {
        /// Message text.
        message: String,
    },
}

impl Event {
    /// Stable `type` tag of the serialized line.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "run_started",
            Event::ChunkStarted { .. } => "chunk_started",
            Event::ValidationFinished { .. } => "validation_finished",
            Event::ChunkCommitted { .. } => "chunk_committed",
            Event::CandidateCommitted { .. } => "candidate_committed",
            Event::ChunkAborted { .. } => "chunk_aborted",
            Event::RerunFinished { .. } => "rerun_finished",
            Event::RerunSegmentFinished { .. } => "rerun_segment_finished",
            Event::FaultInjected { .. } => "fault_injected",
            Event::RecoveryFinished { .. } => "recovery_finished",
            Event::RunFinished { .. } => "run_finished",
            Event::TuneIteration { .. } => "tune_iteration",
            Event::TuneBatch { .. } => "tune_batch",
            Event::TuneEvaluated { .. } => "tune_evaluated",
            Event::TuneFinished { .. } => "tune_finished",
            Event::Snapshot { .. } => "snapshot",
            Event::Diagnostic { .. } => "diagnostic",
        }
    }

    /// Serialize as one JSON line carrying sequence number `seq`.
    pub fn to_json_line(&self, seq: u64) -> String {
        let mut o = JsonObject::new();
        o.u64("seq", seq).str("type", self.kind());
        match self {
            Event::RunStarted {
                benchmark,
                runtime,
                inputs,
                chunks,
                lookback,
                extra_states,
                seed,
            } => {
                o.str("benchmark", benchmark)
                    .str("runtime", runtime)
                    .u64("inputs", *inputs as u64)
                    .u64("chunks", *chunks as u64)
                    .u64("lookback", *lookback as u64)
                    .u64("extra_states", *extra_states as u64)
                    .u64("seed", *seed);
            }
            Event::ChunkStarted { chunk, len } => {
                o.u64("chunk", *chunk as u64).u64("len", *len as u64);
            }
            Event::ValidationFinished {
                chunk,
                comparisons,
                matched_original,
            } => {
                o.u64("chunk", *chunk as u64)
                    .u64("comparisons", *comparisons);
                match matched_original {
                    Some(j) => o.u64("matched_original", *j as u64),
                    None => o.raw("matched_original", "null"),
                };
            }
            Event::ChunkCommitted { chunk }
            | Event::ChunkAborted { chunk }
            | Event::RerunFinished { chunk } => {
                o.u64("chunk", *chunk as u64);
            }
            Event::CandidateCommitted {
                chunk,
                candidate,
                original,
            } => {
                o.u64("chunk", *chunk as u64)
                    .u64("candidate", *candidate as u64)
                    .u64("original", *original as u64);
            }
            Event::RerunSegmentFinished { chunk, segment } => {
                o.u64("chunk", *chunk as u64)
                    .u64("segment", *segment as u64);
            }
            Event::FaultInjected {
                chunk,
                task,
                index,
                attempt,
                kind,
            } => {
                o.u64("chunk", *chunk as u64)
                    .str("task", task)
                    .u64("index", *index as u64)
                    .u64("attempt", *attempt as u64)
                    .str("kind", kind);
            }
            Event::RecoveryFinished {
                chunk,
                task,
                retries,
            } => {
                o.u64("chunk", *chunk as u64)
                    .str("task", task)
                    .u64("retries", *retries as u64);
            }
            Event::RunFinished {
                committed,
                aborted,
                workers,
            } => {
                o.u64("committed", *committed as u64)
                    .u64("aborted", *aborted as u64)
                    .u64("workers", *workers as u64);
            }
            Event::TuneIteration {
                iteration,
                batch,
                chunks,
                lookback,
                extra_states,
                combine_inner_tlp,
                cost,
                best_cost,
            } => {
                o.u64("iteration", *iteration as u64)
                    .u64("batch", *batch as u64)
                    .u64("chunks", *chunks as u64)
                    .u64("lookback", *lookback as u64)
                    .u64("extra_states", *extra_states as u64)
                    .bool("combine_inner_tlp", *combine_inner_tlp)
                    .f64("cost", *cost)
                    .f64("best_cost", *best_cost);
            }
            Event::TuneBatch {
                batch,
                proposed,
                evaluated,
                cache_hits,
                workers,
            } => {
                o.u64("batch", *batch as u64)
                    .u64("proposed", *proposed as u64)
                    .u64("evaluated", *evaluated as u64)
                    .u64("cache_hits", *cache_hits as u64)
                    .u64("workers", *workers as u64);
            }
            Event::TuneEvaluated {
                iteration,
                speedup,
                quality,
            } => {
                o.u64("iteration", *iteration as u64)
                    .f64("speedup", *speedup)
                    .f64("quality", *quality);
            }
            Event::TuneFinished {
                chunks,
                lookback,
                extra_states,
                combine_inner_tlp,
                seeds,
                mean_speedup,
                speedup_variance,
            } => {
                o.u64("chunks", *chunks as u64)
                    .u64("lookback", *lookback as u64)
                    .u64("extra_states", *extra_states as u64)
                    .bool("combine_inner_tlp", *combine_inner_tlp)
                    .u64("seeds", *seeds as u64)
                    .f64("mean_speedup", *mean_speedup)
                    .f64("speedup_variance", *speedup_variance);
            }
            Event::Snapshot { json } => {
                o.raw("snapshot", json);
            }
            Event::Diagnostic { message } => {
                o.str("message", message);
            }
        }
        o.finish()
    }
}

/// A thread-safe JSONL writer with monotonic sequence numbers.
///
/// Writes are serialized by a mutex — the event vocabulary is per-chunk,
/// not per-update, so the log is far off the hot path; counters cover
/// the per-update volume lock-free.
pub struct EventLog {
    writer: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
    emitted: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventLog {
    /// Wrap a writer (a file, a buffer, `std::io::sink()`, …).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        EventLog {
            writer: Mutex::new(writer),
            seq: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Emit one event as one line. I/O failures never panic a worker:
    /// the line is counted as dropped instead (sequence numbers still
    /// advance, so a gap is visible to consumers).
    pub fn emit(&self, event: &Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let line = event.to_json_line(seq);
        let mut w = self.writer.lock().expect("event log writer");
        match writeln!(w, "{line}") {
            Ok(()) => {
                self.emitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Lines written successfully.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Lines lost to I/O errors.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Flush the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().expect("event log writer").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use std::sync::Arc;

    /// A `Write` that appends into shared memory (test helper).
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStarted {
                benchmark: "swap\"tions\n".into(),
                runtime: "threaded",
                inputs: 100,
                chunks: 4,
                lookback: 8,
                extra_states: 2,
                seed: 42,
            },
            Event::ChunkStarted { chunk: 1, len: 25 },
            Event::ValidationFinished {
                chunk: 1,
                comparisons: 3,
                matched_original: Some(2),
            },
            Event::ValidationFinished {
                chunk: 2,
                comparisons: 4,
                matched_original: None,
            },
            Event::ChunkCommitted { chunk: 1 },
            Event::CandidateCommitted {
                chunk: 1,
                candidate: 1,
                original: 2,
            },
            Event::ChunkAborted { chunk: 2 },
            Event::RerunFinished { chunk: 2 },
            Event::RerunSegmentFinished {
                chunk: 2,
                segment: 1,
            },
            Event::FaultInjected {
                chunk: 2,
                task: "replica",
                index: 1,
                attempt: 0,
                kind: "poisoned_snapshot",
            },
            Event::RecoveryFinished {
                chunk: 2,
                task: "replica",
                retries: 1,
            },
            Event::RunFinished {
                committed: 2,
                aborted: 1,
                workers: 4,
            },
            Event::TuneIteration {
                iteration: 1,
                batch: 0,
                chunks: 28,
                lookback: 16,
                extra_states: 2,
                combine_inner_tlp: false,
                cost: 123.0,
                best_cost: 123.0,
            },
            Event::TuneBatch {
                batch: 0,
                proposed: 8,
                evaluated: 6,
                cache_hits: 2,
                workers: 4,
            },
            Event::TuneEvaluated {
                iteration: 1,
                speedup: 9.5,
                quality: 0.98,
            },
            Event::TuneFinished {
                chunks: 28,
                lookback: 16,
                extra_states: 2,
                combine_inner_tlp: true,
                seeds: 5,
                mean_speedup: 9.4,
                speedup_variance: 0.02,
            },
            Event::Snapshot {
                json: "{\"x\":1}".into(),
            },
            Event::Diagnostic {
                message: "queue depth spiked\tto 7".into(),
            },
        ]
    }

    #[test]
    fn every_event_serializes_to_valid_json() {
        for (i, e) in sample_events().iter().enumerate() {
            let line = e.to_json_line(i as u64);
            validate(&line).unwrap_or_else(|err| panic!("{e:?}: {err}\n{line}"));
            assert!(line.contains(&format!("\"seq\":{i}")));
            assert!(line.contains(&format!("\"type\":\"{}\"", e.kind())));
        }
    }

    #[test]
    fn kinds_are_unique_per_variant() {
        let mut kinds: Vec<_> = sample_events().iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        // The sample list covers every variant (one of them twice).
        assert_eq!(
            kinds,
            vec![
                "candidate_committed",
                "chunk_aborted",
                "chunk_committed",
                "chunk_started",
                "diagnostic",
                "fault_injected",
                "recovery_finished",
                "rerun_finished",
                "rerun_segment_finished",
                "run_finished",
                "run_started",
                "snapshot",
                "tune_batch",
                "tune_evaluated",
                "tune_finished",
                "tune_iteration",
                "validation_finished",
            ]
        );
    }

    #[test]
    fn log_lines_are_sequenced_and_parseable() {
        let buf = SharedBuf::default();
        let log = EventLog::new(Box::new(buf.clone()));
        for e in sample_events() {
            log.emit(&e);
        }
        log.flush();
        assert_eq!(log.emitted(), sample_events().len() as u64);
        assert_eq!(log.dropped(), 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for (i, line) in lines.iter().enumerate() {
            validate(line).unwrap();
            assert!(line.starts_with(&format!("{{\"seq\":{i},")));
        }
    }

    #[test]
    fn concurrent_emitters_never_interleave_bytes() {
        let buf = SharedBuf::default();
        let log = EventLog::new(Box::new(buf.clone()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..200 {
                        log.emit(&Event::ChunkStarted {
                            chunk: t * 1_000 + i,
                            len: 1,
                        });
                    }
                });
            }
        });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let mut seqs = Vec::new();
        for line in text.lines() {
            validate(line).unwrap();
            let seq: u64 = line
                .strip_prefix("{\"seq\":")
                .and_then(|r| r.split(',').next())
                .and_then(|n| n.parse().ok())
                .expect("leading seq field");
            seqs.push(seq);
        }
        seqs.sort_unstable();
        assert_eq!(seqs, (0..800).collect::<Vec<u64>>());
    }

    #[test]
    fn failing_writer_counts_drops() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let log = EventLog::new(Box::new(Failing));
        log.emit(&Event::ChunkStarted { chunk: 0, len: 1 });
        log.emit(&Event::ChunkCommitted { chunk: 0 });
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.emitted(), 0);
    }
}
