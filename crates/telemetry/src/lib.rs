//! # stats-telemetry
//!
//! Live observability for the STATS runtimes.
//!
//! The paper's methodology is post-mortem: §V-B attributes speedup loss
//! from archived traces. That works for the deterministic simulated
//! runtime, but the threaded runtime and the autotuner run in real time
//! and need a way to watch commit/abort rates, queue depths, and
//! mispeculation *while a run is in flight*. This crate provides that
//! layer, in the spirit of TASKPROF's low-overhead on-the-fly profiling:
//!
//! * [`MetricsCore`] — sharded per-worker atomic counters with lock-free
//!   hot-path recording ([`Counter`] names the protocol events tracked).
//! * [`EventLog`] / [`Event`] — a structured JSONL event log with
//!   monotonic sequence numbers (run/chunk/validation lifecycle plus
//!   autotuner iterations), hand-serialized with the same escaping
//!   approach as `stats-trace`'s Chrome exporter so no JSON dependency is
//!   needed.
//! * [`TelemetrySink`] — the handle the runtimes accept: counters, a
//!   queue-depth gauge with a high-water mark, per-[`Category`] span
//!   accounting that reconciles exactly with post-mortem traces, and the
//!   optional event log.
//! * [`export`] — Prometheus-style text exposition, a folded-stacks
//!   (flamegraph-compatible) profile derived from trace category spans,
//!   and a human-readable metrics table.
//! * [`json`] — the escaping helpers and a small validating parser used
//!   to test every JSON surface this workspace emits.
//! * [`clock`] — the single sanctioned wall-clock read point
//!   (`monotonic_ns`); runtime hot paths never name `Instant` directly
//!   (analyzer rule ND012).
//! * [`profiler`] — TASKPROF-style wall-clock span capture on the
//!   pooled runtime (per-worker cache-line-sharded rings), plus the
//!   §V-B critical-path attribution and what-if re-scheduler over the
//!   captured span graph.
//! * [`sketch`] — a mergeable DDSketch-style quantile/histogram sketch
//!   for span-duration distributions.
//!
//! Consistency model: counter recording is a single relaxed atomic add on
//! a per-worker shard — no locks, no false sharing. [`TelemetrySink::snapshot`]
//! aggregates with an epoch-style double-read: it re-reads all shards until
//! two consecutive passes agree (the snapshot then reflects one instant)
//! and otherwise marks the snapshot as torn. After a run has quiesced,
//! snapshots are exact and reconcile with the run's trace.
//!
//! ```
//! use stats_telemetry::{Counter, TelemetrySink};
//!
//! let sink = TelemetrySink::new(4);
//! sink.incr(0, Counter::ChunksStarted);
//! sink.add(1, Counter::StateComparisons, 3);
//! let snap = sink.snapshot();
//! assert_eq!(snap.get(Counter::ChunksStarted), 1);
//! assert_eq!(snap.get(Counter::StateComparisons), 3);
//! assert!(snap.consistent);
//! ```

pub mod clock;
pub mod counters;
pub mod events;
pub mod export;
pub mod json;
pub mod profiler;
mod sink;
pub mod sketch;

pub use counters::{Counter, MetricsCore, COUNTERS};
pub use events::{Event, EventLog};
pub use profiler::{Estimate, Profiler, WallAttribution, WallLoss, WallProfile, WallSpan};
pub use sink::{CategorySnapshot, Snapshot, TelemetrySink};

// Re-exported so downstream integration code can name trace categories
// and cycle quantities without a direct stats-trace dependency.
pub use stats_trace::{Category, Cycles};
