//! The sharded atomic metrics core.
//!
//! One [`Shard`] per worker, one cache line per shard, one relaxed
//! `fetch_add` per recording — the hot path never takes a lock and never
//! contends with other workers. Aggregation happens only at snapshot
//! time, which double-reads all shards until two passes agree so a
//! snapshot taken over a quiesced core is exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// A protocol counter tracked per worker.
///
/// Time-valued counters (`BusyTime`, `IdleTime`) are in nanoseconds on
/// the threaded runtime and in simulated cycles on the simulated runtime;
/// everything else is a plain event count. Both runtimes record the same
/// protocol points, so counters from a threaded run reconcile with the
/// semantic layer and counters from a simulated run reconcile with its
/// post-mortem trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Counter {
    /// Chunks whose (speculative or first) run began.
    ChunksStarted,
    /// Chunks whose speculation validated and committed.
    ChunksCommitted,
    /// Chunks whose speculation aborted.
    ChunksAborted,
    /// Serialized re-executions after an abort.
    Reruns,
    /// Pool-scheduled segments the reruns split into (equals `Reruns`
    /// unless overlapped abort recovery is on).
    RerunSegments,
    /// Breadth candidates launched (alternative producer + speculative
    /// run pipelines); equals the speculative chunk count at breadth 1.
    SpecCandidates,
    /// Commits won by a non-primary breadth candidate (candidate index
    /// above 0); always zero at breadth 1.
    CandidateHits,
    /// Extra original states generated for validation (§II-B).
    ReplicasValidated,
    /// Computational-state clones at protocol points (speculative-state
    /// hand-off, replica snapshots, true-state transfer on abort).
    StateCopies,
    /// `states_match` evaluations during validation.
    StateComparisons,
    /// Bytes the protocol *logically* replicated (state size × copy
    /// events) — invariant under the snapshot strategy.
    StateBytesLogical,
    /// Bytes *physically* copied: full clones under the deep strategy,
    /// inline scalars plus copy-on-write materializations under `cow`.
    StateBytesCopied,
    /// Worker time spent computing (ns on threads, cycles simulated).
    BusyTime,
    /// Worker time spent waiting on the protocol (ns on threads, cycles
    /// simulated).
    IdleTime,
    /// Fault-plan injections that fired (one per failed attempt).
    FaultsInjected,
    /// Retries the fault-recovery guards scheduled (bounded per site).
    RetriesScheduled,
    /// Pool workers doomed by injected worker-death faults.
    WorkersLost,
}

/// All counters, in presentation order.
pub const COUNTERS: [Counter; 17] = [
    Counter::ChunksStarted,
    Counter::ChunksCommitted,
    Counter::ChunksAborted,
    Counter::Reruns,
    Counter::RerunSegments,
    Counter::SpecCandidates,
    Counter::CandidateHits,
    Counter::ReplicasValidated,
    Counter::StateCopies,
    Counter::StateComparisons,
    Counter::StateBytesLogical,
    Counter::StateBytesCopied,
    Counter::BusyTime,
    Counter::IdleTime,
    Counter::FaultsInjected,
    Counter::RetriesScheduled,
    Counter::WorkersLost,
];

impl Counter {
    /// Stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ChunksStarted => "chunks_started",
            Counter::ChunksCommitted => "chunks_committed",
            Counter::ChunksAborted => "chunks_aborted",
            Counter::Reruns => "reruns",
            Counter::RerunSegments => "rerun_segments",
            Counter::SpecCandidates => "spec_candidates",
            Counter::CandidateHits => "candidate_hits",
            Counter::ReplicasValidated => "replicas_validated",
            Counter::StateCopies => "state_copies",
            Counter::StateComparisons => "state_comparisons",
            Counter::StateBytesLogical => "state_bytes_logical",
            Counter::StateBytesCopied => "state_bytes_copied",
            Counter::BusyTime => "busy_time",
            Counter::IdleTime => "idle_time",
            Counter::FaultsInjected => "faults_injected",
            Counter::RetriesScheduled => "retries_scheduled",
            Counter::WorkersLost => "workers_lost",
        }
    }

    fn index(self) -> usize {
        COUNTERS
            .iter()
            .position(|c| *c == self)
            .expect("counter listed in COUNTERS")
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One worker's counters, padded to a cache line so concurrent workers
/// never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard {
    counters: [AtomicU64; COUNTERS.len()],
}

impl Shard {
    fn read(&self) -> [u64; COUNTERS.len()] {
        let mut out = [0u64; COUNTERS.len()];
        for (slot, counter) in out.iter_mut().zip(&self.counters) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }
}

/// The lock-free sharded counter store.
#[derive(Debug)]
pub struct MetricsCore {
    shards: Box<[Shard]>,
}

impl MetricsCore {
    /// A core with one shard per expected worker (at least one).
    pub fn new(workers: usize) -> Self {
        let mut shards = Vec::new();
        shards.resize_with(workers.max(1), Shard::default);
        MetricsCore {
            shards: shards.into_boxed_slice(),
        }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Record `n` occurrences of `counter` on `worker`'s shard. Lock-free:
    /// one relaxed `fetch_add`. Worker ids beyond the shard count wrap.
    #[inline]
    pub fn add(&self, worker: usize, counter: Counter, n: u64) {
        self.shards[worker % self.shards.len()].counters[counter.index()]
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Read every shard once.
    fn read_pass(&self) -> Vec<[u64; COUNTERS.len()]> {
        self.shards.iter().map(Shard::read).collect()
    }

    /// Epoch-style consistent read: re-read all shards until two
    /// consecutive passes agree (then the values all held simultaneously
    /// at some instant between the passes). Returns the per-worker matrix
    /// and whether agreement was reached; under sustained concurrent
    /// writes the last pass is returned with `false` — each value is
    /// still individually exact and monotone.
    pub fn read_consistent(&self) -> (Vec<[u64; COUNTERS.len()]>, bool) {
        let mut prev = self.read_pass();
        for _ in 0..8 {
            let next = self.read_pass();
            if next == prev {
                return (next, true);
            }
            prev = next;
        }
        (prev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn counter_names_unique_and_indexed() {
        let mut names: Vec<_> = COUNTERS.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTERS.len());
        for (i, c) in COUNTERS.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(format!("{c}"), c.name());
        }
    }

    #[test]
    fn add_and_read_single_thread() {
        let m = MetricsCore::new(3);
        m.add(0, Counter::ChunksStarted, 1);
        m.add(1, Counter::ChunksStarted, 2);
        m.add(2, Counter::StateCopies, 7);
        m.add(5, Counter::Reruns, 1); // wraps to shard 2
        let (rows, consistent) = m.read_consistent();
        assert!(consistent);
        assert_eq!(rows[0][Counter::ChunksStarted.index()], 1);
        assert_eq!(rows[1][Counter::ChunksStarted.index()], 2);
        assert_eq!(rows[2][Counter::StateCopies.index()], 7);
        assert_eq!(rows[2][Counter::Reruns.index()], 1);
    }

    #[test]
    fn zero_workers_still_usable() {
        let m = MetricsCore::new(0);
        assert_eq!(m.workers(), 1);
        m.add(9, Counter::IdleTime, 3);
        let (rows, _) = m.read_consistent();
        assert_eq!(rows[0][Counter::IdleTime.index()], 3);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        const WORKERS: usize = 8;
        const PER_WORKER: u64 = 50_000;
        let m = MetricsCore::new(WORKERS);
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..PER_WORKER {
                        m.add(w, Counter::StateComparisons, 1);
                        m.add(w, Counter::BusyTime, 2);
                    }
                });
            }
        });
        let (rows, consistent) = m.read_consistent();
        assert!(consistent, "quiesced read must be consistent");
        let comparisons: u64 = rows
            .iter()
            .map(|r| r[Counter::StateComparisons.index()])
            .sum();
        let busy: u64 = rows.iter().map(|r| r[Counter::BusyTime.index()]).sum();
        assert_eq!(comparisons, WORKERS as u64 * PER_WORKER);
        assert_eq!(busy, WORKERS as u64 * PER_WORKER * 2);
    }

    #[test]
    fn snapshot_under_contention_is_monotone() {
        let m = MetricsCore::new(2);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let m_ref = &m;
            let stop_ref = &stop;
            s.spawn(move || {
                while !stop_ref.load(Ordering::Relaxed) {
                    m_ref.add(0, Counter::ChunksStarted, 1);
                }
            });
            let mut last = 0u64;
            for _ in 0..100 {
                let (rows, _) = m_ref.read_consistent();
                let v = rows[0][Counter::ChunksStarted.index()];
                assert!(v >= last, "counter went backwards");
                last = v;
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
