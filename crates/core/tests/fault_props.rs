//! Property tests for the deterministic fault-injection plane, across
//! the six real benchmarks.
//!
//! The recovery invariant (DESIGN.md §15): a seeded fault plan is
//! *observationally invisible*. For arbitrary (seed, plan, benchmark,
//! pool width):
//!
//! 1. a faulted threaded run produces the same decisions and outputs as
//!    the fault-free run of the same configuration;
//! 2. the retries the recovery guards schedule stay within the plan's
//!    bound (`injections × max_retries`);
//! 3. an *empty* fault plan is the head executor bit for bit — the
//!    guards add no protocol recordings of their own.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use stats_core::runtime::pool::WorkerPool;
use stats_core::runtime::threaded::{run_threaded_faulted_on, run_threaded_on};
use stats_core::{Config, FaultPlan};
use stats_telemetry::{Counter, TelemetrySink};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// One generated protocol scenario, small enough that a six-benchmark
/// proptest stays quick but large enough to see commits and aborts.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    chunks: usize,
    lookback: usize,
    extra_states: usize,
    inputs: usize,
    seed: u64,
    plan_seed: u64,
    injections: usize,
    width: usize,
}

impl Scenario {
    fn config(&self) -> Config {
        Config::stats_only(self.chunks, self.lookback, self.extra_states)
    }
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        (2usize..6, 1usize..4, 0usize..3, 40usize..100),
        (0u64..1_000, 0u64..1_000, 1usize..6, 1usize..=4),
    )
        .prop_map(
            |((chunks, lookback, extra_states, inputs), (seed, plan_seed, injections, width))| {
                Scenario {
                    chunks,
                    lookback,
                    extra_states,
                    inputs,
                    seed,
                    plan_seed,
                    injections,
                    width,
                }
            },
        )
}

/// Protocol counters that must be untouched by fault recovery (every
/// count, no timing).
const PROTOCOL: [Counter; 12] = [
    Counter::ChunksStarted,
    Counter::ChunksCommitted,
    Counter::ChunksAborted,
    Counter::Reruns,
    Counter::RerunSegments,
    Counter::SpecCandidates,
    Counter::CandidateHits,
    Counter::ReplicasValidated,
    Counter::StateCopies,
    Counter::StateComparisons,
    Counter::StateBytesLogical,
    Counter::StateBytesCopied,
];

fn protocol_totals(sink: &TelemetrySink) -> Vec<u64> {
    let snap = sink.snapshot();
    PROTOCOL.iter().map(|c| snap.get(*c)).collect()
}

/// A faulted run is the fault-free run: same decisions, same outputs,
/// same protocol counters; retries stay within the plan's bound.
struct RecoveryIsInvisible {
    sc: Scenario,
}

impl WorkloadVisitor for RecoveryIsInvisible {
    type Output = Result<(), TestCaseError>;
    fn visit<W: Workload>(self, w: &W) -> Self::Output {
        let cfg = self.sc.config();
        prop_assume!(cfg.validate(self.sc.inputs).is_ok());
        let inputs = w.generate_inputs(self.sc.inputs, self.sc.seed);
        let plan = FaultPlan::seeded(self.sc.plan_seed, self.sc.injections, &cfg, inputs.len());
        prop_assert!(plan.is_recoverable());

        let pool = WorkerPool::new(self.sc.width);
        let clean_sink = TelemetrySink::new(self.sc.width);
        let clean = run_threaded_on(&pool, w, &inputs, cfg, self.sc.seed, Some(&clean_sink));

        // A fresh pool for the faulted run: worker-death injections doom
        // workers, and the clean run must not share their fate.
        let faulted_pool = WorkerPool::new(self.sc.width);
        let faulted_sink = TelemetrySink::new(self.sc.width);
        let faulted = run_threaded_faulted_on(
            &faulted_pool,
            w,
            &inputs,
            cfg,
            self.sc.seed,
            &plan,
            Some(&faulted_sink),
        );

        prop_assert_eq!(
            &clean.decisions,
            &faulted.decisions,
            "{}: fault recovery changed decisions",
            w.name()
        );
        prop_assert_eq!(
            w.quality(&inputs, &clean.outputs),
            w.quality(&inputs, &faulted.outputs),
            "{}: fault recovery changed outputs",
            w.name()
        );
        prop_assert_eq!(
            protocol_totals(&clean_sink),
            protocol_totals(&faulted_sink),
            "{}: fault recovery perturbed protocol counters",
            w.name()
        );

        let snap = faulted_sink.snapshot();
        let retries = snap.get(Counter::RetriesScheduled);
        let bound = (plan.injections().len() * plan.max_retries) as u64;
        prop_assert!(
            retries <= bound,
            "{}: {} retries exceed the bound {}",
            w.name(),
            retries,
            bound
        );
        // Clean runs record no fault telemetry at all.
        let clean_snap = clean_sink.snapshot();
        for c in [
            Counter::FaultsInjected,
            Counter::RetriesScheduled,
            Counter::WorkersLost,
        ] {
            prop_assert_eq!(
                clean_snap.get(c),
                0,
                "{}: clean run recorded {}",
                w.name(),
                c
            );
        }
        Ok(())
    }
}

/// The empty plan routes through the faulted executor yet is the head
/// path bit for bit: decisions, outputs, protocol counters, and zero
/// fault telemetry.
struct EmptyPlanIsHead {
    sc: Scenario,
}

impl WorkloadVisitor for EmptyPlanIsHead {
    type Output = Result<(), TestCaseError>;
    fn visit<W: Workload>(self, w: &W) -> Self::Output {
        let cfg = self.sc.config();
        prop_assume!(cfg.validate(self.sc.inputs).is_ok());
        let inputs = w.generate_inputs(self.sc.inputs, self.sc.seed);
        let empty = FaultPlan::none();

        let pool = WorkerPool::new(self.sc.width);
        let head_sink = TelemetrySink::new(self.sc.width);
        let head = run_threaded_on(&pool, w, &inputs, cfg, self.sc.seed, Some(&head_sink));
        let empty_sink = TelemetrySink::new(self.sc.width);
        let faulted = run_threaded_faulted_on(
            &pool,
            w,
            &inputs,
            cfg,
            self.sc.seed,
            &empty,
            Some(&empty_sink),
        );

        prop_assert_eq!(&head.decisions, &faulted.decisions, "{}", w.name());
        prop_assert_eq!(
            w.quality(&inputs, &head.outputs),
            w.quality(&inputs, &faulted.outputs),
            "{}",
            w.name()
        );
        prop_assert_eq!(
            protocol_totals(&head_sink),
            protocol_totals(&empty_sink),
            "{}: empty plan perturbed protocol counters",
            w.name()
        );
        let snap = empty_sink.snapshot();
        prop_assert_eq!(snap.get(Counter::FaultsInjected), 0);
        prop_assert_eq!(snap.get(Counter::RetriesScheduled), 0);
        prop_assert_eq!(snap.get(Counter::WorkersLost), 0);
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn seeded_fault_recovery_is_observationally_invisible(
        sc in scenarios(),
        bench in 0usize..6,
    ) {
        dispatch(BENCHMARK_NAMES[bench], RecoveryIsInvisible { sc })?;
    }

    #[test]
    fn empty_fault_plan_is_the_head_executor(
        sc in scenarios(),
        bench in 0usize..6,
    ) {
        dispatch(BENCHMARK_NAMES[bench], EmptyPlanIsHead { sc })?;
    }
}

/// The proptest above samples benchmarks; this deterministic sweep pins
/// every benchmark under a seeded plan once, so a regression in any
/// single benchmark cannot hide behind sampling.
#[test]
fn every_benchmark_recovers_under_a_seeded_plan() {
    let sc = Scenario {
        chunks: 4,
        lookback: 2,
        extra_states: 1,
        inputs: 64,
        seed: 11,
        plan_seed: 7,
        injections: 4,
        width: 2,
    };
    for name in BENCHMARK_NAMES {
        let r = dispatch(name, RecoveryIsInvisible { sc });
        r.unwrap_or_else(|e| panic!("{name}: {e:?}"));
    }
}
