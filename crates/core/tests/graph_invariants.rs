//! Structural invariants of the task graphs the simulated runtime lowers
//! speculation outcomes into, checked over randomized configurations.

use proptest::prelude::*;
use stats_core::rng::StatsRng;
use stats_core::runtime::simulated::{build_task_graph, GraphOptions};
use stats_core::speculation::run_speculative;
use stats_core::{Config, StateDependence, UpdateCost};
use stats_platform::Machine;
use stats_trace::Category;

#[derive(Debug, Clone)]
struct Ema {
    decay: f64,
    tolerance: f64,
}

impl StateDependence for Ema {
    type State = f64;
    type Input = f64;
    type Output = f64;
    fn fresh_state(&self) -> f64 {
        0.0
    }
    fn update(&self, s: &mut f64, x: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
        *s = self.decay * *s + (1.0 - self.decay) * (*x + rng.noise(0.01));
        (*s, UpdateCost::with_work(2_000))
    }
    fn states_match(&self, a: &f64, b: &f64) -> bool {
        (a - b).abs() < self.tolerance
    }
    fn state_bytes(&self) -> usize {
        64
    }
}

fn setup(
    decay: f64,
    tolerance: f64,
    chunks: usize,
    k: usize,
    m: usize,
    seed: u64,
) -> Option<(stats_core::SpeculationOutcome<f64>, GraphOptions)> {
    let cfg = Config::stats_only(chunks, k, m);
    let inputs: Vec<f64> = (0..120).map(|i| (i as f64 * 0.07).sin()).collect();
    cfg.validate(inputs.len()).ok()?;
    let w = Ema { decay, tolerance };
    let outcome = run_speculative(&w, &inputs, cfg, seed);
    Some((outcome, GraphOptions::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every lowered graph executes (acyclic), covers all model
    /// categories it should, and respects the sequential commit order in
    /// the realized schedule.
    #[test]
    fn lowered_graphs_are_wellformed(
        decay in 0.3f64..0.999,
        tolerance in 0.0001f64..0.2,
        chunks in 2usize..10,
        k in 1usize..8,
        m in 0usize..4,
        seed in 0u64..500,
    ) {
        let Some((outcome, opts)) = setup(decay, tolerance, chunks, k, m, seed) else {
            return Ok(());
        };
        let machine = Machine::paper_machine();
        let graph = build_task_graph("prop", &outcome, &machine, &opts);
        let result = machine.execute(&graph).expect("lowered graphs are acyclic");

        // Commit tasks exist once per chunk and end in sequential order.
        let mut commit_ends = Vec::new();
        for t in graph.tasks() {
            if t.category == Category::Commit {
                commit_ends.push(result.entry(t.id).end);
            }
        }
        prop_assert_eq!(commit_ends.len(), chunks);
        for pair in commit_ends.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "commit order violated: {} after {}",
                pair[0],
                pair[1]
            );
        }

        // Alternative producers exist for every chunk but the first.
        let alts = graph
            .tasks()
            .iter()
            .filter(|t| t.category == Category::AltProducer)
            .count();
        prop_assert_eq!(alts, chunks - 1);

        // Replica counts: m per non-final boundary, all scheduled.
        let reps = graph
            .tasks()
            .iter()
            .filter(|t| t.category == Category::OriginalStateGen)
            .count();
        prop_assert_eq!(reps, m * (chunks - 1));

        // Aborted chunks appear as AbortedCompute and re-runs extend the
        // makespan beyond the all-commit graph's.
        if outcome.aborts() > 0 {
            let aborted_cycles: u64 = graph
                .tasks()
                .iter()
                .filter(|t| t.category == Category::AbortedCompute)
                .map(|t| t.duration.get())
                .sum();
            prop_assert!(aborted_cycles > 0, "aborts without AbortedCompute spans");
            let commit_all = GraphOptions {
                assume_all_commit: true,
                ..opts
            };
            let g2 = build_task_graph("all-commit", &outcome, &machine, &commit_all);
            let r2 = machine.execute(&g2).unwrap();
            prop_assert!(r2.makespan <= result.makespan);
        }
    }

    /// Lazy replication is a strict work subset of eager replication.
    #[test]
    fn lazy_graphs_are_subsets(
        chunks in 2usize..8,
        k in 1usize..6,
        m in 1usize..4,
        seed in 0u64..500,
    ) {
        let Some((outcome, opts)) = setup(0.5, 0.05, chunks, k, m, seed) else {
            return Ok(());
        };
        let machine = Machine::paper_machine();
        let eager = build_task_graph("eager", &outcome, &machine, &opts);
        let lazy_opts = GraphOptions {
            lazy_replicas: true,
            ..opts
        };
        let lazy = build_task_graph("lazy", &outcome, &machine, &lazy_opts);
        let gen_cycles = |g: &stats_platform::TaskGraph| -> u64 {
            g.tasks()
                .iter()
                .filter(|t| t.category == Category::OriginalStateGen)
                .map(|t| t.duration.get())
                .sum()
        };
        prop_assert!(gen_cycles(&lazy) <= gen_cycles(&eager));
        // Both still execute.
        machine.execute(&lazy).expect("lazy graph acyclic");
    }
}
