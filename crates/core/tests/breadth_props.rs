//! Property tests for breadth-k alternative speculation, across the six
//! real benchmarks.
//!
//! Three protocol facts must hold for *arbitrary* configurations with
//! `spec_breadth` in `1..=4`:
//!
//! 1. breadth 1 with overlap off is the historical protocol bit for bit
//!    (and `overlap_rerun` never changes semantics at any breadth — it
//!    only reschedules recovery);
//! 2. the simulated and threaded runtimes agree on decisions, aborts,
//!    and outputs at every breadth;
//! 3. extra candidates only ever *rescue* chunks: comparing breadth `b`
//!    against `b + 1`, the runs are identical up to the first chunk the
//!    wider run rescues (committed via the new candidate where the
//!    narrow run aborted). Global abort counts are not provably monotone
//!    — a rescue changes the committed boundary state, so downstream
//!    decisions may flip either way — but the divergence point itself is
//!    always a rescue, never a newly-introduced abort.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use stats_core::runtime::simulated::SimulatedRuntime;
use stats_core::runtime::threaded::run_threaded;
use stats_core::speculation::{run_speculative, SpeculationOutcome};
use stats_core::Config;
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// One generated protocol scenario, small enough that a six-benchmark
/// proptest stays quick but large enough to see commits and aborts.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    chunks: usize,
    lookback: usize,
    extra_states: usize,
    inputs: usize,
    seed: u64,
}

impl Scenario {
    fn config(&self, breadth: usize, overlap: bool) -> Config {
        Config::stats_only(self.chunks, self.lookback, self.extra_states)
            .with_breadth(breadth)
            .with_overlap(overlap)
    }
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (2usize..6, 1usize..4, 0usize..3, 40usize..100, 0u64..1_000).prop_map(
        |(chunks, lookback, extra_states, inputs, seed)| Scenario {
            chunks,
            lookback,
            extra_states,
            inputs,
            seed,
        },
    )
}

/// Per-chunk decision record: everything the protocol decides.
type Decision = (bool, Option<usize>, Option<usize>);

fn decisions<O>(out: &SpeculationOutcome<O>) -> Vec<Decision> {
    out.chunks
        .iter()
        .map(|c| (c.aborted(), c.matched_candidate, c.matched_original))
        .collect()
}

/// Breadth 1 is the historical protocol: no candidate machinery is live,
/// and the overlap knob never changes what is computed.
struct BreadthOneIsHead {
    sc: Scenario,
}

impl WorkloadVisitor for BreadthOneIsHead {
    type Output = Result<(), TestCaseError>;
    fn visit<W: Workload>(self, w: &W) -> Self::Output {
        let cfg = self.sc.config(1, false);
        prop_assume!(cfg.validate(self.sc.inputs).is_ok());
        let inputs = w.generate_inputs(self.sc.inputs, self.sc.seed);
        let head = run_speculative(w, &inputs, cfg, self.sc.seed);
        for ch in &head.chunks {
            prop_assert!(
                ch.losing_candidates.is_empty(),
                "{}: breadth 1 grew losing candidates",
                w.name()
            );
            prop_assert!(
                ch.matched_candidate.is_none() || ch.matched_candidate == Some(0),
                "{}: breadth 1 committed a candidate other than the producer",
                w.name()
            );
        }
        // Overlapped recovery reschedules the rerun; it must not touch
        // decisions or outputs at any breadth.
        for b in 1..=4usize {
            let plain = run_speculative(w, &inputs, self.sc.config(b, false), self.sc.seed);
            let overlapped = run_speculative(w, &inputs, self.sc.config(b, true), self.sc.seed);
            prop_assert_eq!(
                decisions(&plain),
                decisions(&overlapped),
                "{}: overlap changed decisions at breadth {}",
                w.name(),
                b
            );
            prop_assert_eq!(
                w.quality(&inputs, &plain.outputs),
                w.quality(&inputs, &overlapped.outputs),
                "{}: overlap changed outputs at breadth {}",
                w.name(),
                b
            );
            if b == 1 {
                prop_assert_eq!(
                    decisions(&head),
                    decisions(&plain),
                    "{}: breadth 1 diverged from itself",
                    w.name()
                );
            }
        }
        Ok(())
    }
}

/// Both runtimes lower the same semantic outcome: decisions, aborts, and
/// outputs agree exactly at every breadth.
struct RuntimesAgree {
    sc: Scenario,
    breadth: usize,
    overlap: bool,
}

impl WorkloadVisitor for RuntimesAgree {
    type Output = Result<(), TestCaseError>;
    fn visit<W: Workload>(self, w: &W) -> Self::Output {
        let cfg = self.sc.config(self.breadth, self.overlap);
        prop_assume!(cfg.validate(self.sc.inputs).is_ok());
        let inputs = w.generate_inputs(self.sc.inputs, self.sc.seed);
        let simulated = SimulatedRuntime::paper_machine()
            .run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                self.sc.seed,
            )
            .expect("simulated run");
        let threaded = run_threaded(w, &inputs, cfg, self.sc.seed);
        prop_assert_eq!(
            &threaded.decisions,
            &simulated.decisions,
            "{}: decision mismatch at breadth {}",
            w.name(),
            self.breadth
        );
        prop_assert_eq!(
            w.quality(&inputs, &threaded.outputs),
            w.quality(&inputs, &simulated.outputs),
            "{}: output mismatch at breadth {}",
            w.name(),
            self.breadth
        );
        Ok(())
    }
}

/// Prefix domination: widening the candidate set from `b` to `b + 1`
/// leaves the run untouched up to the first rescue, and that divergence
/// point is always "narrow aborted, wide committed via the new
/// candidate".
struct WideningOnlyRescues {
    sc: Scenario,
    breadth: usize,
}

impl WorkloadVisitor for WideningOnlyRescues {
    type Output = Result<(), TestCaseError>;
    fn visit<W: Workload>(self, w: &W) -> Self::Output {
        let narrow_cfg = self.sc.config(self.breadth, false);
        prop_assume!(narrow_cfg.validate(self.sc.inputs).is_ok());
        let inputs = w.generate_inputs(self.sc.inputs, self.sc.seed);
        let narrow = run_speculative(w, &inputs, narrow_cfg, self.sc.seed);
        let wide = run_speculative(
            w,
            &inputs,
            self.sc.config(self.breadth + 1, false),
            self.sc.seed,
        );
        let nd = decisions(&narrow);
        let wd = decisions(&wide);
        prop_assert_eq!(nd.len(), wd.len());
        match nd.iter().zip(&wd).position(|(a, b)| a != b) {
            None => {
                // Identical decisions end to end imply identical work.
                prop_assert_eq!(narrow.aborts(), wide.aborts(), "{}", w.name());
                prop_assert_eq!(
                    w.quality(&inputs, &narrow.outputs),
                    w.quality(&inputs, &wide.outputs),
                    "{}",
                    w.name()
                );
            }
            Some(d) => {
                let (n_aborted, _, _) = nd[d];
                let (w_aborted, w_cand, w_orig) = wd[d];
                prop_assert!(
                    n_aborted && !w_aborted,
                    "{}: chunk {} diverged without a rescue: narrow {:?}, wide {:?}",
                    w.name(),
                    d,
                    nd[d],
                    wd[d]
                );
                prop_assert_eq!(
                    w_cand,
                    Some(self.breadth),
                    "{}: chunk {} was rescued by candidate {:?}, not the new one",
                    w.name(),
                    d,
                    w_cand
                );
                prop_assert!(w_orig.is_some());
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn breadth_one_reproduces_head_and_overlap_is_semantics_free(
        sc in scenarios(),
        bench in 0usize..6,
    ) {
        dispatch(BENCHMARK_NAMES[bench], BreadthOneIsHead { sc })?;
    }

    #[test]
    fn simulated_and_threaded_agree_at_every_breadth(
        sc in scenarios(),
        bench in 0usize..6,
        breadth in 1usize..=4,
        overlap_bit in 0usize..2,
    ) {
        let overlap = overlap_bit == 1;
        dispatch(BENCHMARK_NAMES[bench], RuntimesAgree { sc, breadth, overlap })?;
    }

    #[test]
    fn widening_the_candidate_set_only_rescues(
        sc in scenarios(),
        bench in 0usize..6,
        breadth in 1usize..=3,
    ) {
        dispatch(BENCHMARK_NAMES[bench], WideningOnlyRescues { sc, breadth })?;
    }
}

/// The proptest above samples benchmarks; this deterministic sweep pins
/// every benchmark at every breadth once, so a regression in any single
/// benchmark cannot hide behind sampling.
#[test]
fn every_benchmark_runs_at_every_breadth() {
    let sc = Scenario {
        chunks: 4,
        lookback: 2,
        extra_states: 1,
        inputs: 64,
        seed: 11,
    };
    for name in BENCHMARK_NAMES {
        for breadth in 1..=4 {
            let r = dispatch(
                name,
                RuntimesAgree {
                    sc,
                    breadth,
                    overlap: breadth % 2 == 0,
                },
            );
            r.unwrap_or_else(|e| panic!("{name} at breadth {breadth}: {e:?}"));
        }
    }
}
