//! Property tests of the STATS core: configurations, design spaces,
//! planning, and speculation accounting.

use proptest::prelude::*;
use stats_core::rng::StatsRng;
use stats_core::runtime::sequential::run_sequential;
use stats_core::speculation::run_speculative;
use stats_core::{
    plan_weighted, Config, DesignSpace, InnerParallelism, StateDependence, UpdateCost,
};

struct Counter;

impl StateDependence for Counter {
    type State = u64;
    type Input = u64;
    type Output = u64;
    fn fresh_state(&self) -> u64 {
        0
    }
    fn update(&self, s: &mut u64, i: &u64, _rng: &mut StatsRng) -> (u64, UpdateCost) {
        // Count updates: deterministic, zero memory -> always commits.
        *s = s.wrapping_add(1).min(1_000_000);
        (*s + i, UpdateCost::with_work(10 + i % 7))
    }
    fn states_match(&self, _a: &u64, _b: &u64) -> bool {
        true // memoryless acceptance: everything matches
    }
    fn state_bytes(&self) -> usize {
        8
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every configuration a design space enumerates validates, and
    /// validation is consistent with explicit checks.
    #[test]
    fn design_spaces_only_contain_valid_configs(inputs in 2usize..2_000, cores in 1usize..64) {
        let space = DesignSpace::for_inputs(inputs, cores, true);
        for cfg in space.enumerate() {
            prop_assert!(cfg.validate(inputs).is_ok(), "{cfg:?} invalid for {inputs}");
        }
    }

    /// Weighted planning always covers the stream exactly with non-empty
    /// chunks, for arbitrary weight functions.
    #[test]
    fn weighted_plans_cover(inputs in 1usize..800, chunks in 1usize..32, seed in 0u64..100) {
        prop_assume!(chunks <= inputs);
        let weight = move |i: usize| (i as u64).wrapping_mul(seed + 1) % 17;
        let plan = plan_weighted(inputs, chunks, weight);
        prop_assert_eq!(plan.len(), chunks);
        prop_assert_eq!(plan.inputs(), inputs);
        for r in plan.ranges() {
            prop_assert!(!r.is_empty());
        }
    }

    /// With a memoryless acceptance predicate everything commits, and the
    /// total realized work equals the sequential work exactly (aside from
    /// the replicas' and alt-producers' separately-accounted costs).
    #[test]
    fn memoryless_workload_always_commits(
        inputs in 8usize..300,
        chunks in 1usize..16,
        k in 1usize..8,
        m in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let cfg = Config::stats_only(chunks, k, m);
        prop_assume!(cfg.validate(inputs).is_ok());
        let stream: Vec<u64> = (0..inputs as u64).collect();
        let out = run_speculative(&Counter, &stream, cfg, seed);
        prop_assert_eq!(out.aborts(), 0);
        let seq = run_sequential(&Counter, &stream, seed);
        prop_assert_eq!(out.realized_work(), seq.cost.work);
        prop_assert_eq!(out.outputs.len(), inputs);
        // Replica accounting: every chunk but the last carries exactly m
        // replica cost entries.
        for (i, c) in out.chunks.iter().enumerate() {
            let expect = if i + 1 == out.chunks.len() || chunks == 1 { 0 } else { m };
            prop_assert_eq!(c.replica_costs.len(), expect, "chunk {}", i);
        }
    }

    /// Inner parallelism obeys Amdahl: ideal speedup is bounded by
    /// 1/(1-f) and by the width, and split work conserves totals.
    #[test]
    fn amdahl_bounds(f in 0.0f64..1.0, width in 1usize..64, work in 1u64..1_000_000) {
        prop_assume!(f < 0.999);
        let p = InnerParallelism::amdahl(f, usize::MAX);
        let s = p.ideal_speedup(width);
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= width as f64 + 1e-9);
        prop_assert!(s <= 1.0 / (1.0 - f) + 1e-9);
        let (serial, per_shard) = p.split_work(work, width);
        let total = serial + per_shard * p.width(width) as u64;
        prop_assert!(total >= work);
        prop_assert!(total <= work + width as u64);
    }

    /// Config validation is total and panic-free over arbitrary inputs.
    #[test]
    fn validation_never_panics(chunks in 0usize..10_000, lookback in 0usize..10_000, m in 0usize..64, inputs in 0usize..10_000) {
        let cfg = Config {
            chunks,
            lookback,
            extra_states: m,
            combine_inner_tlp: chunks % 2 == 0,
            snapshot: stats_core::SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        };
        let _ = cfg.validate(inputs);
    }

    /// CowBox aliasing discipline: however reads, in-place writes, and
    /// whole-value replacements interleave across a forked pair, a write
    /// on either side is never observable from the other, fault counts
    /// price exactly the materializations that happened, and the wire
    /// format (`Debug`) matches a plain value bit for bit.
    #[test]
    fn cowbox_forks_never_alias_writes(
        init in proptest::collection::vec(0u64..1_000, 1..12),
        ops in proptest::collection::vec((0u8..4, 0u64..1_000), 1..24),
    ) {
        use stats_core::CowBox;
        let mut original = CowBox::new(init.clone());
        let mut fork = original.fork();
        // Plain twins replayed alongside as the ground truth.
        let mut original_twin = init.clone();
        let mut fork_twin = init;
        for (op, v) in ops {
            match op {
                // In-place write through DerefMut: materializes on the
                // first post-fork write of that handle.
                0 => { original[0] = v; original_twin[0] = v; }
                1 => { fork[0] = v; fork_twin[0] = v; }
                // Whole-value replacement (the generational path).
                2 => { original.set(vec![v]); original_twin = vec![v]; }
                _ => { fork.set(vec![v]); fork_twin = vec![v]; }
            }
            prop_assert_eq!(&*original, &original_twin);
            prop_assert_eq!(&*fork, &fork_twin);
            prop_assert_eq!(format!("{original:?}"), format!("{original_twin:?}"));
        }
        // Each handle faulted at most once: after the first
        // materialization it owns its payload and writes are free.
        prop_assert!(original.take_faults() <= 1);
        prop_assert!(fork.take_faults() <= 1);
    }

    /// Derived RNG streams: equal (seed, role) pairs agree, different
    /// chunk indices diverge within a few draws.
    #[test]
    fn rng_streams_are_role_separated(seed in 0u64..10_000, chunk in 0usize..500) {
        use stats_core::rng::StreamRole;
        let mut a = StatsRng::derive(seed, StreamRole::Chunk(chunk));
        let mut b = StatsRng::derive(seed, StreamRole::Chunk(chunk));
        let mut c = StatsRng::derive(seed, StreamRole::Chunk(chunk + 1));
        let mut diverged = false;
        for _ in 0..4 {
            let (x, y, z) = (a.unit(), b.unit(), c.unit());
            prop_assert_eq!(x, y);
            if (x - z).abs() > 1e-15 {
                diverged = true;
            }
        }
        prop_assert!(diverged, "adjacent chunk streams never diverged");
    }
}
