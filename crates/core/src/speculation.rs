//! The semantic layer of the STATS execution model.
//!
//! This module *actually runs* the workload under the STATS protocol
//! (§II-B) and records what happened: every alternative producer's
//! speculative state, every replica's original state, every commit/abort
//! decision, and the cost of every piece of computation. It is pure
//! semantics — no scheduling, no timing — and is shared by the simulated
//! and threaded runtimes, which therefore always agree on decisions.

use crate::config::Config;
use crate::dependence::{StateDependence, UpdateCost};
use crate::planner::{plan_balanced, ChunkPlan};
use crate::report::ChunkDecision;
use crate::rng::{StatsRng, StreamRole};
use crate::snapshot::SnapshotStrategy;
use std::ops::Range;

/// Costs of one breadth candidate's pipeline — the alternative producer
/// warmup plus the speculative run it fed — recorded for candidates that
/// did not become the chunk's realized run (the winner's, or candidate
/// 0's on an abort, live in the [`ChunkOutcome`] primary cost fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateCost {
    /// Cost of the candidate's alternative producer.
    pub alt: UpdateCost,
    /// Cost of the candidate's speculative prefix.
    pub prefix: UpdateCost,
    /// Cost of the candidate's speculative suffix (last `k` inputs).
    pub suffix: UpdateCost,
}

/// The recorded execution of one chunk under the STATS protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkOutcome {
    /// Input range the chunk covers.
    pub range: Range<usize>,
    /// What the runtime decided for this chunk.
    pub decision: ChunkDecision,
    /// Cost of the chunk's alternative producer (absent for chunk 0).
    pub alt_cost: Option<UpdateCost>,
    /// Cost of the speculative run's prefix (inputs before the last `k`).
    pub spec_prefix: UpdateCost,
    /// Cost of the speculative run's suffix (the last `k` inputs, re-run
    /// by replicas at this chunk's boundary).
    pub spec_suffix: UpdateCost,
    /// Costs of the re-execution after an abort (prefix, suffix).
    pub rerun: Option<(UpdateCost, UpdateCost)>,
    /// Costs of the `m` original-state replicas generated at the end of
    /// this chunk (empty for the last chunk).
    pub replica_costs: Vec<UpdateCost>,
    /// Which original state matched this chunk's speculative state:
    /// `Some(0)` is the producer's own final state, `Some(j)` is replica
    /// `j-1`. `None` for chunk 0 and for aborted chunks. Under breadth
    /// this is the *winning candidate's* match.
    pub matched_original: Option<usize>,
    /// Which breadth candidate's start state matched an original (the
    /// commit check tries candidates in index order, so this is the
    /// lowest matching index). `None` for chunk 0 and aborted chunks;
    /// always `Some(0)` at breadth 1.
    pub matched_candidate: Option<usize>,
    /// Costs of the candidates that lost the commit check, in candidate
    /// order with the primary candidate excluded: all but the winner on a
    /// commit, candidates `1..b` on an abort. Empty at breadth 1.
    pub losing_candidates: Vec<CandidateCost>,
    /// Logical bytes the protocol replicated for this chunk: state size ×
    /// replication events (speculative handoff, `m` boundary replicas,
    /// abort transfer). Strategy-invariant — this is the historical
    /// `StateCopies × state_bytes` accounting.
    pub bytes_logical: u64,
    /// Bytes physically copied for this chunk under the configured
    /// [`SnapshotStrategy`]: equal to [`bytes_logical`] under `DeepClone`;
    /// under `CopyOnWrite`, only the snapshot's unshared residue plus
    /// bytes later materialized by dirty-on-write faults.
    ///
    /// [`bytes_logical`]: ChunkOutcome::bytes_logical
    pub bytes_copied: u64,
}

impl ChunkOutcome {
    /// Total useful-work cost of the realized run of this chunk.
    pub fn realized_cost(&self) -> UpdateCost {
        match self.rerun {
            Some((p, s)) => p + s,
            None => self.spec_prefix + self.spec_suffix,
        }
    }

    /// Whether this chunk's speculation aborted.
    pub fn aborted(&self) -> bool {
        self.decision == ChunkDecision::Aborted
    }
}

/// The complete semantic record of one STATS execution.
#[derive(Debug, Clone)]
pub struct SpeculationOutcome<O> {
    /// The chunk plan used.
    pub plan: ChunkPlan,
    /// The configuration executed.
    pub config: Config,
    /// Per-chunk records, in stream order.
    pub chunks: Vec<ChunkOutcome>,
    /// The realized outputs, in input order (speculative outputs for
    /// committed chunks, re-run outputs for aborted ones).
    pub outputs: Vec<O>,
    /// Size of one state in bytes.
    pub state_bytes: usize,
}

impl<O> SpeculationOutcome<O> {
    /// Number of aborted chunks.
    pub fn aborts(&self) -> usize {
        self.chunks.iter().filter(|c| c.aborted()).count()
    }

    /// Commit rate over the speculative chunks (chunk 0 excluded);
    /// 1.0 when nothing speculated.
    pub fn commit_rate(&self) -> f64 {
        let speculative = self.chunks.len().saturating_sub(1);
        if speculative == 0 {
            return 1.0;
        }
        1.0 - self.aborts() as f64 / speculative as f64
    }

    /// Total useful work (realized runs only), in work units.
    pub fn realized_work(&self) -> u64 {
        self.chunks.iter().map(|c| c.realized_cost().work).sum()
    }

    /// Total logical replication bytes (Σ [`ChunkOutcome::bytes_logical`]).
    pub fn bytes_logical(&self) -> u64 {
        self.chunks.iter().map(|c| c.bytes_logical).sum()
    }

    /// Total physically copied bytes (Σ [`ChunkOutcome::bytes_copied`]).
    pub fn bytes_copied(&self) -> u64 {
        self.chunks.iter().map(|c| c.bytes_copied).sum()
    }
}

/// One segment run: outputs plus aggregated prefix/suffix costs and the
/// states needed by the protocol.
pub(crate) struct SegmentRun<S, O> {
    pub(crate) outputs: Vec<O>,
    pub(crate) prefix_cost: UpdateCost,
    pub(crate) suffix_cost: UpdateCost,
    /// State snapshot taken before processing the last `k` inputs.
    pub(crate) snapshot: S,
    pub(crate) final_state: S,
    /// Bytes the running state materialized through copy-on-write faults
    /// during the segment (always 0 under `DeepClone`).
    pub(crate) materialized: u64,
}

/// Run `inputs[range]` from `start` state, splitting cost accounting at
/// `range.len() - k` and snapshotting the state there.
pub(crate) fn run_segment<W: StateDependence>(
    workload: &W,
    start: W::State,
    inputs: &[W::Input],
    range: Range<usize>,
    k: usize,
    strategy: SnapshotStrategy,
    rng: &mut StatsRng,
) -> SegmentRun<W::State, W::Output> {
    let len = range.len();
    let split = len.saturating_sub(k);
    let mut state = start;
    let mut outputs = Vec::with_capacity(len);
    let mut prefix_cost = UpdateCost::default();
    let mut suffix_cost = UpdateCost::default();
    // `k == 0` (single-chunk runs): the boundary snapshot is the starting
    // state and no replica ever replays from it; otherwise it is taken at
    // the prefix/suffix split. Either way exactly one snapshot is taken.
    let mut snapshot = if split >= len {
        Some(workload.snapshot_state(&mut state, strategy))
    } else {
        None
    };
    for (i, idx) in range.enumerate() {
        if i == split {
            snapshot = Some(workload.snapshot_state(&mut state, strategy));
        }
        let (out, cost) = workload.update(&mut state, &inputs[idx], rng);
        outputs.push(out);
        if i < split {
            prefix_cost = prefix_cost + cost;
        } else {
            suffix_cost = suffix_cost + cost;
        }
    }
    let materialized = workload.take_materialized(&mut state);
    SegmentRun {
        outputs,
        prefix_cost,
        suffix_cost,
        snapshot: snapshot.expect("segment recorded its boundary snapshot"),
        final_state: state,
        materialized,
    }
}

/// Execute the STATS protocol over `inputs` and record everything.
///
/// Deterministic: the same `(workload, inputs, config, master_seed)` always
/// yields the same outcome, regardless of how the runtimes later schedule
/// the work.
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()` (validate first with
/// [`Config::validate`]).
pub fn run_speculative<W: StateDependence>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
) -> SpeculationOutcome<W::Output> {
    config
        .validate(inputs.len())
        .expect("invalid configuration for input length");
    let plan = plan_balanced(inputs.len(), config.chunks);
    run_speculative_planned(workload, inputs, config, plan, master_seed)
}

/// Execute the STATS protocol with an explicit chunk plan.
///
/// The paper lists "the length of each computation chunk" among the design
/// space parameters (§II-B); this entry point lets callers supply a
/// profile-weighted plan (see [`crate::plan_weighted`]) so benchmarks with
/// skewed per-input costs — `facedet-and-track`'s detector-vs-filter
/// bimodality — can be balanced by work rather than by input count.
///
/// # Panics
///
/// Panics if the plan does not cover `inputs`, its chunk count differs
/// from `config.chunks`, or any chunk is shorter than the lookback.
pub fn run_speculative_planned<W: StateDependence>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    plan: ChunkPlan,
    master_seed: u64,
) -> SpeculationOutcome<W::Output> {
    assert_eq!(
        plan.inputs(),
        inputs.len(),
        "plan does not cover the input stream"
    );
    assert_eq!(plan.len(), config.chunks, "plan chunk count mismatch");
    for c in 1..plan.len() {
        assert!(
            plan.chunk(c - 1).len() >= config.lookback,
            "chunk {} shorter than the lookback",
            c - 1
        );
    }
    let k = config.lookback;
    let m = config.extra_states;
    let b = config.spec_breadth.max(1);
    let strategy = config.snapshot;
    let state_bytes = workload.state_bytes() as u64;

    let mut chunks: Vec<ChunkOutcome> = Vec::with_capacity(plan.len());
    let mut outputs_per_chunk: Vec<Vec<W::Output>> = Vec::with_capacity(plan.len());

    // Realized boundary data of the previous chunk.
    let mut prev_final: W::State = workload.fresh_state();
    let mut prev_snapshot: Option<W::State> = None;

    for c in 0..plan.len() {
        let range = plan.chunk(c);
        if c == 0 {
            let mut rng = StatsRng::derive(master_seed, StreamRole::Chunk(0));
            let run = run_segment(
                workload,
                workload.fresh_state(),
                inputs,
                range.clone(),
                k,
                strategy,
                &mut rng,
            );
            chunks.push(ChunkOutcome {
                range,
                decision: ChunkDecision::First,
                alt_cost: None,
                spec_prefix: run.prefix_cost,
                spec_suffix: run.suffix_cost,
                rerun: None,
                replica_costs: Vec::new(),
                matched_original: None,
                matched_candidate: None,
                losing_candidates: Vec::new(),
                bytes_logical: 0,
                bytes_copied: run.materialized,
            });
            outputs_per_chunk.push(run.outputs);
            prev_final = run.final_state;
            prev_snapshot = Some(run.snapshot);
            continue;
        }

        // Alternative producers: `b` candidates, each warming up on the k
        // inputs preceding the chunk from a fresh state (the short memory
        // property, §II-B) on an independent derived stream, then running
        // the chunk body from a snapshot of its own speculative state
        // (each handoff is one replication event; the original is
        // retained for the boundary comparison). Candidate 0 uses the
        // historical streams, so breadth 1 is the historical protocol.
        let alt_range = range.start - k..range.start;
        let mut bytes_logical = 0u64;
        let mut bytes_copied = 0u64;
        let mut cand_alt_costs: Vec<UpdateCost> = Vec::with_capacity(b);
        let mut cand_spec_states: Vec<W::State> = Vec::with_capacity(b);
        let mut cand_runs: Vec<SegmentRun<W::State, W::Output>> = Vec::with_capacity(b);
        for j in 0..b {
            let alt_role = if j == 0 {
                StreamRole::AltProducer(c)
            } else {
                StreamRole::AltCandidate {
                    chunk: c,
                    candidate: j,
                }
            };
            let mut alt_rng = StatsRng::derive(master_seed, alt_role);
            let mut alt_state = workload.fresh_state();
            let mut alt_cost = UpdateCost::default();
            for idx in alt_range.clone() {
                let (_, cost) = workload.update(&mut alt_state, &inputs[idx], &mut alt_rng);
                alt_cost = alt_cost + cost;
            }
            let mut spec_state = alt_state;
            bytes_logical += state_bytes;
            bytes_copied += workload.snapshot_copy_bytes(strategy);
            let spec_start = workload.snapshot_state(&mut spec_state, strategy);
            let chunk_role = if j == 0 {
                StreamRole::Chunk(c)
            } else {
                StreamRole::ChunkCandidate {
                    chunk: c,
                    candidate: j,
                }
            };
            let mut chunk_rng = StatsRng::derive(master_seed, chunk_role);
            let spec_run = run_segment(
                workload,
                spec_start,
                inputs,
                range.clone(),
                k,
                strategy,
                &mut chunk_rng,
            );
            bytes_copied += spec_run.materialized;
            cand_alt_costs.push(alt_cost);
            cand_spec_states.push(spec_state);
            cand_runs.push(spec_run);
        }

        // Validation at the previous boundary: the producer's own final
        // state plus m replicas re-running its last k inputs from the
        // realized snapshot, each with an independent random stream
        // ("these original states differ because of the nondeterminism of
        // the original algorithm", §II-B).
        let prev_range = plan.chunk(c - 1);
        let replay_start = prev_range.end.saturating_sub(k).max(prev_range.start);
        let mut snapshot = prev_snapshot
            .take()
            .expect("previous chunk recorded a snapshot");
        let mut replica_costs = Vec::with_capacity(m);
        // Replica starting states: m - 1 snapshots plus the boundary
        // snapshot itself by move (the threaded runtime fans out the same
        // way, so copy-on-write fault histories agree across runtimes).
        // All m delivered states are protocol replication events.
        bytes_logical += m as u64 * state_bytes;
        bytes_copied += m as u64 * workload.snapshot_copy_bytes(strategy);
        let mut replica_states: Vec<W::State> = Vec::with_capacity(m);
        for _ in 1..m {
            replica_states.push(workload.snapshot_state(&mut snapshot, strategy));
        }
        if m > 0 {
            replica_states.push(snapshot);
        }
        let mut replica_finals: Vec<W::State> = Vec::with_capacity(m);
        for (j, mut st) in replica_states.into_iter().enumerate() {
            let mut rng = StatsRng::derive(
                master_seed,
                StreamRole::OriginalState {
                    chunk: c - 1,
                    replica: j,
                },
            );
            let mut cost = UpdateCost::default();
            for input in &inputs[replay_start..prev_range.end] {
                let (_, step) = workload.update(&mut st, input, &mut rng);
                cost = cost + step;
            }
            bytes_copied += workload.take_materialized(&mut st);
            replica_costs.push(cost);
            replica_finals.push(st);
        }
        chunks[c - 1].replica_costs = replica_costs;

        // Candidate-major commit check: for each candidate in index
        // order, compare its start state against the producer's own
        // final state, then each replica in order; the first match wins.
        // The chunk commits iff *any* candidate matches an original.
        let mut matched: Option<(usize, usize)> = None;
        'candidates: for (j, spec) in cand_spec_states.iter().enumerate() {
            if workload.states_match(spec, &prev_final) {
                matched = Some((j, 0));
                break;
            }
            for (i, st) in replica_finals.iter().enumerate() {
                if workload.states_match(spec, st) {
                    matched = Some((j, i + 1));
                    break 'candidates;
                }
            }
        }

        // Decision.
        if let Some((winner, which)) = matched {
            let losing_candidates = cand_alt_costs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != winner)
                .map(|(j, &alt)| CandidateCost {
                    alt,
                    prefix: cand_runs[j].prefix_cost,
                    suffix: cand_runs[j].suffix_cost,
                })
                .collect();
            let spec_run = cand_runs.swap_remove(winner);
            chunks.push(ChunkOutcome {
                range,
                decision: ChunkDecision::Committed,
                alt_cost: Some(cand_alt_costs[winner]),
                spec_prefix: spec_run.prefix_cost,
                spec_suffix: spec_run.suffix_cost,
                rerun: None,
                replica_costs: Vec::new(),
                matched_original: Some(which),
                matched_candidate: Some(winner),
                losing_candidates,
                bytes_logical,
                bytes_copied,
            });
            prev_final = spec_run.final_state;
            prev_snapshot = Some(spec_run.snapshot);
            outputs_per_chunk.push(spec_run.outputs);
        } else {
            // Abort: re-run from the true original state (§II-B case (i)),
            // which moves to the re-run like the threaded runtime's urgent
            // rerun task does — one more logical replication event.
            bytes_logical += state_bytes;
            bytes_copied += workload.snapshot_copy_bytes(strategy);
            let rerun_start = std::mem::replace(&mut prev_final, workload.fresh_state());
            let mut rerun_rng = StatsRng::derive(master_seed, StreamRole::Rerun(c));
            let rerun = run_segment(
                workload,
                rerun_start,
                inputs,
                range.clone(),
                k,
                strategy,
                &mut rerun_rng,
            );
            bytes_copied += rerun.materialized;
            let losing_candidates = cand_alt_costs[1..]
                .iter()
                .zip(&cand_runs[1..])
                .map(|(&alt, run)| CandidateCost {
                    alt,
                    prefix: run.prefix_cost,
                    suffix: run.suffix_cost,
                })
                .collect();
            chunks.push(ChunkOutcome {
                range,
                decision: ChunkDecision::Aborted,
                alt_cost: Some(cand_alt_costs[0]),
                spec_prefix: cand_runs[0].prefix_cost,
                spec_suffix: cand_runs[0].suffix_cost,
                rerun: Some((rerun.prefix_cost, rerun.suffix_cost)),
                replica_costs: Vec::new(),
                matched_original: None,
                matched_candidate: None,
                losing_candidates,
                bytes_logical,
                bytes_copied,
            });
            prev_final = rerun.final_state;
            prev_snapshot = Some(rerun.snapshot);
            outputs_per_chunk.push(rerun.outputs);
        }
    }

    let outputs = outputs_per_chunk.into_iter().flatten().collect();
    SpeculationOutcome {
        plan,
        config,
        chunks,
        outputs,
        state_bytes: workload.state_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::UpdateCost;

    /// Noisy moving average with tunable memory: with decay 0.5 the state
    /// forgets quickly (short memory); with decay ~1.0 it remembers
    /// everything (speculation must abort).
    struct Ema {
        decay: f64,
        tolerance: f64,
    }

    impl StateDependence for Ema {
        type State = f64;
        type Input = f64;
        type Output = f64;

        fn fresh_state(&self) -> f64 {
            0.0
        }

        fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
            *state = self.decay * *state + (1.0 - self.decay) * (*input + rng.noise(0.001));
            (*state, UpdateCost::with_work(100))
        }

        fn states_match(&self, a: &f64, b: &f64) -> bool {
            (a - b).abs() < self.tolerance
        }

        fn state_bytes(&self) -> usize {
            8
        }
    }

    fn inputs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.05).sin()).collect()
    }

    #[test]
    fn short_memory_workload_commits() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.05,
        };
        let ins = inputs(256);
        let cfg = Config::stats_only(8, 16, 2);
        let out = run_speculative(&w, &ins, cfg, 42);
        assert_eq!(out.outputs.len(), 256);
        assert_eq!(out.aborts(), 0, "short memory should commit everywhere");
        assert_eq!(out.commit_rate(), 1.0);
    }

    #[test]
    fn long_memory_workload_aborts() {
        let w = Ema {
            decay: 0.999,
            tolerance: 0.001,
        };
        let ins = inputs(256);
        let cfg = Config::stats_only(8, 4, 1);
        let out = run_speculative(&w, &ins, cfg, 42);
        assert!(out.aborts() > 0, "long memory must mispeculate");
        assert_eq!(out.outputs.len(), 256);
    }

    #[test]
    fn outputs_match_input_count_always() {
        let w = Ema {
            decay: 0.7,
            tolerance: 0.02,
        };
        let ins = inputs(100);
        for chunks in [1, 2, 5, 10] {
            let cfg = Config::stats_only(chunks, 8.min(100 / chunks), 1);
            if cfg.validate(ins.len()).is_err() {
                continue;
            }
            let out = run_speculative(&w, &ins, cfg, 7);
            assert_eq!(out.outputs.len(), 100);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = Ema {
            decay: 0.6,
            tolerance: 0.03,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 8, 2);
        let a = run_speculative(&w, &ins, cfg, 5);
        let b = run_speculative(&w, &ins, cfg, 5);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.aborts(), b.aborts());
        let c = run_speculative(&w, &ins, cfg, 6);
        // Different seed: values differ (nondeterminism) though often the
        // same decisions.
        assert_ne!(a.outputs, c.outputs);
    }

    #[test]
    fn aborted_chunk_outputs_come_from_rerun() {
        // With decay ~1 the speculative run starting near 0 produces
        // different outputs than the re-run starting from the true state.
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-9,
        };
        let ins: Vec<f64> = (0..64).map(|_| 1.0).collect();
        let cfg = Config::stats_only(2, 2, 0);
        let out = run_speculative(&w, &ins, cfg, 3);
        assert_eq!(out.aborts(), 1);
        // Sequential reference: state keeps growing toward 1; the second
        // half's outputs must continue from the first half's level, which
        // speculation (starting fresh) could not achieve.
        assert!(out.outputs[32] > out.outputs[16] * 0.9);
    }

    #[test]
    fn replica_costs_attach_to_producer_chunk() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.05,
        };
        let ins = inputs(120);
        let cfg = Config::stats_only(3, 10, 2);
        let out = run_speculative(&w, &ins, cfg, 11);
        // Chunks 0 and 1 produce replicas for their successors; chunk 2
        // (the last) does not.
        assert_eq!(out.chunks[0].replica_costs.len(), 2);
        assert_eq!(out.chunks[1].replica_costs.len(), 2);
        assert!(out.chunks[2].replica_costs.is_empty());
    }

    #[test]
    fn matched_original_is_recorded() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.05,
        };
        let ins = inputs(120);
        let cfg = Config::stats_only(3, 10, 2);
        let out = run_speculative(&w, &ins, cfg, 11);
        for c in &out.chunks[1..] {
            assert!(c.matched_original.is_some());
        }
        assert_eq!(out.chunks[0].matched_original, None);
    }

    #[test]
    fn realized_work_counts_reruns() {
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-9,
        };
        let ins = inputs(64);
        let cfg = Config::stats_only(2, 2, 0);
        let out = run_speculative(&w, &ins, cfg, 3);
        assert_eq!(out.aborts(), 1);
        // Realized work = both chunks' re-realized runs = 64 updates.
        assert_eq!(out.realized_work(), 64 * 100);
        let c1 = &out.chunks[1];
        assert!(c1.rerun.is_some());
        let rerun_total = c1.rerun.unwrap().0 + c1.rerun.unwrap().1;
        assert_eq!(rerun_total.work, 32 * 100);
    }

    #[test]
    fn single_chunk_never_speculates() {
        let w = Ema {
            decay: 0.9,
            tolerance: 0.01,
        };
        let ins = inputs(50);
        let out = run_speculative(&w, &ins, Config::sequential(), 1);
        assert_eq!(out.chunks.len(), 1);
        assert_eq!(out.chunks[0].decision, ChunkDecision::First);
        assert_eq!(out.commit_rate(), 1.0);
        assert!(out.chunks[0].alt_cost.is_none());
    }

    #[test]
    fn planned_execution_matches_balanced_when_plans_agree() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.05,
        };
        let ins = inputs(120);
        let cfg = Config::stats_only(4, 8, 1);
        let balanced = run_speculative(&w, &ins, cfg, 3);
        let plan = crate::planner::plan_balanced(120, 4);
        let planned = run_speculative_planned(&w, &ins, cfg, plan, 3);
        assert_eq!(balanced.outputs, planned.outputs);
        assert_eq!(balanced.aborts(), planned.aborts());
    }

    #[test]
    fn weighted_plans_change_chunk_shapes_not_semantics() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.05,
        };
        let ins = inputs(120);
        let cfg = Config::stats_only(4, 8, 1);
        // Skewed weights: front-loaded work.
        let plan = crate::planner::plan_weighted(120, 4, |i| if i < 40 { 10 } else { 1 });
        assert!(plan.chunk(0).len() < plan.chunk(3).len());
        let out = run_speculative_planned(&w, &ins, cfg, plan, 3);
        assert_eq!(out.outputs.len(), 120);
        assert_eq!(out.chunks.len(), 4);
    }

    #[test]
    #[should_panic(expected = "plan chunk count mismatch")]
    fn planned_execution_rejects_wrong_chunk_count() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.05,
        };
        let ins = inputs(60);
        let plan = crate::planner::plan_balanced(60, 3);
        run_speculative_planned(&w, &ins, Config::stats_only(4, 4, 1), plan, 1);
    }

    #[test]
    fn byte_accounting_matches_the_copy_events() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.05,
        };
        let ins = inputs(256);
        let cfg = Config::stats_only(8, 16, 2);
        let out = run_speculative(&w, &ins, cfg, 42);
        // StateCopies events: one spec handoff and m replicas per
        // speculative chunk, plus one transfer per abort.
        let copies = (8 - 1) * (1 + 2) + out.aborts();
        assert_eq!(out.bytes_logical(), 8 * copies as u64);
        assert_eq!(out.bytes_copied(), out.bytes_logical());
        // A state without COW components is charged identically (and
        // decides identically) under the cow strategy.
        let cow = run_speculative(
            &w,
            &ins,
            cfg.with_snapshot(SnapshotStrategy::CopyOnWrite),
            42,
        );
        assert_eq!(cow.outputs, out.outputs);
        assert_eq!(cow.bytes_logical(), out.bytes_logical());
        assert_eq!(cow.bytes_copied(), out.bytes_copied());
    }

    #[test]
    fn breadth_one_is_the_historical_protocol() {
        // `with_breadth(1)` must be a no-op on every recorded field —
        // candidate 0 runs on the historical streams.
        let w = Ema {
            decay: 0.9,
            tolerance: 0.0035,
        };
        let ins = inputs(512);
        let base = run_speculative(&w, &ins, Config::stats_only(8, 16, 2), 17);
        let explicit = run_speculative(&w, &ins, Config::stats_only(8, 16, 2).with_breadth(1), 17);
        assert_eq!(base.outputs, explicit.outputs);
        assert_eq!(base.chunks, explicit.chunks);
        for c in &base.chunks {
            assert!(c.losing_candidates.is_empty());
            assert_eq!(c.matched_candidate, c.matched_original.map(|_| 0));
        }
    }

    #[test]
    fn breadth_candidates_rescue_borderline_aborts() {
        // Borderline tolerance: each extra candidate is one more draw at
        // landing inside the acceptance window.
        let w = Ema {
            decay: 0.9,
            tolerance: 0.0035,
        };
        let ins = inputs(512);
        let narrow = run_speculative(&w, &ins, Config::stats_only(8, 16, 1), 17);
        let wide = run_speculative(&w, &ins, Config::stats_only(8, 16, 1).with_breadth(4), 17);
        assert!(
            wide.aborts() <= narrow.aborts(),
            "breadth should rescue aborts here: {} vs {}",
            wide.aborts(),
            narrow.aborts()
        );
        assert_eq!(wide.outputs.len(), ins.len());
    }

    #[test]
    fn breadth_records_candidates_and_byte_accounting() {
        let w = Ema {
            decay: 0.9,
            tolerance: 0.0035,
        };
        let ins = inputs(512);
        let cfg = Config::stats_only(8, 16, 2).with_breadth(3);
        let out = run_speculative(&w, &ins, cfg, 17);
        // Every speculative chunk ran 3 candidates: one primary plus two
        // recorded losers, whatever the decision.
        for c in &out.chunks[1..] {
            assert_eq!(c.losing_candidates.len(), 2);
            if c.aborted() {
                assert_eq!(c.matched_candidate, None);
            } else {
                let w_idx = c
                    .matched_candidate
                    .expect("committed chunks record a winner");
                assert!(w_idx < 3);
                assert!(c.matched_original.is_some());
            }
        }
        // Copy events: b handoffs and m replicas per speculative chunk,
        // plus one transfer per abort.
        let copies = (8 - 1) * (3 + 2) + out.aborts();
        assert_eq!(out.bytes_logical(), 8 * copies as u64);
        assert_eq!(out.bytes_copied(), out.bytes_logical());
    }

    #[test]
    fn overlap_flag_never_changes_semantics() {
        // Overlapped abort recovery is pure scheduling; the semantic
        // record is bit-identical with the flag on.
        let w = Ema {
            decay: 0.999,
            tolerance: 0.001,
        };
        let ins = inputs(256);
        let cfg = Config::stats_only(8, 4, 1);
        let plain = run_speculative(&w, &ins, cfg, 42);
        assert!(plain.aborts() > 0);
        let overlapped = run_speculative(&w, &ins, cfg.with_overlap(true), 42);
        assert_eq!(plain.outputs, overlapped.outputs);
        assert_eq!(plain.chunks, overlapped.chunks);
    }

    #[test]
    fn extra_states_raise_commit_rate() {
        // Borderline tolerance: more original states = more chances to
        // match (§II-B's motivation for multiple original states).
        let w = Ema {
            decay: 0.9,
            tolerance: 0.0035,
        };
        let ins = inputs(512);
        let strict = run_speculative(&w, &ins, Config::stats_only(8, 16, 0), 17);
        let lenient = run_speculative(&w, &ins, Config::stats_only(8, 16, 6), 17);
        assert!(
            lenient.aborts() <= strict.aborts(),
            "extra states should never hurt: {} vs {}",
            lenient.aborts(),
            strict.aborts()
        );
    }
}
