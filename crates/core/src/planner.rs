//! Chunk planning: splitting the input stream across STATS threads.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A partition of `0..inputs` into consecutive, non-empty chunks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkPlan {
    ranges: Vec<Range<usize>>,
}

impl ChunkPlan {
    /// Build a plan from consecutive ranges.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are not a contiguous, gap-free, non-empty
    /// cover starting at 0.
    pub fn from_ranges(ranges: Vec<Range<usize>>) -> Self {
        assert!(!ranges.is_empty(), "a plan needs at least one chunk");
        let mut expect = 0;
        for r in &ranges {
            assert_eq!(r.start, expect, "chunks must be contiguous");
            assert!(r.end > r.start, "chunks must be non-empty");
            expect = r.end;
        }
        ChunkPlan { ranges }
    }

    /// The chunk ranges, in stream order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the plan is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total inputs covered.
    pub fn inputs(&self) -> usize {
        self.ranges.last().map(|r| r.end).unwrap_or(0)
    }

    /// The range of chunk `i`.
    pub fn chunk(&self, i: usize) -> Range<usize> {
        self.ranges[i].clone()
    }
}

/// Split `inputs` into `chunks` balanced consecutive ranges (sizes differ
/// by at most one; earlier chunks take the remainder).
///
/// # Panics
///
/// Panics if `chunks` is zero or exceeds `inputs`.
///
/// ```
/// use stats_core::plan_balanced;
/// let plan = plan_balanced(10, 3);
/// assert_eq!(plan.ranges(), &[0..4, 4..7, 7..10]);
/// ```
pub fn plan_balanced(inputs: usize, chunks: usize) -> ChunkPlan {
    assert!(chunks > 0, "need at least one chunk");
    assert!(
        chunks <= inputs,
        "more chunks ({chunks}) than inputs ({inputs})"
    );
    let base = inputs / chunks;
    let remainder = inputs % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < remainder);
        ranges.push(start..start + len);
        start += len;
    }
    ChunkPlan::from_ranges(ranges)
}

/// Split `inputs` into `chunks` ranges whose total *weight* is balanced,
/// given a per-input weight function (e.g. a profile of per-input cost).
///
/// Uses a greedy scan that closes a chunk once it reaches the average
/// weight, guaranteeing every chunk is non-empty.
///
/// ```
/// use stats_core::plan_weighted;
/// // The first half of the stream is 9x as expensive: the work-balanced
/// // plan gives the cheap half many more inputs.
/// let plan = plan_weighted(100, 2, |i| if i < 50 { 9 } else { 1 });
/// assert!(plan.chunk(0).len() < plan.chunk(1).len());
/// ```
///
/// # Panics
///
/// Panics if `chunks` is zero or exceeds `inputs`.
pub fn plan_weighted(inputs: usize, chunks: usize, weight: impl Fn(usize) -> u64) -> ChunkPlan {
    assert!(chunks > 0, "need at least one chunk");
    assert!(
        chunks <= inputs,
        "more chunks ({chunks}) than inputs ({inputs})"
    );
    let total: u64 = (0..inputs).map(&weight).sum();
    let target = total as f64 / chunks as f64;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    let mut acc = 0u64;
    for i in 0..inputs {
        acc += weight(i);
        let remaining_chunks = chunks - ranges.len();
        let remaining_inputs = inputs - i - 1;
        // Close the chunk at the weight target, but keep enough inputs for
        // the chunks still to be formed.
        let must_close = remaining_inputs < remaining_chunks;
        let reached = (acc as f64) >= target * (ranges.len() + 1) as f64;
        if ranges.len() + 1 < chunks && (reached || must_close) && i + 1 > start {
            ranges.push(start..i + 1);
            start = i + 1;
        }
    }
    ranges.push(start..inputs);
    ChunkPlan::from_ranges(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_partitions_exactly() {
        for inputs in [1, 7, 28, 100, 1_001] {
            for chunks in [1, 2, 3, 7] {
                if chunks > inputs {
                    continue;
                }
                let plan = plan_balanced(inputs, chunks);
                assert_eq!(plan.len(), chunks);
                assert_eq!(plan.inputs(), inputs);
                let sizes: Vec<_> = plan.ranges().iter().map(|r| r.len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn single_chunk_covers_all() {
        let plan = plan_balanced(42, 1);
        assert_eq!(plan.ranges(), std::slice::from_ref(&(0..42)));
    }

    #[test]
    #[should_panic(expected = "more chunks")]
    fn balanced_rejects_excess_chunks() {
        plan_balanced(3, 4);
    }

    #[test]
    fn weighted_balances_skewed_costs() {
        // First 50 inputs cost 1, last 50 cost 9.
        let weight = |i: usize| if i < 50 { 1 } else { 9 };
        let plan = plan_weighted(100, 2, weight);
        assert_eq!(plan.len(), 2);
        let w0: u64 = plan.chunk(0).map(weight).sum();
        let w1: u64 = plan.chunk(1).map(weight).sum();
        let imbalance = (w0 as f64 - w1 as f64).abs() / (w0 + w1) as f64;
        assert!(imbalance < 0.1, "weights {w0} vs {w1}");
        // The first chunk must be longer in input count.
        assert!(plan.chunk(0).len() > plan.chunk(1).len());
    }

    #[test]
    fn weighted_with_uniform_weights_is_balanced() {
        let plan = plan_weighted(100, 4, |_| 1);
        let sizes: Vec<_> = plan.ranges().iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn weighted_never_produces_empty_chunks() {
        // Pathological: all weight on input 0.
        let plan = plan_weighted(10, 5, |i| if i == 0 { 1_000 } else { 0 });
        assert_eq!(plan.len(), 5);
        for r in plan.ranges() {
            assert!(!r.is_empty());
        }
        assert_eq!(plan.inputs(), 10);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn from_ranges_rejects_gaps() {
        ChunkPlan::from_ranges(vec![0..3, 5..8]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn from_ranges_rejects_empty_chunk() {
        ChunkPlan::from_ranges(vec![0..3, 3..3]);
    }
}
