//! Modeling the benchmarks' pre-existing ("original") thread-level
//! parallelism.
//!
//! The PARSEC benchmarks the paper studies already contain developer-
//! expressed TLP (POSIX threads/OpenMP inside each input's processing).
//! Fig. 9 shows this *original* TLP saturating — 3.7× on 14 cores, 3.76×
//! on 28 — because only a fraction of each update parallelizes and
//! fork/join synchronization costs grow with width. [`InnerParallelism`]
//! captures exactly that: an Amdahl fraction plus per-shard fork/join
//! costs, used by the simulated runtime to shard update work across cores.

use serde::{Deserialize, Serialize};

/// An Amdahl-style model of the parallelism *inside* one state update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InnerParallelism {
    /// Fraction of each update's work that can run in parallel, in
    /// `[0, 1]`.
    pub parallel_fraction: f64,
    /// Maximum useful width (e.g. bodytrack's per-frame parallelism is
    /// bounded by its particle batch count). `usize::MAX` when unbounded.
    pub max_width: usize,
}

impl InnerParallelism {
    /// No inner parallelism at all (a fully sequential update).
    pub fn none() -> Self {
        InnerParallelism {
            parallel_fraction: 0.0,
            max_width: 1,
        }
    }

    /// An Amdahl profile with the given parallel fraction.
    ///
    /// # Panics
    ///
    /// Panics if `parallel_fraction` is outside `[0, 1]` or
    /// `max_width` is zero.
    pub fn amdahl(parallel_fraction: f64, max_width: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&parallel_fraction),
            "fraction out of range"
        );
        assert!(max_width > 0, "zero width");
        InnerParallelism {
            parallel_fraction,
            max_width,
        }
    }

    /// Effective width when `cores` cores are available.
    pub fn width(&self, cores: usize) -> usize {
        cores.clamp(1, self.max_width)
    }

    /// Ideal (sync-free) speedup at the given width.
    pub fn ideal_speedup(&self, width: usize) -> f64 {
        let w = width.clamp(1, self.max_width) as f64;
        let f = self.parallel_fraction;
        1.0 / ((1.0 - f) + f / w)
    }

    /// Split `work` units into the serial part and the per-shard parallel
    /// part at the given width: `(serial, per_shard)`.
    ///
    /// `serial + width * per_shard ≈ work` (integer rounding keeps the
    /// total within `width` units).
    pub fn split_work(&self, work: u64, width: usize) -> (u64, u64) {
        let w = self.width(width);
        if w <= 1 || self.parallel_fraction <= 0.0 {
            return (work, 0);
        }
        let parallel = (work as f64 * self.parallel_fraction) as u64;
        let serial = work - parallel;
        (serial, parallel.div_ceil(w as u64))
    }

    /// Whether sharding is worthwhile at all.
    pub fn is_parallel(&self) -> bool {
        self.parallel_fraction > 0.0 && self.max_width > 1
    }
}

impl Default for InnerParallelism {
    fn default() -> Self {
        InnerParallelism::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_speeds_up() {
        let p = InnerParallelism::none();
        assert_eq!(p.ideal_speedup(28), 1.0);
        assert_eq!(p.split_work(1_000, 28), (1_000, 0));
        assert!(!p.is_parallel());
    }

    #[test]
    fn amdahl_saturates_like_fig9() {
        // The paper's aggregate original TLP: ~3.7x at 14 cores, ~3.76x at
        // 28. A fraction of ~0.75 reproduces that saturation shape.
        let p = InnerParallelism::amdahl(0.75, usize::MAX);
        let s14 = p.ideal_speedup(14);
        let s28 = p.ideal_speedup(28);
        assert!(s14 > 3.0 && s14 < 4.2, "s14 = {s14}");
        assert!(s28 - s14 < 0.6, "gain from doubling cores should be small");
    }

    #[test]
    fn split_work_conserves_total() {
        let p = InnerParallelism::amdahl(0.8, usize::MAX);
        for width in [1usize, 2, 7, 28] {
            let (serial, shard) = p.split_work(10_000, width);
            let total = serial + shard * p.width(width) as u64;
            assert!(total >= 10_000, "lost work at width {width}");
            assert!(total <= 10_000 + width as u64, "excess at width {width}");
        }
    }

    #[test]
    fn max_width_caps_speedup() {
        let p = InnerParallelism::amdahl(1.0, 4);
        assert_eq!(p.width(28), 4);
        assert!((p.ideal_speedup(28) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_monotone_in_width() {
        let p = InnerParallelism::amdahl(0.9, usize::MAX);
        let mut prev = 0.0;
        for w in 1..=32 {
            let s = p.ideal_speedup(w);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn rejects_bad_fraction() {
        InnerParallelism::amdahl(1.5, 2);
    }
}
