//! Deterministic randomness for nondeterministic programs.
//!
//! The benchmarks STATS targets are *nondeterministic*: their outputs vary
//! run to run because of random sampling (particle filters, Monte Carlo,
//! random center openings). To reproduce that behaviour deterministically
//! per experiment, every source of randomness flows through [`StatsRng`],
//! a seeded ChaCha stream. Different *runs* use different master seeds;
//! within a run, each (chunk, role, replica) gets an independent derived
//! stream so the execution schedule cannot change the values drawn — the
//! simulated and threaded runtimes therefore make identical
//! commit/abort decisions.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The role a derived RNG stream plays within the STATS execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamRole {
    /// The single stream of a plain sequential execution.
    Sequential,
    /// The speculative run of a chunk (and its continuation if committed).
    Chunk(usize),
    /// The alternative producer feeding a chunk.
    AltProducer(usize),
    /// Replica `replica` of the original-state generation at the end of a
    /// chunk.
    OriginalState { chunk: usize, replica: usize },
    /// The re-execution of a chunk after an abort.
    Rerun(usize),
    /// The alternative producer of breadth candidate `candidate` (>= 1)
    /// feeding a chunk. Candidate 0 uses [`StreamRole::AltProducer`], so
    /// breadth 1 reproduces the historical streams bit for bit.
    AltCandidate { chunk: usize, candidate: usize },
    /// The speculative run of breadth candidate `candidate` (>= 1) of a
    /// chunk. Candidate 0 uses [`StreamRole::Chunk`].
    ChunkCandidate { chunk: usize, candidate: usize },
}

impl StreamRole {
    fn tag(self) -> u64 {
        match self {
            StreamRole::Sequential => 0x5E00,
            StreamRole::Chunk(c) => 0x1000_0000 + c as u64,
            StreamRole::AltProducer(c) => 0x2000_0000 + c as u64,
            StreamRole::OriginalState { chunk, replica } => {
                0x3000_0000 + (chunk as u64) * 1_024 + replica as u64
            }
            StreamRole::Rerun(c) => 0x4000_0000 + c as u64,
            StreamRole::AltCandidate { chunk, candidate } => {
                0x5000_0000 + (chunk as u64) * 1_024 + candidate as u64
            }
            StreamRole::ChunkCandidate { chunk, candidate } => {
                0x6000_0000 + (chunk as u64) * 1_024 + candidate as u64
            }
        }
    }
}

/// A seeded random stream handed to [`StateDependence::update`]
/// implementations.
///
/// [`StateDependence::update`]: crate::StateDependence::update
#[derive(Debug, Clone)]
pub struct StatsRng {
    inner: ChaCha8Rng,
    draws: u64,
}

impl StatsRng {
    /// A stream derived from a run's master seed and a role.
    pub fn derive(master_seed: u64, role: StreamRole) -> Self {
        // SplitMix-style mixing of seed and role tag.
        let mut z = master_seed ^ role.tag().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        StatsRng {
            inner: ChaCha8Rng::seed_from_u64(z),
            draws: 0,
        }
    }

    /// A stream seeded directly (tests, standalone tools).
    pub fn from_seed_value(seed: u64) -> Self {
        StatsRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            draws: 0,
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.draws += 1;
        self.inner.gen::<f64>()
    }

    /// Zero-mean uniform noise in `[-amplitude, amplitude)`.
    pub fn noise(&mut self, amplitude: f64) -> f64 {
        (self.unit() * 2.0 - 1.0) * amplitude
    }

    /// Standard-normal draw (Box–Muller; two underlying draws).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.unit().max(1e-12);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform draw from a range.
    pub fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.draws += 1;
        self.inner.gen_range(range)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Number of draws made so far (diagnostics).
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

impl RngCore for StatsRng {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws += 1;
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.draws += 1;
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StatsRng::derive(42, StreamRole::Chunk(3));
        let mut b = StatsRng::derive(42, StreamRole::Chunk(3));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn roles_are_independent() {
        let mut a = StatsRng::derive(42, StreamRole::Chunk(3));
        let mut b = StatsRng::derive(42, StreamRole::AltProducer(3));
        let mut c = StatsRng::derive(42, StreamRole::Rerun(3));
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(y, z);
        assert_ne!(x, z);
    }

    #[test]
    fn replicas_are_independent() {
        let mut r0 = StatsRng::derive(
            7,
            StreamRole::OriginalState {
                chunk: 1,
                replica: 0,
            },
        );
        let mut r1 = StatsRng::derive(
            7,
            StreamRole::OriginalState {
                chunk: 1,
                replica: 1,
            },
        );
        assert_ne!(r0.next_u64(), r1.next_u64());
    }

    #[test]
    fn breadth_candidates_are_independent() {
        // Each candidate of a chunk draws from its own stream, distinct
        // from the primary candidate's legacy streams and from every
        // other candidate of the same or a neighbouring chunk.
        let mut primary_alt = StatsRng::derive(42, StreamRole::AltProducer(3));
        let mut primary_chunk = StatsRng::derive(42, StreamRole::Chunk(3));
        let mut alt1 = StatsRng::derive(
            42,
            StreamRole::AltCandidate {
                chunk: 3,
                candidate: 1,
            },
        );
        let mut chunk1 = StatsRng::derive(
            42,
            StreamRole::ChunkCandidate {
                chunk: 3,
                candidate: 1,
            },
        );
        let mut alt2 = StatsRng::derive(
            42,
            StreamRole::AltCandidate {
                chunk: 3,
                candidate: 2,
            },
        );
        let mut next_chunk = StatsRng::derive(
            42,
            StreamRole::AltCandidate {
                chunk: 4,
                candidate: 1,
            },
        );
        let draws = [
            primary_alt.next_u64(),
            primary_chunk.next_u64(),
            alt1.next_u64(),
            chunk1.next_u64(),
            alt2.next_u64(),
            next_chunk.next_u64(),
        ];
        for (i, a) in draws.iter().enumerate() {
            for b in &draws[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StatsRng::derive(1, StreamRole::Sequential);
        let mut b = StatsRng::derive(2, StreamRole::Sequential);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = StatsRng::from_seed_value(9);
        for _ in 0..1_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn noise_is_bounded_and_zero_mean() {
        let mut r = StatsRng::from_seed_value(9);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.noise(0.5);
            assert!((-0.5..0.5).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64).abs() < 0.02);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = StatsRng::from_seed_value(11);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.gaussian();
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn chance_respects_probability() {
        let mut r = StatsRng::from_seed_value(13);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn draw_counter_advances() {
        let mut r = StatsRng::from_seed_value(1);
        assert_eq!(r.draws(), 0);
        r.unit();
        r.gen_range(0..10);
        assert_eq!(r.draws(), 2);
    }
}
