//! Fluent entry point for running a workload under STATS.
//!
//! [`Stats`] is a non-consuming builder over the pieces the lower-level
//! APIs take separately — configuration, inner-parallelism profile,
//! machine — with validation at the terminal methods:
//!
//! ```
//! use stats_core::builder::Stats;
//! use stats_core::{StateDependence, UpdateCost, StatsRng};
//!
//! struct Sum;
//! impl StateDependence for Sum {
//!     type State = f64; type Input = f64; type Output = f64;
//!     fn fresh_state(&self) -> f64 { 0.0 }
//!     fn update(&self, s: &mut f64, x: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
//!         *s = 0.5 * *s + 0.5 * (*x + rng.noise(0.01));
//!         (*s, UpdateCost::with_work(10_000))
//!     }
//!     fn states_match(&self, a: &f64, b: &f64) -> bool { (a - b).abs() < 0.1 }
//!     fn state_bytes(&self) -> usize { 8 }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inputs: Vec<f64> = (0..280).map(|i| (i as f64).sin()).collect();
//! let report = Stats::of(&Sum)
//!     .chunks(14)
//!     .lookback(8)
//!     .extra_states(2)
//!     .run_simulated(&inputs, 42)?;
//! assert_eq!(report.outputs.len(), 280);
//! # Ok(())
//! # }
//! ```

use crate::config::{Config, ConfigError};
use crate::dependence::StateDependence;
use crate::report::RunReport;
use crate::runtime::simulated::SimulatedRuntime;
use crate::runtime::threaded::{run_threaded, ThreadedRun};
use crate::tlp::InnerParallelism;
use stats_platform::Machine;
use std::fmt;

/// Errors from the builder's terminal methods.
#[derive(Debug)]
pub enum StatsError {
    /// The assembled configuration is invalid for the input length.
    InvalidConfig(ConfigError),
    /// The platform simulator rejected the run (an internal bug —
    /// generated graphs are acyclic).
    Simulation(stats_platform::SimError),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            StatsError::Simulation(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for StatsError {}

impl From<ConfigError> for StatsError {
    fn from(e: ConfigError) -> Self {
        StatsError::InvalidConfig(e)
    }
}

/// Builder for STATS executions of one workload.
#[derive(Debug)]
pub struct Stats<'w, W> {
    workload: &'w W,
    name: String,
    config: Config,
    inner: InnerParallelism,
    machine: Machine,
}

impl<'w, W: StateDependence> Stats<'w, W> {
    /// Start configuring a run of `workload` (defaults: 28 chunks,
    /// lookback 8, one extra original state, STATS TLP only, the paper's
    /// 28-core machine).
    pub fn of(workload: &'w W) -> Self {
        Stats {
            workload,
            name: "stats".to_string(),
            config: Config::stats_only(28, 8, 1),
            inner: InnerParallelism::none(),
            machine: Machine::paper_machine(),
        }
    }

    /// Scenario name used in traces and reports.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Number of parallel chunks (the STATS TLP degree).
    pub fn chunks(&mut self, chunks: usize) -> &mut Self {
        self.config.chunks = chunks;
        self
    }

    /// Alternative-producer lookback `k`.
    pub fn lookback(&mut self, k: usize) -> &mut Self {
        self.config.lookback = k;
        self
    }

    /// Extra original states `m` per chunk boundary.
    pub fn extra_states(&mut self, m: usize) -> &mut Self {
        self.config.extra_states = m;
        self
    }

    /// Speculation breadth `b`: alternative candidates raced per
    /// speculative chunk (1 is the historical protocol).
    pub fn spec_breadth(&mut self, b: usize) -> &mut Self {
        self.config.spec_breadth = b;
        self
    }

    /// Overlap abort recovery: split reruns into pool segments that
    /// release boundary replicas early instead of blocking the
    /// coordinator.
    pub fn overlap_rerun(&mut self, on: bool) -> &mut Self {
        self.config.overlap_rerun = on;
        self
    }

    /// Combine the program's inner TLP with the STATS TLP, using the given
    /// profile ("Par. STATS").
    pub fn combine_inner_tlp(&mut self, inner: InnerParallelism) -> &mut Self {
        self.config.combine_inner_tlp = true;
        self.inner = inner;
        self
    }

    /// Use a whole explicit configuration.
    pub fn config(&mut self, config: Config) -> &mut Self {
        self.config = config;
        self
    }

    /// Run on a specific machine instead of the paper's 28-core default.
    pub fn machine(&mut self, machine: Machine) -> &mut Self {
        self.machine = machine;
        self
    }

    /// The configuration as currently assembled.
    pub fn assembled_config(&self) -> Config {
        self.config
    }

    /// Execute on the deterministic simulated machine.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidConfig`] if the configuration does not fit the
    /// input length; [`StatsError::Simulation`] on internal scheduler
    /// errors.
    pub fn run_simulated(
        &self,
        inputs: &[W::Input],
        seed: u64,
    ) -> Result<RunReport<W::Output>, StatsError> {
        self.config.validate(inputs.len())?;
        SimulatedRuntime::new(self.machine.clone())
            .run(
                &self.name,
                self.workload,
                inputs,
                self.config,
                self.inner,
                seed,
            )
            .map_err(StatsError::Simulation)
    }

    /// Execute on real host threads (same decisions and outputs as the
    /// simulated run for the same seed).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidConfig`] if the configuration does not fit the
    /// input length.
    pub fn run_threaded(
        &self,
        inputs: &[W::Input],
        seed: u64,
    ) -> Result<ThreadedRun<W::Output>, StatsError>
    where
        W: Sync,
    {
        self.config.validate(inputs.len())?;
        Ok(run_threaded(self.workload, inputs, self.config, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StatsRng;
    use crate::UpdateCost;

    struct Ema;
    impl StateDependence for Ema {
        type State = f64;
        type Input = f64;
        type Output = f64;
        fn fresh_state(&self) -> f64 {
            0.0
        }
        fn update(&self, s: &mut f64, x: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
            *s = 0.5 * *s + 0.5 * (*x + rng.noise(0.01));
            (*s, UpdateCost::with_work(50_000))
        }
        fn states_match(&self, a: &f64, b: &f64) -> bool {
            (a - b).abs() < 0.1
        }
        fn state_bytes(&self) -> usize {
            8
        }
    }

    fn inputs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.1).sin()).collect()
    }

    #[test]
    fn builder_runs_with_defaults() {
        let ins = inputs(560);
        let report = Stats::of(&Ema).run_simulated(&ins, 1).unwrap();
        assert_eq!(report.outputs.len(), 560);
        assert!(report.speedup() > 4.0);
    }

    #[test]
    fn builder_chains_configuration() {
        let ins = inputs(200);
        let mut b = Stats::of(&Ema);
        b.name("chained").chunks(4).lookback(2).extra_states(0);
        assert_eq!(b.assembled_config(), Config::stats_only(4, 2, 0));
        let report = b.run_simulated(&ins, 2).unwrap();
        assert_eq!(report.config.chunks, 4);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let ins = inputs(10);
        let mut b = Stats::of(&Ema);
        b.chunks(100);
        let err = b.run_simulated(&ins, 1).unwrap_err();
        assert!(matches!(err, StatsError::InvalidConfig(_)));
        assert!(err.to_string().contains("exceed"));
    }

    #[test]
    fn builder_threaded_matches_simulated() {
        let ins = inputs(120);
        let mut b = Stats::of(&Ema);
        b.chunks(4).lookback(4).extra_states(1);
        let sim = b.run_simulated(&ins, 7).unwrap();
        let thr = b.run_threaded(&ins, 7).unwrap();
        assert_eq!(sim.outputs, thr.outputs);
        assert_eq!(sim.decisions, thr.decisions);
    }

    #[test]
    fn builder_breadth_and_overlap_flow_into_the_config() {
        let mut b = Stats::of(&Ema);
        b.chunks(4)
            .lookback(2)
            .extra_states(1)
            .spec_breadth(3)
            .overlap_rerun(true);
        let cfg = b.assembled_config();
        assert_eq!(cfg.spec_breadth, 3);
        assert!(cfg.overlap_rerun);
        let ins = inputs(120);
        let sim = b.run_simulated(&ins, 7).unwrap();
        let thr = b.run_threaded(&ins, 7).unwrap();
        assert_eq!(sim.outputs, thr.outputs);
        assert_eq!(sim.decisions, thr.decisions);
        // Zero breadth is rejected at the terminal methods.
        b.spec_breadth(0);
        assert!(matches!(
            b.run_simulated(&ins, 7),
            Err(StatsError::InvalidConfig(_))
        ));
    }

    #[test]
    fn combine_switches_mode() {
        let mut b = Stats::of(&Ema);
        assert!(!b.assembled_config().combine_inner_tlp);
        b.combine_inner_tlp(InnerParallelism::amdahl(0.8, 8));
        assert!(b.assembled_config().combine_inner_tlp);
    }
}
