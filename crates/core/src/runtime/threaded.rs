//! The STATS execution model on real operating-system threads.
//!
//! This executor runs the exact protocol of §II-B with `std::thread` and
//! crossbeam channels: one worker per chunk (alternative producer followed
//! by the speculative run), original-state replicas forked at each
//! boundary, a coordinator performing sequential-order commit checks, and
//! serialized re-execution on abort.
//!
//! Because all randomness flows through per-role derived streams
//! ([`crate::rng::StreamRole`]), this executor makes *identical*
//! commit/abort decisions and produces *identical* outputs to the
//! simulated runtime for the same `(workload, inputs, config, seed)` —
//! property-tested in the crate's test suite.

use crate::config::Config;
use crate::dependence::StateDependence;
use crate::planner::plan_balanced;
use crate::report::ChunkDecision;
use crate::rng::{StatsRng, StreamRole};
use crate::speculation::run_segment;
use crossbeam::channel::bounded;
use stats_telemetry::{Counter, Event, TelemetrySink};
use std::time::{Duration, Instant};

/// Nanoseconds since `start`, saturating at `u64::MAX`.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Result of a threaded STATS execution.
#[derive(Debug, Clone)]
pub struct ThreadedRun<O> {
    /// Realized outputs, in input order.
    pub outputs: Vec<O>,
    /// Per-chunk decisions.
    pub decisions: Vec<ChunkDecision>,
    /// Wall-clock time of the parallel region (host-dependent; informative
    /// only — all figures use the deterministic simulated runtime).
    pub elapsed: Duration,
}

impl<O> ThreadedRun<O> {
    /// Number of aborted chunks.
    pub fn aborts(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| **d == ChunkDecision::Aborted)
            .count()
    }
}

/// What the coordinator tells a worker after validating its speculation.
enum Verdict<S> {
    Commit,
    Abort(Box<S>),
}

/// A worker's report to the coordinator.
struct WorkerResult<S, O> {
    spec_state: Option<S>,
    outputs: Vec<O>,
    snapshot: S,
    final_state: S,
}

/// Run the STATS protocol on real threads.
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()` or a worker thread
/// panics (workload `update` panicked).
pub fn run_threaded<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    run_threaded_observed(workload, inputs, config, master_seed, None)
}

/// [`run_threaded`] with live telemetry.
///
/// When `telemetry` is given, workers record protocol counters into it
/// lock-free while the run is in flight (chunk lifecycle, state copies,
/// comparisons, busy/idle nanoseconds, validation-queue depth) and emit
/// structured events if the sink carries an event log. Recording points
/// match the semantic layer exactly, so a quiesced snapshot reconciles
/// with [`crate::speculation::run_speculative`] for the same seed.
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()` or a worker thread
/// panics (workload `update` panicked).
pub fn run_threaded_observed<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    config
        .validate(inputs.len())
        .expect("invalid configuration for input length");
    let plan = plan_balanced(inputs.len(), config.chunks);
    run_threaded_planned_observed(workload, inputs, config, plan, master_seed, telemetry)
}

/// [`run_threaded`] with an explicit chunk plan (parity with
/// [`crate::speculation::run_speculative_planned`]).
///
/// # Panics
///
/// Panics if the plan does not match the configuration or a worker
/// panics.
pub fn run_threaded_planned<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    plan: crate::planner::ChunkPlan,
    master_seed: u64,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    run_threaded_planned_observed(workload, inputs, config, plan, master_seed, None)
}

/// [`run_threaded_planned`] with live telemetry (see
/// [`run_threaded_observed`] for what gets recorded).
///
/// # Panics
///
/// Panics if the plan does not match the configuration or a worker
/// panics.
pub fn run_threaded_planned_observed<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    plan: crate::planner::ChunkPlan,
    master_seed: u64,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    assert_eq!(
        plan.inputs(),
        inputs.len(),
        "plan does not cover the input stream"
    );
    assert_eq!(plan.len(), config.chunks, "plan chunk count mismatch");
    let chunks = plan.len();
    let k = config.lookback;
    let m = config.extra_states;
    // stats-analyzer: allow(ND002): informative wall-clock only (ThreadedRun::elapsed)
    let start_time = Instant::now();

    // Channels: worker -> coordinator results, coordinator -> worker
    // verdicts, worker -> coordinator rerun results.
    let mut result_rx = Vec::with_capacity(chunks);
    let mut verdict_tx = Vec::with_capacity(chunks);
    let mut rerun_rx = Vec::with_capacity(chunks);
    let mut worker_ends = Vec::with_capacity(chunks);
    for _ in 0..chunks {
        let (rtx, rrx) = bounded::<WorkerResult<W::State, W::Output>>(1);
        let (vtx, vrx) = bounded::<Verdict<W::State>>(1);
        let (xtx, xrx) = bounded::<WorkerResult<W::State, W::Output>>(1);
        result_rx.push(rrx);
        verdict_tx.push(vtx);
        rerun_rx.push(xrx);
        worker_ends.push((rtx, vrx, xtx));
    }

    let mut decisions = vec![ChunkDecision::First; chunks];
    let mut outputs_per_chunk: Vec<Vec<W::Output>> = Vec::with_capacity(chunks);

    std::thread::scope(|scope| {
        // ---- workers ------------------------------------------------------
        for (c, (rtx, vrx, xtx)) in worker_ends.into_iter().enumerate() {
            let range = plan.chunk(c);
            scope.spawn(move || {
                // stats-analyzer: allow(ND002): telemetry busy/idle accounting, not workload semantics
                let busy_start = Instant::now();
                if let Some(t) = telemetry {
                    t.incr(c, Counter::ChunksStarted);
                    t.event(&Event::ChunkStarted {
                        chunk: c,
                        len: range.len(),
                    });
                }
                let (spec_state, start_state) = if c == 0 {
                    (None, workload.fresh_state())
                } else {
                    let mut rng = StatsRng::derive(master_seed, StreamRole::AltProducer(c));
                    let mut st = workload.fresh_state();
                    for input in &inputs[range.start - k..range.start] {
                        workload.update(&mut st, input, &mut rng);
                    }
                    // Speculative-state hand-off to the coordinator (Fig. 6).
                    if let Some(t) = telemetry {
                        t.incr(c, Counter::StateCopies);
                    }
                    (Some(st.clone()), st)
                };
                let mut rng = StatsRng::derive(master_seed, StreamRole::Chunk(c));
                let run = run_segment(workload, start_state, inputs, range.clone(), k, &mut rng);
                if let Some(t) = telemetry {
                    t.add(c, Counter::BusyTime, elapsed_ns(busy_start));
                    t.queue_enter();
                }
                rtx.send(WorkerResult {
                    spec_state,
                    outputs: run.outputs,
                    snapshot: run.snapshot,
                    final_state: run.final_state,
                })
                .expect("coordinator alive");
                // stats-analyzer: allow(ND002): telemetry busy/idle accounting, not workload semantics
                let idle_start = Instant::now();
                match vrx.recv().expect("coordinator alive") {
                    Verdict::Commit => {
                        if let Some(t) = telemetry {
                            t.add(c, Counter::IdleTime, elapsed_ns(idle_start));
                        }
                    }
                    Verdict::Abort(true_state) => {
                        // stats-analyzer: allow(ND002): telemetry busy/idle accounting, not workload semantics
                        let rerun_start = Instant::now();
                        if let Some(t) = telemetry {
                            t.add(c, Counter::IdleTime, elapsed_ns(idle_start));
                            t.incr(c, Counter::Reruns);
                        }
                        let mut rng = StatsRng::derive(master_seed, StreamRole::Rerun(c));
                        let rerun = run_segment(workload, *true_state, inputs, range, k, &mut rng);
                        if let Some(t) = telemetry {
                            t.add(c, Counter::BusyTime, elapsed_ns(rerun_start));
                        }
                        xtx.send(WorkerResult {
                            spec_state: None,
                            outputs: rerun.outputs,
                            snapshot: rerun.snapshot,
                            final_state: rerun.final_state,
                        })
                        .expect("coordinator alive");
                        if let Some(t) = telemetry {
                            t.event(&Event::RerunFinished { chunk: c });
                        }
                    }
                }
            });
        }

        // ---- coordinator: sequential-order commit checks -------------------
        let mut prev_final: Option<W::State> = None;
        let mut prev_snapshot: Option<W::State> = None;
        for c in 0..chunks {
            let result = result_rx[c].recv().expect("worker alive");
            if let Some(t) = telemetry {
                t.queue_leave();
            }
            if c == 0 {
                decisions[0] = ChunkDecision::First;
                verdict_tx[0].send(Verdict::Commit).expect("worker alive");
                prev_final = Some(result.final_state);
                prev_snapshot = Some(result.snapshot);
                outputs_per_chunk.push(result.outputs);
                continue;
            }
            let spec_state = result.spec_state.as_ref().expect("speculative chunk");
            let pf = prev_final.take().expect("previous final state");
            let snapshot = prev_snapshot.take().expect("previous snapshot");
            // Generate the m extra original states in parallel (Fig. 5).
            let prev_range = plan.chunk(c - 1);
            let replay_start = prev_range.end.saturating_sub(k).max(prev_range.start);
            let mut replica_states: Vec<Option<W::State>> = Vec::new();
            std::thread::scope(|rep_scope| {
                let handles: Vec<_> = (0..m)
                    .map(|j| {
                        let snap = snapshot.clone();
                        let replay = replay_start..prev_range.end;
                        rep_scope.spawn(move || {
                            let mut rng = StatsRng::derive(
                                master_seed,
                                StreamRole::OriginalState {
                                    chunk: c - 1,
                                    replica: j,
                                },
                            );
                            let mut st = snap;
                            for idx in replay {
                                workload.update(&mut st, &inputs[idx], &mut rng);
                            }
                            st
                        })
                    })
                    .collect();
                for h in handles {
                    replica_states.push(Some(h.join().expect("replica thread")));
                }
            });
            if let Some(t) = telemetry {
                // One snapshot clone feeds each replica.
                t.add(c, Counter::ReplicasValidated, m as u64);
                t.add(c, Counter::StateCopies, m as u64);
            }
            // Ordered comparison: producer's own final state first, then
            // replicas — identical order to the semantic layer.
            let mut comparisons = 1u64;
            let mut matched: Option<usize> = workload.states_match(spec_state, &pf).then_some(0);
            for (j, st) in replica_states.iter().flatten().enumerate() {
                if matched.is_some() {
                    break;
                }
                comparisons += 1;
                if workload.states_match(spec_state, st) {
                    matched = Some(j + 1);
                }
            }
            if let Some(t) = telemetry {
                t.add(c, Counter::StateComparisons, comparisons);
                t.event(&Event::ValidationFinished {
                    chunk: c,
                    comparisons,
                    matched_original: matched,
                });
            }
            if matched.is_some() {
                decisions[c] = ChunkDecision::Committed;
                if let Some(t) = telemetry {
                    t.incr(c, Counter::ChunksCommitted);
                    t.event(&Event::ChunkCommitted { chunk: c });
                }
                verdict_tx[c].send(Verdict::Commit).expect("worker alive");
                prev_final = Some(result.final_state);
                prev_snapshot = Some(result.snapshot);
                outputs_per_chunk.push(result.outputs);
            } else {
                decisions[c] = ChunkDecision::Aborted;
                if let Some(t) = telemetry {
                    // True-state transfer to the aborted worker.
                    t.incr(c, Counter::ChunksAborted);
                    t.incr(c, Counter::StateCopies);
                    t.event(&Event::ChunkAborted { chunk: c });
                }
                verdict_tx[c]
                    .send(Verdict::Abort(Box::new(pf)))
                    .expect("worker alive");
                let rerun = rerun_rx[c].recv().expect("worker alive");
                prev_final = Some(rerun.final_state);
                prev_snapshot = Some(rerun.snapshot);
                outputs_per_chunk.push(rerun.outputs);
            }
        }
    });

    if let Some(t) = telemetry {
        t.event(&Event::RunFinished {
            committed: decisions
                .iter()
                .filter(|d| **d == ChunkDecision::Committed)
                .count(),
            aborted: decisions
                .iter()
                .filter(|d| **d == ChunkDecision::Aborted)
                .count(),
        });
        t.flush();
    }
    ThreadedRun {
        outputs: outputs_per_chunk.into_iter().flatten().collect(),
        decisions,
        elapsed: start_time.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::UpdateCost;
    use crate::speculation::run_speculative;

    struct Ema {
        decay: f64,
        tolerance: f64,
    }

    impl StateDependence for Ema {
        type State = f64;
        type Input = f64;
        type Output = f64;
        fn fresh_state(&self) -> f64 {
            0.0
        }
        fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
            *state = self.decay * *state + (1.0 - self.decay) * (*input + rng.noise(0.001));
            (*state, UpdateCost::with_work(50))
        }
        fn states_match(&self, a: &f64, b: &f64) -> bool {
            (a - b).abs() < self.tolerance
        }
        fn state_bytes(&self) -> usize {
            8
        }
    }

    fn inputs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.05).sin()).collect()
    }

    #[test]
    fn threaded_matches_semantic_layer() {
        let w = Ema {
            decay: 0.6,
            tolerance: 0.02,
        };
        let ins = inputs(200);
        let cfg = Config::stats_only(5, 10, 2);
        let threaded = run_threaded(&w, &ins, cfg, 42);
        let semantic = run_speculative(&w, &ins, cfg, 42);
        assert_eq!(threaded.outputs, semantic.outputs);
        let semantic_decisions: Vec<_> = semantic.chunks.iter().map(|c| c.decision).collect();
        assert_eq!(threaded.decisions, semantic_decisions);
    }

    #[test]
    fn threaded_matches_semantic_layer_with_aborts() {
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1);
        let threaded = run_threaded(&w, &ins, cfg, 7);
        let semantic = run_speculative(&w, &ins, cfg, 7);
        assert!(threaded.aborts() > 0, "this setup must abort");
        assert_eq!(threaded.outputs, semantic.outputs);
        assert_eq!(
            threaded.decisions,
            semantic
                .chunks
                .iter()
                .map(|c| c.decision)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_chunk_runs_sequentially() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.1,
        };
        let ins = inputs(32);
        let run = run_threaded(&w, &ins, Config::sequential(), 1);
        assert_eq!(run.outputs.len(), 32);
        assert_eq!(run.decisions, vec![ChunkDecision::First]);
        assert_eq!(run.aborts(), 0);
    }

    #[test]
    fn planned_threaded_matches_planned_semantics() {
        use crate::planner::plan_weighted;
        use crate::speculation::run_speculative_planned;
        let w = Ema {
            decay: 0.6,
            tolerance: 0.02,
        };
        let ins = inputs(200);
        let cfg = Config::stats_only(5, 10, 1);
        let plan = plan_weighted(200, 5, |i| 1 + (i % 3) as u64);
        let semantic = run_speculative_planned(&w, &ins, cfg, plan.clone(), 4);
        let threaded = run_threaded_planned(&w, &ins, cfg, plan, 4);
        assert_eq!(threaded.outputs, semantic.outputs);
        assert_eq!(
            threaded.decisions,
            semantic
                .chunks
                .iter()
                .map(|c| c.decision)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn observed_counters_match_semantic_outcome() {
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 2);
        let sink = TelemetrySink::new(cfg.chunks);
        let threaded = run_threaded_observed(&w, &ins, cfg, 7, Some(&sink));
        let semantic = run_speculative(&w, &ins, cfg, 7);
        let snap = sink.snapshot();
        assert!(snap.consistent, "quiesced snapshot must be consistent");

        let chunks = cfg.chunks as u64;
        let m = cfg.extra_states as u64;
        let aborts = semantic.aborts() as u64;
        let committed = semantic
            .chunks
            .iter()
            .filter(|c| c.decision == ChunkDecision::Committed)
            .count() as u64;
        assert_eq!(snap.get(Counter::ChunksStarted), chunks);
        assert_eq!(snap.get(Counter::ChunksCommitted), committed);
        assert_eq!(snap.get(Counter::ChunksAborted), aborts);
        assert_eq!(snap.get(Counter::Reruns), aborts);
        assert_eq!(snap.get(Counter::ReplicasValidated), (chunks - 1) * m);
        // Copies: spec hand-off per producer + m snapshots per boundary +
        // one true-state transfer per abort.
        assert_eq!(
            snap.get(Counter::StateCopies),
            (chunks - 1) + (chunks - 1) * m + aborts
        );
        // Comparisons: the shared ordered-comparison formula per chunk.
        let expected_comparisons: u64 = semantic.chunks[1..]
            .iter()
            .map(|c| {
                1 + match c.matched_original {
                    Some(0) => 0,
                    Some(j) => j as u64,
                    None => m,
                }
            })
            .sum();
        assert_eq!(snap.get(Counter::StateComparisons), expected_comparisons);
        assert!(snap.get(Counter::BusyTime) > 0);
        assert!(snap.queue_high_water >= 1);
        // Telemetry must not perturb semantics.
        assert_eq!(threaded.outputs, semantic.outputs);
    }

    #[test]
    fn observed_event_log_records_lifecycle() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1);
        let buf = Buf::default();
        let sink = TelemetrySink::new(cfg.chunks).with_event_writer(Box::new(buf.clone()));
        let run = run_threaded_observed(&w, &ins, cfg, 7, Some(&sink));
        assert!(run.aborts() > 0, "this setup must abort");

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len() as u64, sink.snapshot().events_emitted);
        let count = |kind: &str| {
            lines
                .iter()
                .filter(|l| l.contains(&format!("\"type\":\"{kind}\"")))
                .count()
        };
        assert_eq!(count("chunk_started"), cfg.chunks);
        assert_eq!(count("validation_finished"), cfg.chunks - 1);
        assert_eq!(count("chunk_aborted"), run.aborts());
        assert_eq!(count("rerun_finished"), run.aborts());
        assert_eq!(count("run_finished"), 1);
        for line in &lines {
            stats_telemetry::json::validate(line)
                .unwrap_or_else(|e| panic!("bad event line {line}: {e}"));
        }
    }

    #[test]
    fn repeated_runs_are_reproducible() {
        let w = Ema {
            decay: 0.6,
            tolerance: 0.02,
        };
        let ins = inputs(100);
        let cfg = Config::stats_only(4, 8, 1);
        let a = run_threaded(&w, &ins, cfg, 9);
        let b = run_threaded(&w, &ins, cfg, 9);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.decisions, b.decisions);
    }
}
