//! The STATS execution model on real operating-system threads.
//!
//! This executor runs the exact protocol of §II-B on a persistent
//! [`WorkerPool`]: chunks, original-state replicas and aborted-chunk
//! reruns are *queued tasks* rather than dedicated threads, so
//! `chunks ≫ cores` configurations (the paper sweeps up to 28×4 chunks)
//! no longer oversubscribe the OS scheduler or pay thread-creation
//! latency on the commit path.
//!
//! Three structural optimizations over the naive thread-per-chunk
//! lowering (kept as [`run_threaded_per_chunk`] for comparison — the
//! `native_scaling` bench measures both):
//!
//! * **Pooled chunks** — every chunk is a task on a fixed-width pool
//!   (default [`crate::runtime::pool::default_workers`]); tasks never
//!   block on the coordinator, so a small pool can drain any chunk count.
//! * **Pipelined replicas** — the `m` original-state replicas for the
//!   boundary after chunk `c` are scheduled the moment chunk `c`'s
//!   result (and with it the boundary snapshot) is accepted, on the
//!   pool's *urgent* lane. They replay concurrently with chunk `c+1`'s
//!   still-running speculation; the coordinator only awaits and compares.
//!   Commit order is untouched: validation of chunk `c+1` still happens
//!   on the coordinator, strictly after chunk `c`'s outcome is final
//!   (DESIGN.md §9 gives the full argument).
//! * **Less allocator traffic** — the last replica takes the boundary
//!   snapshot by move instead of cloning it, replay inputs are shared by
//!   reference through the pool scope, and dead states are recycled
//!   through a small [`StatePool`].
//!
//! Because all randomness flows through per-role derived streams
//! ([`crate::rng::StreamRole`]), this executor makes *identical*
//! commit/abort decisions and produces *identical* outputs to the
//! simulated runtime for the same `(workload, inputs, config, seed)` —
//! property-tested in the crate's test suite and in
//! `tests/oversubscription.rs` across all six benchmarks.

use crate::config::Config;
use crate::dependence::StateDependence;
use crate::fault::{self, ChunkAttempt, FaultPlan, FaultSite};
use crate::planner::{plan_balanced, ChunkPlan};
use crate::report::ChunkDecision;
use crate::rng::{StatsRng, StreamRole};
use crate::runtime::pool::{PoolScope, StatePool, WorkerPool};
use crate::snapshot::SnapshotStrategy;
use crate::speculation::run_segment;
use crossbeam::channel::{bounded, Receiver, Sender};
use stats_telemetry::clock::monotonic_ns;
use stats_telemetry::{Category, Counter, Event, Profiler, TelemetrySink};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// The empty fault plan every non-faulted entry point threads through:
/// all guards reduce to one `is_empty` branch, keeping the fault-free
/// path bit-identical to the pre-fault executor.
static NO_FAULTS: FaultPlan = FaultPlan::none();

/// Nanoseconds since the `monotonic_ns` stamp `start_ns`. All wall
/// clock in this module flows through `stats_telemetry::clock` — the
/// single sanctioned read point (analyzer rule ND012) — and feeds
/// telemetry/profiling only, never protocol decisions.
fn ns_since(start_ns: u64) -> u64 {
    monotonic_ns().saturating_sub(start_ns)
}

/// Profiler handle of a sink, if both are present. Span hooks below
/// reduce to this one `Option` check when profiling is off, keeping the
/// counters-only path unchanged.
fn profiler_of(telemetry: Option<&TelemetrySink>) -> Option<&Profiler> {
    telemetry.and_then(TelemetrySink::profiler)
}

/// Stamp a span start only when a profiler is attached.
#[inline]
fn span_start(prof: Option<&Profiler>) -> u64 {
    if prof.is_some() {
        monotonic_ns()
    } else {
        0
    }
}

/// Close a span opened with [`span_start`].
#[inline]
fn span_end(prof: Option<&Profiler>, category: Category, chunk: usize, start_ns: u64) {
    if let Some(p) = prof {
        p.record(category, chunk, start_ns, monotonic_ns());
    }
}

/// Result of a threaded STATS execution.
#[derive(Debug, Clone)]
pub struct ThreadedRun<O> {
    /// Realized outputs, in input order.
    pub outputs: Vec<O>,
    /// Per-chunk decisions.
    pub decisions: Vec<ChunkDecision>,
    /// Wall-clock time of the parallel region (host-dependent; informative
    /// only — all figures use the deterministic simulated runtime).
    pub elapsed: Duration,
    /// Worker parallelism the run executed with: pool width for the
    /// pooled executor, chunk count for the thread-per-chunk baseline.
    pub workers: usize,
}

impl<O> ThreadedRun<O> {
    /// Number of aborted chunks.
    pub fn aborts(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| **d == ChunkDecision::Aborted)
            .count()
    }
}

/// A chunk (or rerun) task's report to the coordinator.
///
/// `snapshot` is `None` only for an overlapped rerun's final segment: its
/// boundary snapshot was consumed by the rerun's first segment, which
/// scheduled the boundary replicas before the suffix even started.
struct WorkerResult<S, O> {
    spec_state: Option<S>,
    outputs: Vec<O>,
    snapshot: Option<S>,
    final_state: S,
}

/// The borrowed context every pool task needs; `Copy` so tasks capture it
/// wholesale without threading five arguments through each closure.
struct RunCtx<'a, W: StateDependence> {
    workload: &'a W,
    inputs: &'a [W::Input],
    k: usize,
    m: usize,
    master_seed: u64,
    strategy: SnapshotStrategy,
    state_bytes: u64,
    telemetry: Option<&'a TelemetrySink>,
    faults: &'a FaultPlan,
}

impl<W: StateDependence> Clone for RunCtx<'_, W> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<W: StateDependence> Copy for RunCtx<'_, W> {}

/// One boundary's replica rendezvous: pool tasks deposit replayed states
/// by index, the coordinator blocks until all `m` have arrived. Index
/// slots keep the comparison order identical to the semantic layer no
/// matter which task finishes first.
struct ReplicaSet<S> {
    slots: Mutex<ReplicaSlots<S>>,
    all_done: Condvar,
}

struct ReplicaSlots<S> {
    states: Vec<Option<S>>,
    remaining: usize,
}

impl<S> ReplicaSet<S> {
    fn new(m: usize) -> Self {
        ReplicaSet {
            slots: Mutex::new(ReplicaSlots {
                states: (0..m).map(|_| None).collect(),
                remaining: m,
            }),
            all_done: Condvar::new(),
        }
    }

    fn put(&self, j: usize, state: S) {
        let mut slots = self.slots.lock().expect("replica mutex");
        debug_assert!(slots.states[j].is_none(), "replica slot filled twice");
        slots.states[j] = Some(state);
        slots.remaining -= 1;
        if slots.remaining == 0 {
            self.all_done.notify_all();
        }
    }

    /// Block until every replica has arrived, then drain them in index
    /// order. Resets nothing: a set serves exactly one boundary.
    ///
    /// Polls `abandoned` while waiting: a replica task killed by a panic
    /// will never `put`, so once the owning scope is poisoned the wait
    /// returns `Err` with the number of missing replicas instead of
    /// hanging the coordinator forever.
    fn wait_unless(&self, abandoned: impl Fn() -> bool) -> Result<Vec<S>, usize> {
        let mut slots = self.slots.lock().expect("replica mutex");
        while slots.remaining > 0 {
            let (guard, _timeout) = self
                .all_done
                .wait_timeout(slots, Duration::from_millis(2))
                .expect("replica mutex");
            slots = guard;
            // stats-analyzer: allow(ND011): the predicate only reads the scope's poison flag; it feeds the abort-the-wait path, never a commit/abort decision
            if slots.remaining > 0 && abandoned() {
                return Err(slots.remaining);
            }
        }
        Ok(slots
            .states
            .iter_mut()
            .map(|s| s.take().expect("replica deposited"))
            .collect())
    }
}

/// Replay one original-state replica: the trailing `k` inputs of
/// `boundary`'s chunk, from the boundary snapshot, on its own derived
/// stream — the same sampling of the acceptable-state space the semantic
/// layer performs.
fn replay_replica<W: StateDependence>(
    ctx: RunCtx<'_, W>,
    mut state: W::State,
    boundary: usize,
    replica: usize,
    replay: (usize, usize),
) -> W::State {
    let mut rng = StatsRng::derive(
        ctx.master_seed,
        StreamRole::OriginalState {
            chunk: boundary,
            replica,
        },
    );
    for idx in replay.0..replay.1 {
        ctx.workload.update(&mut state, &ctx.inputs[idx], &mut rng);
    }
    // Bytes this replica materialized through copy-on-write faults,
    // attributed (like the replica copies themselves) to the chunk this
    // boundary validates.
    let materialized = ctx.workload.take_materialized(&mut state);
    if let Some(t) = ctx.telemetry {
        t.add(boundary + 1, Counter::StateBytesCopied, materialized);
    }
    state
}

/// Schedule the `m` replicas for `boundary` onto the pool's urgent lane,
/// consuming the boundary snapshot. The fan-out task clones `m - 1`
/// working copies through the [`StatePool`] and replays the final replica
/// from the moved snapshot itself — the snapshot is never cloned for the
/// last replica. No-op when `m == 0` (the set is born complete).
fn schedule_replicas<'scope, 'env, W>(
    scope: &'scope PoolScope<'scope, 'env>,
    ctx: RunCtx<'env, W>,
    states: &'env StatePool<W::State>,
    set: &'env ReplicaSet<W::State>,
    boundary: usize,
    replay: (usize, usize),
    snapshot: W::State,
) where
    W: StateDependence + Sync,
{
    let m = ctx.m;
    if m == 0 {
        return;
    }
    // Profiler spans here carry `boundary + 1` — the chunk this
    // boundary's replicas validate — so the attribution engine groups
    // replica-generation time with the seal it gates.
    let validated = boundary + 1;
    scope.spawn_urgent(move || {
        let mut snapshot = snapshot;
        let prof = profiler_of(ctx.telemetry);
        for j in 0..m - 1 {
            let t0 = span_start(prof);
            // Deep clones route through the state free-list to reuse dead
            // allocations; copy-on-write snapshots are O(1) forks with
            // nothing worth recycling.
            let st = match ctx.strategy {
                SnapshotStrategy::DeepClone => states.copy_of(&snapshot),
                SnapshotStrategy::CopyOnWrite => {
                    ctx.workload.snapshot_state(&mut snapshot, ctx.strategy)
                }
            };
            span_end(prof, Category::OriginalStateGen, validated, t0);
            scope.spawn_urgent(move || {
                // Fault guard at task entry: the fork is untouched and no
                // protocol counter is recorded yet, so an in-place retry
                // replays once, on the replica's original derived stream.
                fault::recovery_guard(
                    ctx.faults,
                    FaultSite::Replica {
                        boundary,
                        replica: j,
                    },
                    ctx.telemetry,
                );
                let prof = profiler_of(ctx.telemetry);
                let t0 = span_start(prof);
                let replayed = replay_replica(ctx, st, boundary, j, replay);
                span_end(prof, Category::OriginalStateGen, validated, t0);
                set.put(j, replayed);
            });
        }
        // Final replica: takes the snapshot by move — no clone.
        let last = m - 1;
        fault::recovery_guard(
            ctx.faults,
            FaultSite::Replica {
                boundary,
                replica: last,
            },
            ctx.telemetry,
        );
        let t0 = span_start(prof);
        let replayed = replay_replica(ctx, snapshot, boundary, last, replay);
        span_end(prof, Category::OriginalStateGen, validated, t0);
        set.put(last, replayed);
    });
}

/// The replayed index window feeding the replicas of `boundary`: the
/// trailing `k` inputs of that chunk (clamped to the chunk itself).
fn replay_bounds(plan: &ChunkPlan, boundary: usize, k: usize) -> (usize, usize) {
    let range = plan.chunk(boundary);
    (range.end.saturating_sub(k).max(range.start), range.end)
}

/// Spawn attempt `attempt` of chunk `c`'s breadth candidate `j`:
/// attempt 0 on the normal lane (commit order), fault-plan retries back
/// onto the urgent lane so recovery overtakes queued speculation. The
/// fault guard runs at task entry, before any protocol recording or
/// compute, so the body executes — and records its telemetry — exactly
/// once, on the clearing attempt, on the candidate's original derived
/// streams; recovery is therefore bit-identical to a fault-free run.
fn spawn_chunk_candidate<'scope, 'env, W>(
    scope: &'scope PoolScope<'scope, 'env>,
    ctx: RunCtx<'env, W>,
    c: usize,
    j: usize,
    range: std::ops::Range<usize>,
    tx: Sender<WorkerResult<W::State, W::Output>>,
    attempt: usize,
) where
    W: StateDependence + Sync,
{
    let task = move || {
        match fault::chunk_attempt(ctx.faults, c, j, attempt, ctx.telemetry) {
            ChunkAttempt::Respawn => {
                spawn_chunk_candidate(scope, ctx, c, j, range, tx, attempt + 1);
                return;
            }
            ChunkAttempt::Proceed => {}
        }
        let prof = profiler_of(ctx.telemetry);
        let busy_start = monotonic_ns();
        if j == 0 {
            if let Some(t) = ctx.telemetry {
                t.incr(c, Counter::ChunksStarted);
                t.event(&Event::ChunkStarted {
                    chunk: c,
                    len: range.len(),
                });
            }
        }
        let (spec_state, start_state) = if c == 0 {
            (None, ctx.workload.fresh_state())
        } else {
            if let Some(t) = ctx.telemetry {
                t.incr(c, Counter::SpecCandidates);
            }
            let warm_role = if j == 0 {
                StreamRole::AltProducer(c)
            } else {
                StreamRole::AltCandidate {
                    chunk: c,
                    candidate: j,
                }
            };
            let t_warm = span_start(prof);
            let mut rng = StatsRng::derive(ctx.master_seed, warm_role);
            let mut st = ctx.workload.fresh_state();
            for input in &ctx.inputs[range.start - ctx.k..range.start] {
                ctx.workload.update(&mut st, input, &mut rng);
            }
            span_end(prof, Category::AltProducer, c, t_warm);
            // Speculative-state hand-off to the coordinator
            // (Fig. 6), once per candidate.
            if let Some(t) = ctx.telemetry {
                t.incr(c, Counter::StateCopies);
                t.add(c, Counter::StateBytesLogical, ctx.state_bytes);
                t.add(
                    c,
                    Counter::StateBytesCopied,
                    ctx.workload.snapshot_copy_bytes(ctx.strategy),
                );
            }
            let t_copy = span_start(prof);
            let spec = ctx.workload.snapshot_state(&mut st, ctx.strategy);
            span_end(prof, Category::StateCopy, c, t_copy);
            (Some(spec), st)
        };
        let run_role = if j == 0 {
            StreamRole::Chunk(c)
        } else {
            StreamRole::ChunkCandidate {
                chunk: c,
                candidate: j,
            }
        };
        let mut rng = StatsRng::derive(ctx.master_seed, run_role);
        let t_run = span_start(prof);
        let run = run_segment(
            ctx.workload,
            start_state,
            ctx.inputs,
            range,
            ctx.k,
            ctx.strategy,
            &mut rng,
        );
        span_end(prof, Category::ChunkCompute, c, t_run);
        if let Some(t) = ctx.telemetry {
            t.add(c, Counter::StateBytesCopied, run.materialized);
            t.add(c, Counter::BusyTime, ns_since(busy_start));
            t.queue_enter();
        }
        tx.send(WorkerResult {
            spec_state,
            outputs: run.outputs,
            snapshot: Some(run.snapshot),
            final_state: run.final_state,
        })
        .expect("coordinator alive");
    };
    if attempt == 0 {
        scope.spawn(task);
    } else {
        scope.spawn_urgent(task);
    }
}

/// Run the STATS protocol on real threads (a transient worker pool sized
/// by [`crate::runtime::pool::default_workers`]).
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()` or a pool task
/// panics (workload `update` panicked).
pub fn run_threaded<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    run_threaded_observed(workload, inputs, config, master_seed, None)
}

/// [`run_threaded`] with live telemetry.
///
/// When `telemetry` is given, tasks record protocol counters into it
/// lock-free while the run is in flight (chunk lifecycle, state copies,
/// comparisons, busy nanoseconds, validation-queue depth) and emit
/// structured events if the sink carries an event log. Recording points
/// match the semantic layer exactly, so a quiesced snapshot reconciles
/// with [`crate::speculation::run_speculative`] for the same seed.
///
/// Executes on the process-wide [`WorkerPool::shared`] pool (see its
/// lifetime rule); pass a pool to [`run_threaded_on`] to control width.
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()` or a pool task
/// panics (workload `update` panicked).
pub fn run_threaded_observed<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    run_threaded_on(
        WorkerPool::shared(),
        workload,
        inputs,
        config,
        master_seed,
        telemetry,
    )
}

/// [`run_threaded_observed`] on a caller-provided pool. Reuse one pool
/// across runs to amortize thread creation (the CLI's `--workers N` and
/// the `native_scaling` bench go through here); runs leave no state
/// behind in the pool.
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()` or a pool task
/// panics (workload `update` panicked).
pub fn run_threaded_on<W>(
    pool: &WorkerPool,
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    config
        .validate(inputs.len())
        .expect("invalid configuration for input length");
    let plan = plan_balanced(inputs.len(), config.chunks);
    run_threaded_planned_on(pool, workload, inputs, config, plan, master_seed, telemetry)
}

/// [`run_threaded`] with an explicit chunk plan (parity with
/// [`crate::speculation::run_speculative_planned`]).
///
/// # Panics
///
/// Panics if the plan does not match the configuration or a pool task
/// panics.
pub fn run_threaded_planned<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    plan: ChunkPlan,
    master_seed: u64,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    run_threaded_planned_observed(workload, inputs, config, plan, master_seed, None)
}

/// [`run_threaded_planned`] with live telemetry (see
/// [`run_threaded_observed`] for what gets recorded). Executes on the
/// process-wide [`WorkerPool::shared`] pool.
///
/// # Panics
///
/// Panics if the plan does not match the configuration or a pool task
/// panics.
pub fn run_threaded_planned_observed<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    plan: ChunkPlan,
    master_seed: u64,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    run_threaded_planned_on(
        WorkerPool::shared(),
        workload,
        inputs,
        config,
        plan,
        master_seed,
        telemetry,
    )
}

/// [`run_threaded_planned_observed`] on a caller-provided pool, with no
/// faults injected — a thin wrapper threading the empty plan through
/// [`run_threaded_planned_faulted_on`], bit-identical to the pre-fault
/// executor.
///
/// # Panics
///
/// Panics if the plan does not match the configuration or a pool task
/// panics.
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_planned_on<W>(
    pool: &WorkerPool,
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    plan: ChunkPlan,
    master_seed: u64,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    run_threaded_planned_faulted_on(
        pool,
        workload,
        inputs,
        config,
        plan,
        master_seed,
        &NO_FAULTS,
        telemetry,
    )
}

/// [`run_threaded_on`] under a deterministic [`FaultPlan`]: injections
/// fire at their addressed task sites and the recovery guards retry with
/// exponential backoff (chunk tasks re-spawn on the urgent lane,
/// state-carrying tasks retry in place). For a recoverable plan the run's
/// outputs, decisions, quality, and protocol counters are bit-identical
/// to the fault-free run — only the fault counters/events and wall time
/// differ (see [`crate::fault`] for the argument).
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()`, a pool task panics,
/// or an injection exhausts [`FaultPlan::max_retries`] (the run then
/// fails fast with the injection as the payload).
pub fn run_threaded_faulted_on<W>(
    pool: &WorkerPool,
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
    faults: &FaultPlan,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    config
        .validate(inputs.len())
        .expect("invalid configuration for input length");
    let plan = plan_balanced(inputs.len(), config.chunks);
    run_threaded_planned_faulted_on(
        pool,
        workload,
        inputs,
        config,
        plan,
        master_seed,
        faults,
        telemetry,
    )
}

/// The pooled, pipelined executor: every other `run_threaded_*` entry
/// point lowers to this function, non-faulted callers via the empty
/// plan.
///
/// # Panics
///
/// Panics if the plan does not match the configuration, a pool task
/// panics, or `faults` exhausts its retry bound.
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_planned_faulted_on<W>(
    pool: &WorkerPool,
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    plan: ChunkPlan,
    master_seed: u64,
    faults: &FaultPlan,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    assert_eq!(
        plan.inputs(),
        inputs.len(),
        "plan does not cover the input stream"
    );
    assert_eq!(plan.len(), config.chunks, "plan chunk count mismatch");
    let chunks = plan.len();
    let k = config.lookback;
    let m = config.extra_states;
    let prof = profiler_of(telemetry);
    let start_ns = monotonic_ns();

    let ctx = RunCtx {
        workload,
        inputs,
        k,
        m,
        master_seed,
        strategy: config.snapshot,
        state_bytes: workload.state_bytes() as u64,
        telemetry,
        faults,
    };

    // Chunk-result channels, one per (chunk, candidate); the sending half
    // moves into each candidate task. Chunk 0 is never speculative, so it
    // has exactly one producer regardless of the configured breadth.
    type CandidateReceivers<S, O> = Vec<Vec<Receiver<WorkerResult<S, O>>>>;
    let b = config.spec_breadth.max(1);
    let mut result_rx: CandidateReceivers<W::State, W::Output> = Vec::with_capacity(chunks);
    let mut result_tx = Vec::with_capacity(chunks);
    for c in 0..chunks {
        let cands = if c == 0 { 1 } else { b };
        let mut txs = Vec::with_capacity(cands);
        let mut rxs = Vec::with_capacity(cands);
        for _ in 0..cands {
            let (tx, rx) = bounded::<WorkerResult<W::State, W::Output>>(1);
            txs.push(tx);
            rxs.push(rx);
        }
        result_tx.push(txs);
        result_rx.push(rxs);
    }

    // Pipelined-replica rendezvous, one per boundary, and the state
    // free-list — both live across the whole scope so tasks can borrow
    // them.
    let replica_sets: Vec<ReplicaSet<W::State>> = (0..chunks.saturating_sub(1))
        .map(|_| ReplicaSet::new(m))
        .collect();
    let states: StatePool<W::State> = StatePool::with_capacity(m + 2);

    let mut decisions = vec![ChunkDecision::First; chunks];
    let mut outputs_per_chunk: Vec<Vec<W::Output>> = Vec::with_capacity(chunks);

    // Plan, channel, and rendezvous construction is the run's setup cost.
    span_end(prof, Category::Setup, 0, start_ns);

    pool.scope(|scope| {
        // ---- chunk tasks --------------------------------------------------
        // Queued in commit order on the normal lane, candidate-major within
        // a chunk; replicas and reruns overtake them through the urgent
        // lane. Tasks compute, send, and exit — no task ever blocks on the
        // coordinator, so any pool width drains any chunk count. Candidate
        // 0 runs the historical streams, so a breadth-1 run is bit-for-bit
        // the pre-breadth executor; candidates above 0 warm up and run on
        // their own derived streams, sampling alternative start states.
        for (c, txs) in result_tx.into_iter().enumerate() {
            for (j, tx) in txs.into_iter().enumerate() {
                spawn_chunk_candidate(scope, ctx, c, j, plan.chunk(c), tx, 0);
            }
        }

        // ---- coordinator: sequential-order commit checks ------------------
        // Runs on the calling thread (not a pool worker): it may block on
        // chunk results and replica rendezvous without holding up the pool.
        let mut prev_final: Option<W::State> = None;
        // An in-flight overlapped rerun: its final segment's result is
        // received only when the *next* chunk's validation needs the true
        // state, so the rerun suffix overlaps replica generation instead
        // of parking the coordinator.
        let mut pending_rerun: Option<Receiver<WorkerResult<W::State, W::Output>>> = None;
        for c in 0..chunks {
            let mut cand_results = Vec::with_capacity(result_rx[c].len());
            for rx in &result_rx[c] {
                let t_recv = span_start(prof);
                let result = match rx.recv() {
                    Ok(result) => result,
                    Err(_) => {
                        // The producer died without delivering: its buffer
                        // is gone with it — count the leak rather than let
                        // the free-list alias a half-written state.
                        states.note_leak();
                        panic!("chunk {c} candidate task died before delivering its result");
                    }
                };
                span_end(prof, Category::Sync, c, t_recv);
                if let Some(t) = telemetry {
                    t.queue_leave();
                }
                cand_results.push(result);
            }
            if c == 0 {
                let result = cand_results.pop().expect("chunk 0 result");
                decisions[0] = ChunkDecision::First;
                prev_final = Some(result.final_state);
                // Pipeline: chunk 0 is final by definition, so its boundary
                // replicas start replaying immediately, overlapping chunk
                // 1's still-running speculation.
                if chunks > 1 {
                    schedule_replicas(
                        scope,
                        ctx,
                        &states,
                        &replica_sets[0],
                        0,
                        replay_bounds(&plan, 0, k),
                        result.snapshot.expect("chunk snapshot"),
                    );
                }
                outputs_per_chunk.push(result.outputs);
                continue;
            }
            // Await the pipelined replicas for this boundary (Fig. 5);
            // they were scheduled when chunk c-1's outcome became final —
            // by the coordinator on a commit, by the rerun's first segment
            // on an overlapped abort.
            let t_wait = span_start(prof);
            let replica_states = match replica_sets[c - 1].wait_unless(|| scope.poisoned()) {
                Ok(states) => states,
                Err(missing) => {
                    // A replica task died before its `put`; the rendezvous
                    // can never fill. Count each undelivered buffer as
                    // leaked and re-raise through the scope.
                    for _ in 0..missing {
                        states.note_leak();
                    }
                    panic!(
                        "replica rendezvous for boundary {} abandoned with {missing} \
                         replica(s) undelivered",
                        c - 1
                    );
                }
            };
            span_end(prof, Category::Sync, c, t_wait);
            if let Some(t) = telemetry {
                // One state materialization per replica: m-1 pool-recycled
                // clones plus the final moved snapshot — the protocol
                // transfers m states either way, matching the semantic
                // layer's accounting. (Replica fault bytes were drained at
                // replay time by `replay_replica`.)
                t.add(c, Counter::ReplicasValidated, m as u64);
                t.add(c, Counter::StateCopies, m as u64);
                t.add(c, Counter::StateBytesLogical, m as u64 * ctx.state_bytes);
                t.add(
                    c,
                    Counter::StateBytesCopied,
                    m as u64 * workload.snapshot_copy_bytes(ctx.strategy),
                );
            }
            // Resolve an overlapped rerun of chunk c-1 now that its true
            // final state gates this chunk's validation. Its boundary
            // replicas were scheduled by the rerun's first segment (and
            // just awaited above); only the trailing-k suffix is
            // synchronized on here.
            let pf = if let Some(xrx) = pending_rerun.take() {
                let t_rr = span_start(prof);
                let rerun = match xrx.recv() {
                    Ok(rerun) => rerun,
                    Err(_) => {
                        states.note_leak();
                        panic!("overlapped rerun of chunk {} died before delivering", c - 1);
                    }
                };
                span_end(prof, Category::Sync, c - 1, t_rr);
                outputs_per_chunk.push(rerun.outputs);
                rerun.final_state
            } else {
                prev_final.take().expect("previous final state")
            };
            // A spurious `states_match` transfer failure surfaces here, on
            // the coordinator, before any comparison is recorded: the guard
            // retries (with backoff) until the injection clears, then the
            // comparison loop below runs — and counts — exactly once.
            fault::recovery_guard(ctx.faults, FaultSite::Transfer { chunk: c }, telemetry);
            // Candidate-major ordered comparison: for each candidate in
            // index order, the producer's own final state first, then the
            // replicas — identical order (and comparison count) to the
            // semantic layer. The first matching candidate wins.
            let t_cmp = span_start(prof);
            let mut comparisons = 0u64;
            let mut matched: Option<(usize, usize)> = None;
            'candidates: for (j, r) in cand_results.iter().enumerate() {
                let spec_state = r.spec_state.as_ref().expect("speculative chunk");
                comparisons += 1;
                if workload.states_match(spec_state, &pf) {
                    matched = Some((j, 0));
                    break 'candidates;
                }
                for (i, st) in replica_states.iter().enumerate() {
                    comparisons += 1;
                    if workload.states_match(spec_state, st) {
                        matched = Some((j, i + 1));
                        break 'candidates;
                    }
                }
            }
            span_end(prof, Category::StateComparison, c, t_cmp);
            if let Some(t) = telemetry {
                t.add(c, Counter::StateComparisons, comparisons);
                t.event(&Event::ValidationFinished {
                    chunk: c,
                    comparisons,
                    matched_original: matched.map(|(_, i)| i),
                });
            }
            if let Some((winner, original)) = matched {
                decisions[c] = ChunkDecision::Committed;
                if let Some(t) = telemetry {
                    t.incr(c, Counter::ChunksCommitted);
                    if winner > 0 {
                        t.incr(c, Counter::CandidateHits);
                    }
                    t.event(&Event::ChunkCommitted { chunk: c });
                    t.event(&Event::CandidateCommitted {
                        chunk: c,
                        candidate: winner,
                        original,
                    });
                }
                states.recycle(pf);
                let accepted = cand_results.swap_remove(winner);
                // The rejected candidates and compared replicas are dead
                // after validation (DESIGN.md §9's lifetime rule); feed
                // the next boundary's clones from them.
                for r in cand_results {
                    if let Some(st) = r.spec_state {
                        states.recycle(st);
                    }
                    if let Some(st) = r.snapshot {
                        states.recycle(st);
                    }
                    states.recycle(r.final_state);
                }
                if let Some(st) = accepted.spec_state {
                    states.recycle(st);
                }
                for st in replica_states {
                    states.recycle(st);
                }
                prev_final = Some(accepted.final_state);
                if c + 1 < chunks {
                    schedule_replicas(
                        scope,
                        ctx,
                        &states,
                        &replica_sets[c],
                        c,
                        replay_bounds(&plan, c, k),
                        accepted.snapshot.expect("chunk snapshot"),
                    );
                }
                outputs_per_chunk.push(accepted.outputs);
            } else {
                decisions[c] = ChunkDecision::Aborted;
                if let Some(t) = telemetry {
                    // True-state transfer to the re-executing chunk.
                    t.incr(c, Counter::ChunksAborted);
                    t.incr(c, Counter::StateCopies);
                    t.add(c, Counter::StateBytesLogical, ctx.state_bytes);
                    t.add(
                        c,
                        Counter::StateBytesCopied,
                        workload.snapshot_copy_bytes(ctx.strategy),
                    );
                    t.event(&Event::ChunkAborted { chunk: c });
                }
                // Every candidate's speculative results are dead.
                for r in cand_results {
                    if let Some(st) = r.spec_state {
                        states.recycle(st);
                    }
                    if let Some(st) = r.snapshot {
                        states.recycle(st);
                    }
                    states.recycle(r.final_state);
                }
                for st in replica_states {
                    states.recycle(st);
                }
                let range = plan.chunk(c);
                let (xtx, xrx) = bounded::<WorkerResult<W::State, W::Output>>(1);
                if config.rerun_segments(range.len()) > 1 {
                    // Overlapped recovery (DESIGN.md §14): the rerun splits
                    // at its boundary-snapshot point into two pool-scheduled
                    // urgent segments. Segment 0 re-executes the prefix and
                    // seals the boundary state, so chunk c's replicas start
                    // replaying while segment 1 is still re-executing the
                    // trailing-k suffix; the coordinator defers the rerun
                    // receive until chunk c+1's validation actually needs
                    // the true final state. Commit order is untouched:
                    // chunk c+1 is still validated strictly after chunk c's
                    // outcome is final, and the single derived `Rerun(c)`
                    // stream threads through both segments, so the rerun is
                    // bit-identical to the unsplit re-execution.
                    let split = range.end - k.min(range.len());
                    let replay = replay_bounds(&plan, c, k);
                    let set = (c + 1 < chunks).then(|| &replica_sets[c]);
                    let states_ref = &states;
                    scope.spawn_urgent(move || {
                        fault::recovery_guard(
                            ctx.faults,
                            FaultSite::Rerun {
                                chunk: c,
                                segment: 0,
                            },
                            ctx.telemetry,
                        );
                        let prof = profiler_of(ctx.telemetry);
                        let seg_start = monotonic_ns();
                        if let Some(t) = ctx.telemetry {
                            t.incr(c, Counter::Reruns);
                            t.incr(c, Counter::RerunSegments);
                        }
                        let mut rng = StatsRng::derive(ctx.master_seed, StreamRole::Rerun(c));
                        let mut state = pf;
                        let mut outputs = Vec::with_capacity(range.len());
                        let t_seg = span_start(prof);
                        for idx in range.start..split {
                            let (out, _) =
                                ctx.workload.update(&mut state, &ctx.inputs[idx], &mut rng);
                            outputs.push(out);
                        }
                        // The boundary snapshot is sealed exactly where
                        // `run_segment` takes it: before the trailing-k
                        // suffix updates.
                        let snap = ctx.workload.snapshot_state(&mut state, ctx.strategy);
                        span_end(prof, Category::ChunkCompute, c, t_seg);
                        let materialized = ctx.workload.take_materialized(&mut state);
                        if let Some(t) = ctx.telemetry {
                            t.add(c, Counter::StateBytesCopied, materialized);
                            t.add(c, Counter::BusyTime, ns_since(seg_start));
                            t.event(&Event::RerunSegmentFinished {
                                chunk: c,
                                segment: 0,
                            });
                        }
                        match set {
                            Some(set) => {
                                schedule_replicas(scope, ctx, states_ref, set, c, replay, snap);
                            }
                            // Last chunk: no boundary left to validate.
                            None => drop(snap),
                        }
                        // Segment 1: the trailing-k suffix, overlapping the
                        // replicas scheduled above.
                        scope.spawn_urgent(move || {
                            fault::recovery_guard(
                                ctx.faults,
                                FaultSite::Rerun {
                                    chunk: c,
                                    segment: 1,
                                },
                                ctx.telemetry,
                            );
                            let prof = profiler_of(ctx.telemetry);
                            let seg_start = monotonic_ns();
                            if let Some(t) = ctx.telemetry {
                                t.incr(c, Counter::RerunSegments);
                            }
                            let mut state = state;
                            let mut rng = rng;
                            let mut outputs = outputs;
                            let t_seg = span_start(prof);
                            for idx in split..range.end {
                                let (out, _) =
                                    ctx.workload.update(&mut state, &ctx.inputs[idx], &mut rng);
                                outputs.push(out);
                            }
                            span_end(prof, Category::ChunkCompute, c, t_seg);
                            let materialized = ctx.workload.take_materialized(&mut state);
                            if let Some(t) = ctx.telemetry {
                                t.add(c, Counter::StateBytesCopied, materialized);
                                t.add(c, Counter::BusyTime, ns_since(seg_start));
                                t.event(&Event::RerunSegmentFinished {
                                    chunk: c,
                                    segment: 1,
                                });
                            }
                            xtx.send(WorkerResult {
                                spec_state: None,
                                outputs,
                                snapshot: None,
                                final_state: state,
                            })
                            .expect("coordinator alive");
                            if let Some(t) = ctx.telemetry {
                                t.event(&Event::RerunFinished { chunk: c });
                            }
                        });
                    });
                    pending_rerun = Some(xrx);
                } else {
                    // Serialized re-execution as an urgent task: the true
                    // state moves in, the result comes back on a fresh
                    // channel. The coordinator blocks here — re-execution
                    // is serialized by the protocol anyway (§II-B).
                    scope.spawn_urgent(move || {
                        fault::recovery_guard(
                            ctx.faults,
                            FaultSite::Rerun {
                                chunk: c,
                                segment: 0,
                            },
                            ctx.telemetry,
                        );
                        let prof = profiler_of(ctx.telemetry);
                        let rerun_start = monotonic_ns();
                        if let Some(t) = ctx.telemetry {
                            t.incr(c, Counter::Reruns);
                            t.incr(c, Counter::RerunSegments);
                        }
                        let mut rng = StatsRng::derive(ctx.master_seed, StreamRole::Rerun(c));
                        let t_rerun = span_start(prof);
                        let rerun = run_segment(
                            ctx.workload,
                            pf,
                            ctx.inputs,
                            range,
                            ctx.k,
                            ctx.strategy,
                            &mut rng,
                        );
                        // The serialized rerun is the chunk's true compute;
                        // assembly relabels the dead speculative attempt.
                        span_end(prof, Category::ChunkCompute, c, t_rerun);
                        if let Some(t) = ctx.telemetry {
                            t.add(c, Counter::StateBytesCopied, rerun.materialized);
                            t.add(c, Counter::BusyTime, ns_since(rerun_start));
                            t.event(&Event::RerunSegmentFinished {
                                chunk: c,
                                segment: 0,
                            });
                        }
                        xtx.send(WorkerResult {
                            spec_state: None,
                            outputs: rerun.outputs,
                            snapshot: Some(rerun.snapshot),
                            final_state: rerun.final_state,
                        })
                        .expect("coordinator alive");
                        if let Some(t) = ctx.telemetry {
                            t.event(&Event::RerunFinished { chunk: c });
                        }
                    });
                    let t_rr = span_start(prof);
                    let rerun = match xrx.recv() {
                        Ok(rerun) => rerun,
                        Err(_) => {
                            states.note_leak();
                            panic!("serialized rerun of chunk {c} died before delivering");
                        }
                    };
                    span_end(prof, Category::Sync, c, t_rr);
                    prev_final = Some(rerun.final_state);
                    if c + 1 < chunks {
                        schedule_replicas(
                            scope,
                            ctx,
                            &states,
                            &replica_sets[c],
                            c,
                            replay_bounds(&plan, c, k),
                            rerun.snapshot.expect("rerun snapshot"),
                        );
                    }
                    outputs_per_chunk.push(rerun.outputs);
                }
            }
        }
        // A last-chunk overlapped rerun has no successor to synchronize
        // with; resolve it before the scope closes.
        if let Some(xrx) = pending_rerun.take() {
            let t_rr = span_start(prof);
            let rerun = match xrx.recv() {
                Ok(rerun) => rerun,
                Err(_) => {
                    states.note_leak();
                    panic!(
                        "overlapped rerun of chunk {} died before delivering",
                        chunks - 1
                    );
                }
            };
            span_end(prof, Category::Sync, chunks - 1, t_rr);
            outputs_per_chunk.push(rerun.outputs);
        }
    });

    if let Some(t) = telemetry {
        t.event(&Event::RunFinished {
            committed: decisions
                .iter()
                .filter(|d| **d == ChunkDecision::Committed)
                .count(),
            aborted: decisions
                .iter()
                .filter(|d| **d == ChunkDecision::Aborted)
                .count(),
            workers: pool.workers(),
        });
        t.flush();
    }
    ThreadedRun {
        outputs: outputs_per_chunk.into_iter().flatten().collect(),
        decisions,
        elapsed: Duration::from_nanos(ns_since(start_ns)),
        workers: pool.workers(),
    }
}

/// The pre-pool lowering: one OS thread per chunk, scoped threads per
/// replica batch, verdict channels parking every worker on the
/// coordinator. Kept as the measurement baseline for the `native_scaling`
/// bench (it is what the pooled executor is compared against) — new code
/// should use [`run_threaded`].
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()` or a worker thread
/// panics (workload `update` panicked).
pub fn run_threaded_per_chunk<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    run_threaded_per_chunk_observed(workload, inputs, config, master_seed, None)
}

/// What the coordinator tells a thread-per-chunk worker after validating
/// its speculation.
enum Verdict<S> {
    Commit,
    Abort(Box<S>),
}

/// [`run_threaded_per_chunk`] with live telemetry; records the same
/// protocol counters as the pooled executor plus worker idle time (the
/// pooled path has no verdict wait to measure).
///
/// # Panics
///
/// Panics if `config` is invalid for `inputs.len()` or a worker thread
/// panics (workload `update` panicked).
pub fn run_threaded_per_chunk_observed<W>(
    workload: &W,
    inputs: &[W::Input],
    config: Config,
    master_seed: u64,
    telemetry: Option<&TelemetrySink>,
) -> ThreadedRun<W::Output>
where
    W: StateDependence + Sync,
{
    config
        .validate(inputs.len())
        .expect("invalid configuration for input length");
    // The baseline predates breadth speculation and is kept only as the
    // pooled executor's measurement comparison point; it would silently
    // diverge from the semantic layer at higher breadths.
    assert_eq!(
        config.spec_breadth, 1,
        "thread-per-chunk baseline supports breadth 1 only"
    );
    let plan = plan_balanced(inputs.len(), config.chunks);
    let chunks = plan.len();
    let k = config.lookback;
    let m = config.extra_states;
    let strategy = config.snapshot;
    let state_bytes = workload.state_bytes() as u64;
    // Dead states are recycled through the same free-list the pooled
    // executor uses, so replica clones reuse their allocations.
    let states: StatePool<W::State> = StatePool::with_capacity(m + 2);
    let start_ns = monotonic_ns();

    // Channels: worker -> coordinator results, coordinator -> worker
    // verdicts, worker -> coordinator rerun results.
    let mut result_rx = Vec::with_capacity(chunks);
    let mut verdict_tx = Vec::with_capacity(chunks);
    let mut rerun_rx = Vec::with_capacity(chunks);
    let mut worker_ends = Vec::with_capacity(chunks);
    for _ in 0..chunks {
        let (rtx, rrx) = bounded::<WorkerResult<W::State, W::Output>>(1);
        let (vtx, vrx) = bounded::<Verdict<W::State>>(1);
        let (xtx, xrx) = bounded::<WorkerResult<W::State, W::Output>>(1);
        result_rx.push(rrx);
        verdict_tx.push(vtx);
        rerun_rx.push(xrx);
        worker_ends.push((rtx, vrx, xtx));
    }

    let mut decisions = vec![ChunkDecision::First; chunks];
    let mut outputs_per_chunk: Vec<Vec<W::Output>> = Vec::with_capacity(chunks);

    // stats-analyzer: allow(ND007): thread-per-chunk baseline, kept as the native_scaling comparison point
    std::thread::scope(|scope| {
        // ---- workers ------------------------------------------------------
        for (c, (rtx, vrx, xtx)) in worker_ends.into_iter().enumerate() {
            let range = plan.chunk(c);
            scope.spawn(move || {
                let busy_start = monotonic_ns();
                if let Some(t) = telemetry {
                    t.incr(c, Counter::ChunksStarted);
                    t.event(&Event::ChunkStarted {
                        chunk: c,
                        len: range.len(),
                    });
                }
                let (spec_state, start_state) = if c == 0 {
                    (None, workload.fresh_state())
                } else {
                    let mut rng = StatsRng::derive(master_seed, StreamRole::AltProducer(c));
                    let mut st = workload.fresh_state();
                    for input in &inputs[range.start - k..range.start] {
                        workload.update(&mut st, input, &mut rng);
                    }
                    // Speculative-state hand-off to the coordinator (Fig. 6).
                    if let Some(t) = telemetry {
                        t.incr(c, Counter::SpecCandidates);
                        t.incr(c, Counter::StateCopies);
                        t.add(c, Counter::StateBytesLogical, state_bytes);
                        t.add(
                            c,
                            Counter::StateBytesCopied,
                            workload.snapshot_copy_bytes(strategy),
                        );
                    }
                    let spec = workload.snapshot_state(&mut st, strategy);
                    (Some(spec), st)
                };
                let mut rng = StatsRng::derive(master_seed, StreamRole::Chunk(c));
                let run = run_segment(
                    workload,
                    start_state,
                    inputs,
                    range.clone(),
                    k,
                    strategy,
                    &mut rng,
                );
                if let Some(t) = telemetry {
                    t.add(c, Counter::StateBytesCopied, run.materialized);
                    t.add(c, Counter::BusyTime, ns_since(busy_start));
                    t.queue_enter();
                }
                rtx.send(WorkerResult {
                    spec_state,
                    outputs: run.outputs,
                    snapshot: Some(run.snapshot),
                    final_state: run.final_state,
                })
                .expect("coordinator alive");
                let idle_start = monotonic_ns();
                // stats-analyzer: allow(ND014): thread-per-chunk baseline uses dedicated OS threads, not pool workers
                match vrx.recv().expect("coordinator alive") {
                    Verdict::Commit => {
                        if let Some(t) = telemetry {
                            t.add(c, Counter::IdleTime, ns_since(idle_start));
                        }
                    }
                    Verdict::Abort(true_state) => {
                        let rerun_start = monotonic_ns();
                        if let Some(t) = telemetry {
                            t.add(c, Counter::IdleTime, ns_since(idle_start));
                            t.incr(c, Counter::Reruns);
                            // The baseline never overlaps recovery: every
                            // rerun is one physical segment.
                            t.incr(c, Counter::RerunSegments);
                        }
                        let mut rng = StatsRng::derive(master_seed, StreamRole::Rerun(c));
                        let rerun = run_segment(
                            workload,
                            *true_state,
                            inputs,
                            range,
                            k,
                            strategy,
                            &mut rng,
                        );
                        if let Some(t) = telemetry {
                            t.add(c, Counter::StateBytesCopied, rerun.materialized);
                            t.add(c, Counter::BusyTime, ns_since(rerun_start));
                            t.event(&Event::RerunSegmentFinished {
                                chunk: c,
                                segment: 0,
                            });
                        }
                        xtx.send(WorkerResult {
                            spec_state: None,
                            outputs: rerun.outputs,
                            snapshot: Some(rerun.snapshot),
                            final_state: rerun.final_state,
                        })
                        .expect("coordinator alive");
                        if let Some(t) = telemetry {
                            t.event(&Event::RerunFinished { chunk: c });
                        }
                    }
                }
            });
        }

        // ---- coordinator: sequential-order commit checks -------------------
        let mut prev_final: Option<W::State> = None;
        let mut prev_snapshot: Option<W::State> = None;
        for c in 0..chunks {
            let result = result_rx[c].recv().expect("worker alive");
            if let Some(t) = telemetry {
                t.queue_leave();
            }
            if c == 0 {
                decisions[0] = ChunkDecision::First;
                verdict_tx[0].send(Verdict::Commit).expect("worker alive");
                prev_final = Some(result.final_state);
                prev_snapshot = result.snapshot;
                outputs_per_chunk.push(result.outputs);
                continue;
            }
            let mut result = result;
            let pf = prev_final.take().expect("previous final state");
            let mut snapshot = prev_snapshot.take().expect("previous snapshot");
            // Generate the m extra original states in parallel (Fig. 5).
            let prev_range = plan.chunk(c - 1);
            let replay_start = prev_range.end.saturating_sub(k).max(prev_range.start);
            let mut replica_states: Vec<Option<W::State>> = Vec::new();
            // stats-analyzer: allow(ND007): thread-per-chunk baseline, kept as the native_scaling comparison point
            std::thread::scope(|rep_scope| {
                let handles: Vec<_> = (0..m.saturating_sub(1))
                    .map(|j| {
                        // Deep clones reuse dead allocations through the
                        // free-list; cow snapshots are O(1) forks.
                        let snap = match strategy {
                            SnapshotStrategy::DeepClone => states.copy_of(&snapshot),
                            SnapshotStrategy::CopyOnWrite => {
                                workload.snapshot_state(&mut snapshot, strategy)
                            }
                        };
                        let replay = replay_start..prev_range.end;
                        rep_scope.spawn(move || {
                            let mut rng = StatsRng::derive(
                                master_seed,
                                StreamRole::OriginalState {
                                    chunk: c - 1,
                                    replica: j,
                                },
                            );
                            let mut st = snap;
                            for idx in replay {
                                workload.update(&mut st, &inputs[idx], &mut rng);
                            }
                            st
                        })
                    })
                    .collect();
                // The final replica takes the snapshot by move — it is the
                // last reader, so no clone is needed; the protocol still
                // materializes m states (counted below).
                let last = (m > 0).then(|| {
                    let j = m - 1;
                    let replay = replay_start..prev_range.end;
                    rep_scope.spawn(move || {
                        let mut rng = StatsRng::derive(
                            master_seed,
                            StreamRole::OriginalState {
                                chunk: c - 1,
                                replica: j,
                            },
                        );
                        let mut st = snapshot;
                        for idx in replay {
                            workload.update(&mut st, &inputs[idx], &mut rng);
                        }
                        st
                    })
                });
                for h in handles {
                    replica_states.push(Some(h.join().expect("replica thread")));
                }
                if let Some(h) = last {
                    replica_states.push(Some(h.join().expect("replica thread")));
                }
            });
            // Replica fault bytes are drained before the states are
            // compared and recycled, exactly once per replica.
            let mut replica_fault_bytes = 0u64;
            for st in replica_states.iter_mut().flatten() {
                replica_fault_bytes += workload.take_materialized(st);
            }
            if let Some(t) = telemetry {
                // One state materialization feeds each replica.
                t.add(c, Counter::ReplicasValidated, m as u64);
                t.add(c, Counter::StateCopies, m as u64);
                t.add(c, Counter::StateBytesLogical, m as u64 * state_bytes);
                t.add(
                    c,
                    Counter::StateBytesCopied,
                    m as u64 * workload.snapshot_copy_bytes(strategy) + replica_fault_bytes,
                );
            }
            // Ordered comparison: producer's own final state first, then
            // replicas — identical order to the semantic layer.
            let spec_state = result.spec_state.as_ref().expect("speculative chunk");
            let mut comparisons = 1u64;
            let mut matched: Option<usize> = workload.states_match(spec_state, &pf).then_some(0);
            for (j, st) in replica_states.iter().flatten().enumerate() {
                if matched.is_some() {
                    break;
                }
                comparisons += 1;
                if workload.states_match(spec_state, st) {
                    matched = Some(j + 1);
                }
            }
            if let Some(t) = telemetry {
                t.add(c, Counter::StateComparisons, comparisons);
                t.event(&Event::ValidationFinished {
                    chunk: c,
                    comparisons,
                    matched_original: matched,
                });
            }
            let spec_state = result.spec_state.take();
            if let Some(original) = matched {
                decisions[c] = ChunkDecision::Committed;
                if let Some(t) = telemetry {
                    t.incr(c, Counter::ChunksCommitted);
                    t.event(&Event::ChunkCommitted { chunk: c });
                    // Breadth-1 semantics: the sole candidate is the winner.
                    t.event(&Event::CandidateCommitted {
                        chunk: c,
                        candidate: 0,
                        original,
                    });
                }
                verdict_tx[c].send(Verdict::Commit).expect("worker alive");
                // The superseded original state is dead; recycle it.
                states.recycle(pf);
                prev_final = Some(result.final_state);
                prev_snapshot = result.snapshot;
                outputs_per_chunk.push(result.outputs);
            } else {
                decisions[c] = ChunkDecision::Aborted;
                if let Some(t) = telemetry {
                    // True-state transfer to the aborted worker.
                    t.incr(c, Counter::ChunksAborted);
                    t.incr(c, Counter::StateCopies);
                    t.add(c, Counter::StateBytesLogical, state_bytes);
                    t.add(
                        c,
                        Counter::StateBytesCopied,
                        workload.snapshot_copy_bytes(strategy),
                    );
                    t.event(&Event::ChunkAborted { chunk: c });
                }
                verdict_tx[c]
                    .send(Verdict::Abort(Box::new(pf)))
                    .expect("worker alive");
                let rerun = rerun_rx[c].recv().expect("worker alive");
                // The rejected speculative results are dead; recycle them.
                states.recycle(result.final_state);
                if let Some(st) = result.snapshot {
                    states.recycle(st);
                }
                prev_final = Some(rerun.final_state);
                prev_snapshot = rerun.snapshot;
                outputs_per_chunk.push(rerun.outputs);
            }
            // The compared speculative and replica states are dead after
            // validation; feed the next boundary's clones from them (the
            // same lifetime rule as the pooled executor, DESIGN.md §9).
            if let Some(st) = spec_state {
                states.recycle(st);
            }
            for st in replica_states.into_iter().flatten() {
                states.recycle(st);
            }
        }
    });

    if let Some(t) = telemetry {
        t.event(&Event::RunFinished {
            committed: decisions
                .iter()
                .filter(|d| **d == ChunkDecision::Committed)
                .count(),
            aborted: decisions
                .iter()
                .filter(|d| **d == ChunkDecision::Aborted)
                .count(),
            workers: chunks,
        });
        t.flush();
    }
    ThreadedRun {
        outputs: outputs_per_chunk.into_iter().flatten().collect(),
        decisions,
        elapsed: Duration::from_nanos(ns_since(start_ns)),
        workers: chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::UpdateCost;
    use crate::speculation::run_speculative;

    struct Ema {
        decay: f64,
        tolerance: f64,
    }

    impl StateDependence for Ema {
        type State = f64;
        type Input = f64;
        type Output = f64;
        fn fresh_state(&self) -> f64 {
            0.0
        }
        fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
            *state = self.decay * *state + (1.0 - self.decay) * (*input + rng.noise(0.001));
            (*state, UpdateCost::with_work(50))
        }
        fn states_match(&self, a: &f64, b: &f64) -> bool {
            (a - b).abs() < self.tolerance
        }
        fn state_bytes(&self) -> usize {
            8
        }
    }

    fn inputs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.05).sin()).collect()
    }

    #[test]
    fn threaded_matches_semantic_layer() {
        let w = Ema {
            decay: 0.6,
            tolerance: 0.02,
        };
        let ins = inputs(200);
        let cfg = Config::stats_only(5, 10, 2);
        let threaded = run_threaded(&w, &ins, cfg, 42);
        let semantic = run_speculative(&w, &ins, cfg, 42);
        assert_eq!(threaded.outputs, semantic.outputs);
        let semantic_decisions: Vec<_> = semantic.chunks.iter().map(|c| c.decision).collect();
        assert_eq!(threaded.decisions, semantic_decisions);
    }

    #[test]
    fn threaded_matches_semantic_layer_with_aborts() {
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1);
        let threaded = run_threaded(&w, &ins, cfg, 7);
        let semantic = run_speculative(&w, &ins, cfg, 7);
        assert!(threaded.aborts() > 0, "this setup must abort");
        assert_eq!(threaded.outputs, semantic.outputs);
        assert_eq!(
            threaded.decisions,
            semantic
                .chunks
                .iter()
                .map(|c| c.decision)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_chunk_runs_sequentially() {
        let w = Ema {
            decay: 0.5,
            tolerance: 0.1,
        };
        let ins = inputs(32);
        let run = run_threaded(&w, &ins, Config::sequential(), 1);
        assert_eq!(run.outputs.len(), 32);
        assert_eq!(run.decisions, vec![ChunkDecision::First]);
        assert_eq!(run.aborts(), 0);
    }

    #[test]
    fn planned_threaded_matches_planned_semantics() {
        use crate::planner::plan_weighted;
        use crate::speculation::run_speculative_planned;
        let w = Ema {
            decay: 0.6,
            tolerance: 0.02,
        };
        let ins = inputs(200);
        let cfg = Config::stats_only(5, 10, 1);
        let plan = plan_weighted(200, 5, |i| 1 + (i % 3) as u64);
        let semantic = run_speculative_planned(&w, &ins, cfg, plan.clone(), 4);
        let threaded = run_threaded_planned(&w, &ins, cfg, plan, 4);
        assert_eq!(threaded.outputs, semantic.outputs);
        assert_eq!(
            threaded.decisions,
            semantic
                .chunks
                .iter()
                .map(|c| c.decision)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn small_pool_drains_many_chunks() {
        // chunks ≫ workers: a 2-wide pool must complete a 16-chunk run
        // without deadlock and with unchanged decisions.
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(256);
        let cfg = Config::stats_only(16, 4, 2);
        let pool = WorkerPool::new(2);
        let pooled = run_threaded_on(&pool, &w, &ins, cfg, 7, None);
        let semantic = run_speculative(&w, &ins, cfg, 7);
        assert!(pooled.aborts() > 0, "this setup must abort");
        assert_eq!(pooled.workers, 2);
        assert_eq!(pooled.outputs, semantic.outputs);
        assert_eq!(
            pooled.decisions,
            semantic
                .chunks
                .iter()
                .map(|c| c.decision)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn per_chunk_baseline_matches_pooled_executor() {
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(200);
        let cfg = Config::stats_only(5, 8, 2);
        let pooled = run_threaded(&w, &ins, cfg, 11);
        let baseline = run_threaded_per_chunk(&w, &ins, cfg, 11);
        assert_eq!(baseline.workers, cfg.chunks);
        assert_eq!(pooled.outputs, baseline.outputs);
        assert_eq!(pooled.decisions, baseline.decisions);
    }

    #[test]
    fn observed_counters_match_semantic_outcome() {
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 2);
        let sink = TelemetrySink::new(cfg.chunks);
        let threaded = run_threaded_observed(&w, &ins, cfg, 7, Some(&sink));
        let semantic = run_speculative(&w, &ins, cfg, 7);
        let snap = sink.snapshot();
        assert!(snap.consistent, "quiesced snapshot must be consistent");

        let chunks = cfg.chunks as u64;
        let m = cfg.extra_states as u64;
        let aborts = semantic.aborts() as u64;
        let committed = semantic
            .chunks
            .iter()
            .filter(|c| c.decision == ChunkDecision::Committed)
            .count() as u64;
        assert_eq!(snap.get(Counter::ChunksStarted), chunks);
        assert_eq!(snap.get(Counter::ChunksCommitted), committed);
        assert_eq!(snap.get(Counter::ChunksAborted), aborts);
        assert_eq!(snap.get(Counter::Reruns), aborts);
        // Overlap off: every rerun is one segment; breadth 1: one
        // candidate per speculative chunk, never a non-primary hit.
        assert_eq!(snap.get(Counter::RerunSegments), aborts);
        assert_eq!(snap.get(Counter::SpecCandidates), chunks - 1);
        assert_eq!(snap.get(Counter::CandidateHits), 0);
        assert_eq!(snap.get(Counter::ReplicasValidated), (chunks - 1) * m);
        // Copies: spec hand-off per producer + m replica states per
        // boundary + one true-state transfer per abort.
        assert_eq!(
            snap.get(Counter::StateCopies),
            (chunks - 1) + (chunks - 1) * m + aborts
        );
        // Byte accounting: logical bytes are state size × copy events,
        // and a deep-clone run physically copies exactly that.
        assert_eq!(
            snap.get(Counter::StateBytesLogical),
            8 * snap.get(Counter::StateCopies)
        );
        assert_eq!(
            snap.get(Counter::StateBytesCopied),
            snap.get(Counter::StateBytesLogical)
        );
        assert_eq!(
            snap.get(Counter::StateBytesLogical),
            semantic.bytes_logical()
        );
        assert_eq!(snap.get(Counter::StateBytesCopied), semantic.bytes_copied());
        // Comparisons: the shared ordered-comparison formula per chunk.
        let expected_comparisons: u64 = semantic.chunks[1..]
            .iter()
            .map(|c| {
                1 + match c.matched_original {
                    Some(0) => 0,
                    Some(j) => j as u64,
                    None => m,
                }
            })
            .sum();
        assert_eq!(snap.get(Counter::StateComparisons), expected_comparisons);
        assert!(snap.get(Counter::BusyTime) > 0);
        assert!(snap.queue_high_water >= 1);
        // Telemetry must not perturb semantics.
        assert_eq!(threaded.outputs, semantic.outputs);
    }

    #[test]
    fn per_chunk_observed_counters_match_pooled() {
        // The baseline's counters must stay in lockstep with the pooled
        // executor's (and therefore with the semantic layer's formulas) —
        // including StateCopies after the final-replica move fix.
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 2);
        let pooled_sink = TelemetrySink::new(cfg.chunks);
        let baseline_sink = TelemetrySink::new(cfg.chunks);
        run_threaded_observed(&w, &ins, cfg, 7, Some(&pooled_sink));
        run_threaded_per_chunk_observed(&w, &ins, cfg, 7, Some(&baseline_sink));
        let p = pooled_sink.snapshot();
        let b = baseline_sink.snapshot();
        for c in [
            Counter::ChunksStarted,
            Counter::ChunksCommitted,
            Counter::ChunksAborted,
            Counter::Reruns,
            Counter::RerunSegments,
            Counter::SpecCandidates,
            Counter::CandidateHits,
            Counter::ReplicasValidated,
            Counter::StateCopies,
            Counter::StateComparisons,
            Counter::StateBytesLogical,
            Counter::StateBytesCopied,
        ] {
            assert_eq!(p.get(c), b.get(c), "counter {c:?} diverged");
        }
    }

    #[test]
    fn observed_event_log_records_lifecycle() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1);
        let buf = Buf::default();
        let sink = TelemetrySink::new(cfg.chunks).with_event_writer(Box::new(buf.clone()));
        let run = run_threaded_observed(&w, &ins, cfg, 7, Some(&sink));
        assert!(run.aborts() > 0, "this setup must abort");

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len() as u64, sink.snapshot().events_emitted);
        let count = |kind: &str| {
            lines
                .iter()
                .filter(|l| l.contains(&format!("\"type\":\"{kind}\"")))
                .count()
        };
        assert_eq!(count("chunk_started"), cfg.chunks);
        assert_eq!(count("validation_finished"), cfg.chunks - 1);
        assert_eq!(count("chunk_aborted"), run.aborts());
        assert_eq!(count("rerun_finished"), run.aborts());
        // Overlap off: one segment per rerun; every commit names its
        // winning candidate (always 0 at breadth 1).
        assert_eq!(count("rerun_segment_finished"), run.aborts());
        assert_eq!(count("candidate_committed"), cfg.chunks - 1 - run.aborts());
        assert_eq!(count("run_finished"), 1);
        // The RunFinished event now carries the executing pool's width.
        let finished = lines
            .iter()
            .find(|l| l.contains("\"type\":\"run_finished\""))
            .expect("run_finished line");
        assert!(
            finished.contains(&format!("\"workers\":{}", run.workers)),
            "run_finished must record the worker count: {finished}"
        );
        for line in &lines {
            stats_telemetry::json::validate(line)
                .unwrap_or_else(|e| panic!("bad event line {line}: {e}"));
        }
    }

    #[test]
    fn repeated_runs_are_reproducible() {
        let w = Ema {
            decay: 0.6,
            tolerance: 0.02,
        };
        let ins = inputs(100);
        let cfg = Config::stats_only(4, 8, 1);
        let a = run_threaded(&w, &ins, cfg, 9);
        let b = run_threaded(&w, &ins, cfg, 9);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn breadth_two_matches_semantic_layer() {
        // An abort-prone setup: the candidates and the rerun paths both
        // get exercised, and the threaded executor must land on exactly
        // the semantic layer's decisions and outputs.
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        for b in [2usize, 3, 4] {
            let cfg = Config::stats_only(4, 4, 1).with_breadth(b);
            let threaded = run_threaded(&w, &ins, cfg, 7);
            let semantic = run_speculative(&w, &ins, cfg, 7);
            assert_eq!(threaded.outputs, semantic.outputs, "breadth {b}");
            assert_eq!(
                threaded.decisions,
                semantic
                    .chunks
                    .iter()
                    .map(|c| c.decision)
                    .collect::<Vec<_>>(),
                "breadth {b}"
            );
        }
    }

    #[test]
    fn overlapped_rerun_preserves_semantics_and_counts_segments() {
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 2).with_overlap(true);
        let sink = TelemetrySink::new(cfg.chunks);
        let threaded = run_threaded_observed(&w, &ins, cfg, 7, Some(&sink));
        let semantic = run_speculative(&w, &ins, cfg, 7);
        assert!(threaded.aborts() > 0, "this setup must abort");
        assert_eq!(threaded.outputs, semantic.outputs);
        assert_eq!(
            threaded.decisions,
            semantic
                .chunks
                .iter()
                .map(|c| c.decision)
                .collect::<Vec<_>>()
        );
        let snap = sink.snapshot();
        // Every aborted chunk's rerun split per the shared config-derived
        // segment count (two here: every chunk is longer than the
        // lookback).
        let expected: u64 = semantic
            .chunks
            .iter()
            .filter(|c| c.aborted())
            .map(|c| cfg.rerun_segments(c.range.len()) as u64)
            .sum();
        assert_eq!(expected, 2 * threaded.aborts() as u64);
        assert_eq!(snap.get(Counter::RerunSegments), expected);
        assert_eq!(snap.get(Counter::Reruns), threaded.aborts() as u64);
    }

    #[test]
    fn overlapped_rerun_on_last_chunk_resolves_after_the_loop() {
        // Force a plan where the final chunk aborts so the post-loop
        // pending-rerun resolution runs; outputs must still be complete
        // and ordered.
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1).with_overlap(true);
        let semantic = run_speculative(&w, &ins, cfg, 7);
        let threaded = run_threaded(&w, &ins, cfg, 7);
        assert_eq!(threaded.outputs.len(), ins.len());
        assert_eq!(threaded.outputs, semantic.outputs);
    }

    #[test]
    fn breadth_counters_match_shared_formulas() {
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-6,
        };
        let ins = inputs(128);
        let b = 3usize;
        let cfg = Config::stats_only(4, 4, 2).with_breadth(b);
        let sink = TelemetrySink::new(cfg.chunks);
        let threaded = run_threaded_observed(&w, &ins, cfg, 7, Some(&sink));
        let semantic = run_speculative(&w, &ins, cfg, 7);
        assert_eq!(threaded.outputs, semantic.outputs);
        let snap = sink.snapshot();
        let chunks = cfg.chunks as u64;
        let m = cfg.extra_states as u64;
        let aborts = semantic.aborts() as u64;
        assert_eq!(snap.get(Counter::SpecCandidates), (chunks - 1) * b as u64);
        let hits = semantic
            .chunks
            .iter()
            .filter(|c| c.matched_candidate.is_some_and(|w| w > 0))
            .count() as u64;
        assert_eq!(snap.get(Counter::CandidateHits), hits);
        // Copies: b speculative hand-offs per boundary + m replicas per
        // boundary + one true-state transfer per abort.
        assert_eq!(
            snap.get(Counter::StateCopies),
            (chunks - 1) * (b as u64 + m) + aborts
        );
        assert_eq!(
            snap.get(Counter::StateBytesLogical),
            semantic.bytes_logical()
        );
        assert_eq!(snap.get(Counter::StateBytesCopied), semantic.bytes_copied());
        // Comparisons: candidate-major formula, w*(1+m) + 1 + i on a
        // commit, b*(1+m) on an abort.
        let expected_comparisons: u64 = semantic.chunks[1..]
            .iter()
            .map(|c| match (c.matched_candidate, c.matched_original) {
                (Some(w), Some(i)) => w as u64 * (1 + m) + 1 + i as u64,
                _ => b as u64 * (1 + m),
            })
            .sum();
        assert_eq!(snap.get(Counter::StateComparisons), expected_comparisons);
    }

    #[test]
    fn pool_reuse_leaks_no_state_between_runs() {
        // Two different runs on one pool, then the first again: results
        // must be identical to a fresh-pool execution.
        let w = Ema {
            decay: 0.6,
            tolerance: 0.02,
        };
        let ins = inputs(200);
        let cfg = Config::stats_only(8, 10, 2);
        let pool = WorkerPool::new(3);
        let first = run_threaded_on(&pool, &w, &ins, cfg, 42, None);
        let _other = run_threaded_on(&pool, &w, &ins, cfg, 1234, None);
        let again = run_threaded_on(&pool, &w, &ins, cfg, 42, None);
        let fresh = run_threaded(&w, &ins, cfg, 42);
        assert_eq!(first.outputs, again.outputs);
        assert_eq!(first.decisions, again.decisions);
        assert_eq!(first.outputs, fresh.outputs);
        assert_eq!(first.decisions, fresh.decisions);
    }
}
