//! A persistent worker pool with scoped task spawning.
//!
//! The threaded executor used to spawn one OS thread per chunk and a fresh
//! scoped thread per replica batch — `chunks ≫ cores` configurations (the
//! paper sweeps up to 28×4 chunks) oversubscribed the OS scheduler and paid
//! thread-creation latency on the commit path. [`WorkerPool`] replaces that
//! shape: a fixed set of persistent workers (default
//! [`default_workers`] = available parallelism) drains a two-ended job
//! queue, and chunks/replicas/reruns become queued tasks.
//!
//! # Scoped API
//!
//! [`WorkerPool::scope`] mirrors `std::thread::scope`: tasks spawned inside
//! the scope may borrow from the enclosing environment (`'env`), and
//! `scope` does not return until every spawned task has finished. This is
//! what lets the runtime share read-only replay inputs by reference instead
//! of cloning them into each task.
//!
//! # Queue discipline
//!
//! [`PoolScope::spawn`] enqueues on the normal lane;
//! [`PoolScope::spawn_urgent`] on a separate urgent lane that workers
//! always drain first. The executor uses the urgent lane for
//! commit-critical work (replica replay, aborted-chunk reruns) so it is
//! never stuck behind a long tail of not-yet-needed speculative chunks.
//! Both lanes are FIFO among themselves: two urgent tasks run in the
//! order they were spawned (a front-pushed single queue would reverse
//! them, running a later rerun segment before an earlier replica batch).
//!
//! # Non-blocking jobs
//!
//! Pool jobs must never block waiting on *another pool job's* completion:
//! with fewer workers than chunks, a job parked on a channel would hold a
//! worker hostage and can deadlock the whole run. The pooled executor is
//! structured so every job computes, sends its result, and exits; all
//! waiting happens on the coordinator thread (which is *not* a pool
//! worker).
//!
//! # Failure semantics
//!
//! A panicking task **poisons its scope**: the first panic payload is
//! stashed, every queued-but-not-yet-started task of that scope is
//! skipped (its closure is dropped unrun, so channel senders it owns
//! disconnect promptly), and the scope re-raises the original payload as
//! soon as in-flight tasks drain — fail-fast instead of running a long
//! tail of doomed work. Poisoning is per scope; the pool itself stays
//! healthy for later scopes.
//!
//! Separately, the fault plane ([`crate::fault`]) can *doom* the worker
//! running the current job: the worker finishes that job, then exits,
//! degrading the pool to fewer workers. When the last worker dies an
//! emergency replacement is spawned, so the pool always drains its queue
//! — ultimately sequentially, on one surviving worker.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of queued work. Jobs are type-erased and `'static`; the scoped
/// lifetime is upheld by [`WorkerPool::scope`] (see the safety comment in
/// [`PoolScope::enqueue`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool's shared state: the job queue and shutdown flag behind one
/// mutex, plus a condvar workers park on when the queue is empty.
struct Shared {
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    /// Workers currently alive (doomed workers decrement on exit).
    live: AtomicUsize,
}

struct QueueState {
    /// Normal lane (speculative chunk tasks), FIFO.
    jobs: VecDeque<Job>,
    /// Urgent lane (replicas, reruns), FIFO among urgent tasks and
    /// drained before the normal lane.
    urgent: VecDeque<Job>,
    shutdown: bool,
}

/// Default pool width: the host's available parallelism (1 if unknown).
pub fn default_workers() -> usize {
    // stats-analyzer: allow(ND009): pool width sizes the executor only; commit/abort decisions are proven width-independent by the model checker
    std::thread::available_parallelism().map_or(1, usize::from)
}

// stats-analyzer: allow(ND004): the doom flag marks the *executor thread* for teardown; it carries no workload state across chunks
thread_local! {
    /// Set by [`doom_current_worker`]; checked by the worker loop after
    /// every job.
    // stats-analyzer: allow(ND004): a bool latch on the worker thread itself, not workload state
    static DOOMED: Cell<bool> = const { Cell::new(false) };
}

/// Doom the pool worker running the current job: it finishes the job,
/// then exits (see the module docs on failure semantics). A no-op on
/// threads that are not pool workers — the flag is only ever read by
/// [`worker_loop`].
pub fn doom_current_worker() {
    DOOMED.with(|d| d.set(true));
}

/// A fixed-size pool of persistent worker threads draining a two-ended
/// job queue. Construct once, reuse across runs; dropping the pool joins
/// all workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` persistent threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                urgent: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            live: AtomicUsize::new(workers),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stats-pool-{i}"))
                    .spawn(move || {
                        // Tag the thread for the wall-clock profiler so
                        // its spans land in worker shard `i`; the label
                        // is observability-only and is never read by
                        // protocol logic.
                        stats_telemetry::profiler::register_worker(i);
                        worker_loop(shared, i)
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// A pool sized by [`default_workers`].
    pub fn with_default_workers() -> Self {
        WorkerPool::new(default_workers())
    }

    /// The process-wide shared pool, sized by [`default_workers`] and
    /// created on first use.
    ///
    /// # Lifetime rule
    ///
    /// Entry points that don't take an explicit pool (e.g.
    /// `run_threaded_observed`) borrow this one instead of constructing a
    /// throwaway pool per call — pool construction spawns OS threads, and
    /// paying that on every run dwarfs the work of small runs. The shared
    /// pool is never dropped: its workers park on a condvar when idle
    /// (zero CPU) and the OS reclaims them at process exit. Callers that
    /// need a *specific* width (CLI `--workers`, scaling benches) should
    /// build one `WorkerPool::new(n)` per invocation and thread it through
    /// the `*_on` entry points; never construct a pool inside a per-run
    /// helper.
    pub fn shared() -> &'static WorkerPool {
        static SHARED: std::sync::OnceLock<WorkerPool> = std::sync::OnceLock::new();
        SHARED.get_or_init(WorkerPool::with_default_workers)
    }

    /// Number of worker threads the pool was configured with.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker threads currently alive. Equals [`WorkerPool::workers`]
    /// until injected worker-death faults doom some; never drops below
    /// one (the emergency replacement).
    pub fn live_workers(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Run `f` with a [`PoolScope`] through which tasks borrowing from the
    /// enclosing environment can be spawned onto the pool. Returns once
    /// `f` *and every spawned task* have finished, so borrows handed to
    /// tasks are valid for their whole execution (the `std::thread::scope`
    /// contract).
    ///
    /// # Panics
    ///
    /// If a spawned task panics, the scope is poisoned: queued tasks
    /// that have not started yet are skipped (fail-fast), in-flight
    /// tasks drain, and the *original* panic payload is resumed here;
    /// if `f` itself panics, that panic is resumed (task panics take
    /// precedence, matching the order in which the work actually
    /// failed). Poisoning does not outlive the scope — the pool is
    /// reusable afterwards.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> R,
    {
        let scope = PoolScope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            _scope: PhantomData,
            _env: PhantomData,
        };
        // stats-analyzer: allow(ND011): the scope body is the caller's workload code; its determinism is enforced at the call sites, not here
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait for every task — on the panic path too, or borrows of 'env
        // data could dangle while tasks are still running.
        scope.state.wait_idle();
        if let Some(payload) = scope.state.take_panic() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool mutex");
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.workers.drain(..) {
            // A worker that panicked already stashed the payload with the
            // owning scope; joining here must not double-panic in Drop.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    DOOMED.with(|d| d.set(false));
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool mutex");
            loop {
                if let Some(job) = q.urgent.pop_front().or_else(|| q.jobs.pop_front()) {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_ready.wait(q).expect("pool mutex");
            }
        };
        // stats-analyzer: allow(ND011): jobs are opaque boxed closures by design; determinism is enforced where tasks are spawned, not in the drain loop
        job();
        if DOOMED.with(|d| d.get()) {
            worker_death(shared, index);
            return;
        }
    }
}

/// Tear down a doomed worker: degrade the pool to fewer workers, and when
/// this was the last one, hand the slot to an emergency replacement so
/// the queue always keeps draining (sequentially, in the limit). `live`
/// never reads zero: the last worker's slot transfers to the replacement
/// without ever being decremented. The replacement is detached — it holds
/// its own `Arc<Shared>` and exits on shutdown.
fn worker_death(shared: Arc<Shared>, index: usize) {
    loop {
        let live = shared.live.load(Ordering::Acquire);
        if live > 1 {
            if shared
                .live
                .compare_exchange(live, live - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            continue;
        }
        let respawn = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("stats-pool-{index}-revive"))
            .spawn(move || {
                stats_telemetry::profiler::register_worker(index);
                worker_loop(respawn, index)
            });
        if spawned.is_err() {
            // Could not replace the last worker: keep draining on this
            // thread instead of leaving the pool dead.
            DOOMED.with(|d| d.set(false));
            worker_loop(shared, index);
        }
        return;
    }
}

/// Per-scope bookkeeping: outstanding task count, completion condvar,
/// the first panic payload raised by a task, and the poison flag that
/// makes later queued tasks fail fast.
#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    poisoned: AtomicBool,
}

impl ScopeState {
    fn task_started(&self) {
        *self.pending.lock().expect("scope mutex") += 1;
    }

    fn task_finished(&self) {
        let mut pending = self.pending.lock().expect("scope mutex");
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut pending = self.pending.lock().expect("scope mutex");
        while *pending > 0 {
            pending = self.all_done.wait(pending).expect("scope mutex");
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("scope mutex");
        if slot.is_none() {
            *slot = Some(payload);
        }
        // Publish after stashing the payload so a skipper observing the
        // flag can rely on `take_panic` finding something to re-raise.
        self.poisoned.store(true, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().expect("scope mutex").take()
    }
}

/// Handle for spawning environment-borrowing tasks onto a [`WorkerPool`];
/// see [`WorkerPool::scope`]. `'scope` is the region in which tasks run,
/// `'env` the enclosing borrows (both invariant, as in `std::thread::Scope`).
pub struct PoolScope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    state: Arc<ScopeState>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope")
            .field("workers", &self.pool.workers())
            .finish()
    }
}

impl<'scope> PoolScope<'scope, '_> {
    /// Enqueue `f` at the back of the pool's queue (normal lane).
    ///
    /// Tasks may themselves spawn further tasks through the same scope.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.enqueue(f, false);
    }

    /// Enqueue `f` on the urgent lane, which workers drain before the
    /// normal lane. The executor uses it for commit-critical work
    /// (replica replay, reruns) so it overtakes queued-but-not-yet-needed
    /// speculative chunks; urgent tasks run FIFO among themselves.
    pub fn spawn_urgent<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.enqueue(f, true);
    }

    /// Whether a task of this scope has panicked. Coordinators polling a
    /// rendezvous that a killed task will never signal use this to bail
    /// out instead of waiting forever.
    pub fn poisoned(&self) -> bool {
        self.state.is_poisoned()
    }

    fn enqueue<F>(&'scope self, f: F, urgent: bool)
    where
        F: FnOnce() + Send + 'scope,
    {
        // Count the task before it is visible to workers so `wait_idle`
        // can never observe a queued-but-uncounted task.
        self.state.task_started();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // Fail-fast: once a sibling panicked there is no point
            // running tasks that have not started — dropping `f` unrun
            // also drops any channel senders it owns, so coordinators
            // blocked on its result disconnect promptly.
            if !state.is_poisoned() {
                let result = catch_unwind(AssertUnwindSafe(f));
                if let Err(payload) = result {
                    state.record_panic(payload);
                }
            }
            state.task_finished();
        });
        // SAFETY: the closure borrows data that lives at least `'scope`.
        // `WorkerPool::scope` does not return before `wait_idle()` observes
        // every counted task finished — on the panic path as well — so the
        // erased borrows are valid for the job's entire execution. This is
        // the same lifetime-erasure argument `std::thread::scope` rests on.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        {
            let mut q = self.pool.shared.queue.lock().expect("pool mutex");
            if urgent {
                q.urgent.push_back(job);
            } else {
                q.jobs.push_back(job);
            }
        }
        self.pool.shared.work_ready.notify_one();
    }
}

/// A small free-list of state buffers, recycling allocations between
/// replica batches instead of hitting the allocator on the commit path.
///
/// Lifetime rule: a state may be recycled only once nothing reads it —
/// after the ordered comparison for its boundary has finished (see
/// DESIGN.md §9). `copy_of` refills a spare in place via `clone_from`,
/// which for heap-backed states (e.g. `Vec`-based benchmark states of
/// matching length) reuses the spare's allocation.
#[derive(Debug)]
pub struct StatePool<S> {
    spares: Mutex<Vec<S>>,
    cap: usize,
    /// Most spares ever held at once (relaxed: a monotone watermark).
    high_water: AtomicUsize,
    /// Buffers abandoned by killed tasks (see [`StatePool::note_leak`]).
    leaked: AtomicUsize,
}

impl<S: Clone> StatePool<S> {
    /// A pool retaining at most `cap` spare states.
    pub fn with_capacity(cap: usize) -> Self {
        StatePool {
            spares: Mutex::new(Vec::new()),
            cap,
            high_water: AtomicUsize::new(0),
            leaked: AtomicUsize::new(0),
        }
    }

    /// A copy of `src`, refilling a recycled spare when one is available.
    pub fn copy_of(&self, src: &S) -> S {
        let spare = self.spares.lock().expect("state pool mutex").pop();
        match spare {
            Some(mut s) => {
                s.clone_from(src);
                s
            }
            None => src.clone(),
        }
    }

    /// Return a dead state's buffer to the pool (dropped if full).
    pub fn recycle(&self, state: S) {
        let mut spares = self.spares.lock().expect("state pool mutex");
        if spares.len() < self.cap {
            spares.push(state);
            self.high_water.fetch_max(spares.len(), Ordering::Relaxed);
        }
    }

    /// Number of spare buffers currently held.
    pub fn len(&self) -> usize {
        self.spares.lock().expect("state pool mutex").len()
    }

    /// Whether the free-list is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spare buffers currently held (alias kept for callers
    /// predating [`StatePool::len`]).
    pub fn spares(&self) -> usize {
        self.len()
    }

    /// The most spares ever held at once: the pool's memory high-water
    /// mark, bounded by its capacity.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Record that a buffer checked out of the pool was abandoned by a
    /// killed task. The buffer itself dies with the task's closure —
    /// leaked-and-counted, never recycled, so a later `copy_of` can
    /// never hand out a state an unfinished task still aliases.
    pub fn note_leak(&self) {
        self.leaked.fetch_add(1, Ordering::Relaxed);
    }

    /// Buffers recorded by [`StatePool::note_leak`].
    pub fn leaked(&self) -> usize {
        self.leaked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks_and_waits() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..100 {
                scope.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_borrow_the_environment() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..64).collect();
        let sum = AtomicUsize::new(0);
        pool.scope(|scope| {
            for half in data.chunks(32) {
                scope.spawn(|| {
                    let s: u64 = half.iter().sum();
                    sum.fetch_add(s as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed) as u64, data.iter().sum::<u64>());
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(|| {
                for _ in 0..10 {
                    scope.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn urgent_tasks_overtake_queued_ones() {
        // One worker, held busy while the queue fills; the urgent task
        // enqueued last must run before the normal tasks enqueued first.
        let pool = WorkerPool::new(1);
        let order = Mutex::new(Vec::new());
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        pool.scope(|scope| {
            let g = Arc::clone(&gate);
            scope.spawn(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
            for i in 0..3 {
                let order = &order;
                scope.spawn(move || order.lock().unwrap().push(format!("normal-{i}")));
            }
            let order = &order;
            scope.spawn_urgent(move || order.lock().unwrap().push("urgent".to_string()));
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        assert_eq!(order.lock().unwrap()[0], "urgent");
    }

    #[test]
    fn urgent_lane_is_fifo_among_urgent_tasks() {
        // Regression: the urgent lane used to be a push_front onto the
        // shared queue, so several urgent tasks ran in *reverse* spawn
        // order — an overlapped rerun's segment 1 could be dispatched
        // before a replica batch spawned earlier. With a worker held
        // busy while three urgent tasks queue up, they must run in
        // spawn order, all still ahead of any normal task.
        let pool = WorkerPool::new(1);
        let order = Mutex::new(Vec::new());
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        pool.scope(|scope| {
            let g = Arc::clone(&gate);
            scope.spawn(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
            let order = &order;
            scope.spawn(move || order.lock().unwrap().push("normal".to_string()));
            for i in 0..3 {
                scope.spawn_urgent(move || order.lock().unwrap().push(format!("urgent-{i}")));
            }
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        assert_eq!(
            *order.lock().unwrap(),
            vec!["urgent-0", "urgent-1", "urgent-2", "normal"]
        );
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = WorkerPool::new(2);
        for round in 0..5 {
            let hits = AtomicUsize::new(0);
            pool.scope(|scope| {
                for _ in 0..=round {
                    scope.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), round + 1);
        }
    }

    #[test]
    fn task_panic_fails_fast_with_original_payload() {
        // Regression: panic propagation used to surface only after the
        // scope ran every queued task to completion. With one worker the
        // panicking task runs first and must poison the scope: the eight
        // queued survivors are skipped, and the scope re-raises the
        // *original* payload.
        let pool = WorkerPool::new(1);
        let survivors = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&survivors);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    let s = Arc::clone(&s2);
                    scope.spawn(move || {
                        s.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.expect_err("scope must re-raise the task panic");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"task boom"),
            "the original payload must surface, not a secondary error"
        );
        assert_eq!(
            survivors.load(Ordering::Relaxed),
            0,
            "queued tasks must be skipped once the scope is poisoned"
        );
    }

    #[test]
    fn recovered_panic_does_not_poison_later_scopes() {
        let pool = WorkerPool::new(2);
        for round in 0..3 {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|scope| {
                    scope.spawn(|| panic!("boom {round}"));
                });
            }));
            assert!(result.is_err());
            // Poisoning is per scope: the pool immediately runs clean
            // work again, and a fresh scope reports unpoisoned.
            let ok = AtomicUsize::new(0);
            pool.scope(|scope| {
                assert!(!scope.poisoned());
                for _ in 0..4 {
                    scope.spawn(|| {
                        ok.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(ok.load(Ordering::Relaxed), 4);
        }
    }

    /// A doomed worker exits shortly *after* its job finishes; give the
    /// teardown a moment before asserting the live count.
    fn wait_live(pool: &WorkerPool, expect: usize) {
        for _ in 0..2_000 {
            if pool.live_workers() == expect {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pool.live_workers(), expect);
    }

    #[test]
    fn doomed_workers_degrade_then_revive_at_one() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.live_workers(), 2);
        // Kill one worker: the pool degrades and keeps working.
        pool.scope(|scope| {
            scope.spawn(doom_current_worker);
        });
        wait_live(&pool, 1);
        // Kill the survivor: an emergency replacement takes over, so the
        // pool still drains (sequentially) and never reads zero.
        let hits = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(doom_current_worker);
            for _ in 0..16 {
                scope.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        assert_eq!(pool.live_workers(), 1);
    }

    #[test]
    fn state_pool_counts_leaks_without_recycling() {
        let pool: StatePool<Vec<u64>> = StatePool::with_capacity(4);
        let a = pool.copy_of(&vec![1, 2, 3]);
        // A killed task abandons its buffer: counted, never recycled, so
        // no later checkout can alias it.
        drop(a);
        pool.note_leak();
        assert_eq!(pool.leaked(), 1);
        assert_eq!(pool.spares(), 0, "a leaked buffer must not reappear");
        let b = pool.copy_of(&vec![7]);
        assert_eq!(b, vec![7]);
        pool.recycle(b);
        assert_eq!(pool.spares(), 1);
        assert_eq!(pool.leaked(), 1, "recycling is independent of leaks");
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
        assert!(WorkerPool::with_default_workers().workers() >= 1);
    }

    #[test]
    fn state_pool_recycles_buffers() {
        let pool: StatePool<Vec<u64>> = StatePool::with_capacity(2);
        let src = vec![1, 2, 3];
        let a = pool.copy_of(&src);
        assert_eq!(a, src);
        pool.recycle(a);
        assert_eq!(pool.spares(), 1);
        let b = pool.copy_of(&vec![9, 9]);
        assert_eq!(b, vec![9, 9]);
        assert_eq!(pool.spares(), 0);
        // Capacity bounds retained spares.
        pool.recycle(vec![1]);
        pool.recycle(vec![2]);
        pool.recycle(vec![3]);
        assert_eq!(pool.spares(), 2);
    }
}
