//! A persistent worker pool with scoped task spawning.
//!
//! The threaded executor used to spawn one OS thread per chunk and a fresh
//! scoped thread per replica batch — `chunks ≫ cores` configurations (the
//! paper sweeps up to 28×4 chunks) oversubscribed the OS scheduler and paid
//! thread-creation latency on the commit path. [`WorkerPool`] replaces that
//! shape: a fixed set of persistent workers (default
//! [`default_workers`] = available parallelism) drains a two-ended job
//! queue, and chunks/replicas/reruns become queued tasks.
//!
//! # Scoped API
//!
//! [`WorkerPool::scope`] mirrors `std::thread::scope`: tasks spawned inside
//! the scope may borrow from the enclosing environment (`'env`), and
//! `scope` does not return until every spawned task has finished. This is
//! what lets the runtime share read-only replay inputs by reference instead
//! of cloning them into each task.
//!
//! # Queue discipline
//!
//! [`PoolScope::spawn`] enqueues on the normal lane;
//! [`PoolScope::spawn_urgent`] on a separate urgent lane that workers
//! always drain first. The executor uses the urgent lane for
//! commit-critical work (replica replay, aborted-chunk reruns) so it is
//! never stuck behind a long tail of not-yet-needed speculative chunks.
//! Both lanes are FIFO among themselves: two urgent tasks run in the
//! order they were spawned (a front-pushed single queue would reverse
//! them, running a later rerun segment before an earlier replica batch).
//!
//! # Non-blocking jobs
//!
//! Pool jobs must never block waiting on *another pool job's* completion:
//! with fewer workers than chunks, a job parked on a channel would hold a
//! worker hostage and can deadlock the whole run. The pooled executor is
//! structured so every job computes, sends its result, and exits; all
//! waiting happens on the coordinator thread (which is *not* a pool
//! worker).

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of queued work. Jobs are type-erased and `'static`; the scoped
/// lifetime is upheld by [`WorkerPool::scope`] (see the safety comment in
/// [`PoolScope::enqueue`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool's shared state: the job queue and shutdown flag behind one
/// mutex, plus a condvar workers park on when the queue is empty.
struct Shared {
    queue: Mutex<QueueState>,
    work_ready: Condvar,
}

struct QueueState {
    /// Normal lane (speculative chunk tasks), FIFO.
    jobs: VecDeque<Job>,
    /// Urgent lane (replicas, reruns), FIFO among urgent tasks and
    /// drained before the normal lane.
    urgent: VecDeque<Job>,
    shutdown: bool,
}

/// Default pool width: the host's available parallelism (1 if unknown).
pub fn default_workers() -> usize {
    // stats-analyzer: allow(ND009): pool width sizes the executor only; commit/abort decisions are proven width-independent by the model checker
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A fixed-size pool of persistent worker threads draining a two-ended
/// job queue. Construct once, reuse across runs; dropping the pool joins
/// all workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` persistent threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                urgent: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stats-pool-{i}"))
                    .spawn(move || {
                        // Tag the thread for the wall-clock profiler so
                        // its spans land in worker shard `i`; the label
                        // is observability-only and is never read by
                        // protocol logic.
                        stats_telemetry::profiler::register_worker(i);
                        worker_loop(&shared)
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// A pool sized by [`default_workers`].
    pub fn with_default_workers() -> Self {
        WorkerPool::new(default_workers())
    }

    /// The process-wide shared pool, sized by [`default_workers`] and
    /// created on first use.
    ///
    /// # Lifetime rule
    ///
    /// Entry points that don't take an explicit pool (e.g.
    /// `run_threaded_observed`) borrow this one instead of constructing a
    /// throwaway pool per call — pool construction spawns OS threads, and
    /// paying that on every run dwarfs the work of small runs. The shared
    /// pool is never dropped: its workers park on a condvar when idle
    /// (zero CPU) and the OS reclaims them at process exit. Callers that
    /// need a *specific* width (CLI `--workers`, scaling benches) should
    /// build one `WorkerPool::new(n)` per invocation and thread it through
    /// the `*_on` entry points; never construct a pool inside a per-run
    /// helper.
    pub fn shared() -> &'static WorkerPool {
        static SHARED: std::sync::OnceLock<WorkerPool> = std::sync::OnceLock::new();
        SHARED.get_or_init(WorkerPool::with_default_workers)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run `f` with a [`PoolScope`] through which tasks borrowing from the
    /// enclosing environment can be spawned onto the pool. Returns once
    /// `f` *and every spawned task* have finished, so borrows handed to
    /// tasks are valid for their whole execution (the `std::thread::scope`
    /// contract).
    ///
    /// # Panics
    ///
    /// If a spawned task panics, the panic is captured and resumed here
    /// after all tasks have drained; if `f` itself panics, that panic is
    /// resumed (task panics take precedence, matching the order in which
    /// the work actually failed).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> R,
    {
        let scope = PoolScope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            _scope: PhantomData,
            _env: PhantomData,
        };
        // stats-analyzer: allow(ND011): the scope body is the caller's workload code; its determinism is enforced at the call sites, not here
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait for every task — on the panic path too, or borrows of 'env
        // data could dangle while tasks are still running.
        scope.state.wait_idle();
        if let Some(payload) = scope.state.take_panic() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool mutex");
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.workers.drain(..) {
            // A worker that panicked already stashed the payload with the
            // owning scope; joining here must not double-panic in Drop.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool mutex");
            loop {
                if let Some(job) = q.urgent.pop_front().or_else(|| q.jobs.pop_front()) {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_ready.wait(q).expect("pool mutex");
            }
        };
        // stats-analyzer: allow(ND011): jobs are opaque boxed closures by design; determinism is enforced where tasks are spawned, not in the drain loop
        job();
    }
}

/// Per-scope bookkeeping: outstanding task count, completion condvar, and
/// the first panic payload raised by a task.
#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn task_started(&self) {
        *self.pending.lock().expect("scope mutex") += 1;
    }

    fn task_finished(&self) {
        let mut pending = self.pending.lock().expect("scope mutex");
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut pending = self.pending.lock().expect("scope mutex");
        while *pending > 0 {
            pending = self.all_done.wait(pending).expect("scope mutex");
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("scope mutex");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().expect("scope mutex").take()
    }
}

/// Handle for spawning environment-borrowing tasks onto a [`WorkerPool`];
/// see [`WorkerPool::scope`]. `'scope` is the region in which tasks run,
/// `'env` the enclosing borrows (both invariant, as in `std::thread::Scope`).
pub struct PoolScope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    state: Arc<ScopeState>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope")
            .field("workers", &self.pool.workers())
            .finish()
    }
}

impl<'scope> PoolScope<'scope, '_> {
    /// Enqueue `f` at the back of the pool's queue (normal lane).
    ///
    /// Tasks may themselves spawn further tasks through the same scope.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.enqueue(f, false);
    }

    /// Enqueue `f` on the urgent lane, which workers drain before the
    /// normal lane. The executor uses it for commit-critical work
    /// (replica replay, reruns) so it overtakes queued-but-not-yet-needed
    /// speculative chunks; urgent tasks run FIFO among themselves.
    pub fn spawn_urgent<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.enqueue(f, true);
    }

    fn enqueue<F>(&'scope self, f: F, urgent: bool)
    where
        F: FnOnce() + Send + 'scope,
    {
        // Count the task before it is visible to workers so `wait_idle`
        // can never observe a queued-but-uncounted task.
        self.state.task_started();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                state.record_panic(payload);
            }
            state.task_finished();
        });
        // SAFETY: the closure borrows data that lives at least `'scope`.
        // `WorkerPool::scope` does not return before `wait_idle()` observes
        // every counted task finished — on the panic path as well — so the
        // erased borrows are valid for the job's entire execution. This is
        // the same lifetime-erasure argument `std::thread::scope` rests on.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        {
            let mut q = self.pool.shared.queue.lock().expect("pool mutex");
            if urgent {
                q.urgent.push_back(job);
            } else {
                q.jobs.push_back(job);
            }
        }
        self.pool.shared.work_ready.notify_one();
    }
}

/// A small free-list of state buffers, recycling allocations between
/// replica batches instead of hitting the allocator on the commit path.
///
/// Lifetime rule: a state may be recycled only once nothing reads it —
/// after the ordered comparison for its boundary has finished (see
/// DESIGN.md §9). `copy_of` refills a spare in place via `clone_from`,
/// which for heap-backed states (e.g. `Vec`-based benchmark states of
/// matching length) reuses the spare's allocation.
#[derive(Debug)]
pub struct StatePool<S> {
    spares: Mutex<Vec<S>>,
    cap: usize,
    /// Most spares ever held at once (relaxed: a monotone watermark).
    high_water: AtomicUsize,
}

impl<S: Clone> StatePool<S> {
    /// A pool retaining at most `cap` spare states.
    pub fn with_capacity(cap: usize) -> Self {
        StatePool {
            spares: Mutex::new(Vec::new()),
            cap,
            high_water: AtomicUsize::new(0),
        }
    }

    /// A copy of `src`, refilling a recycled spare when one is available.
    pub fn copy_of(&self, src: &S) -> S {
        let spare = self.spares.lock().expect("state pool mutex").pop();
        match spare {
            Some(mut s) => {
                s.clone_from(src);
                s
            }
            None => src.clone(),
        }
    }

    /// Return a dead state's buffer to the pool (dropped if full).
    pub fn recycle(&self, state: S) {
        let mut spares = self.spares.lock().expect("state pool mutex");
        if spares.len() < self.cap {
            spares.push(state);
            self.high_water.fetch_max(spares.len(), Ordering::Relaxed);
        }
    }

    /// Number of spare buffers currently held.
    pub fn len(&self) -> usize {
        self.spares.lock().expect("state pool mutex").len()
    }

    /// Whether the free-list is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spare buffers currently held (alias kept for callers
    /// predating [`StatePool::len`]).
    pub fn spares(&self) -> usize {
        self.len()
    }

    /// The most spares ever held at once: the pool's memory high-water
    /// mark, bounded by its capacity.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks_and_waits() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..100 {
                scope.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_borrow_the_environment() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..64).collect();
        let sum = AtomicUsize::new(0);
        pool.scope(|scope| {
            for half in data.chunks(32) {
                scope.spawn(|| {
                    let s: u64 = half.iter().sum();
                    sum.fetch_add(s as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed) as u64, data.iter().sum::<u64>());
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(|| {
                for _ in 0..10 {
                    scope.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn urgent_tasks_overtake_queued_ones() {
        // One worker, held busy while the queue fills; the urgent task
        // enqueued last must run before the normal tasks enqueued first.
        let pool = WorkerPool::new(1);
        let order = Mutex::new(Vec::new());
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        pool.scope(|scope| {
            let g = Arc::clone(&gate);
            scope.spawn(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
            for i in 0..3 {
                let order = &order;
                scope.spawn(move || order.lock().unwrap().push(format!("normal-{i}")));
            }
            let order = &order;
            scope.spawn_urgent(move || order.lock().unwrap().push("urgent".to_string()));
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        assert_eq!(order.lock().unwrap()[0], "urgent");
    }

    #[test]
    fn urgent_lane_is_fifo_among_urgent_tasks() {
        // Regression: the urgent lane used to be a push_front onto the
        // shared queue, so several urgent tasks ran in *reverse* spawn
        // order — an overlapped rerun's segment 1 could be dispatched
        // before a replica batch spawned earlier. With a worker held
        // busy while three urgent tasks queue up, they must run in
        // spawn order, all still ahead of any normal task.
        let pool = WorkerPool::new(1);
        let order = Mutex::new(Vec::new());
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        pool.scope(|scope| {
            let g = Arc::clone(&gate);
            scope.spawn(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
            let order = &order;
            scope.spawn(move || order.lock().unwrap().push("normal".to_string()));
            for i in 0..3 {
                scope.spawn_urgent(move || order.lock().unwrap().push(format!("urgent-{i}")));
            }
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        assert_eq!(
            *order.lock().unwrap(),
            vec!["urgent-0", "urgent-1", "urgent-2", "normal"]
        );
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = WorkerPool::new(2);
        for round in 0..5 {
            let hits = AtomicUsize::new(0);
            pool.scope(|scope| {
                for _ in 0..=round {
                    scope.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), round + 1);
        }
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = WorkerPool::new(2);
        let survivors = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&survivors);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    let s = Arc::clone(&s2);
                    scope.spawn(move || {
                        s.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-raise the task panic");
        // Every non-panicking task still ran to completion before the
        // scope returned.
        assert_eq!(survivors.load(Ordering::Relaxed), 8);
        // The pool survives a panicked scope.
        let ok = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
        assert!(WorkerPool::with_default_workers().workers() >= 1);
    }

    #[test]
    fn state_pool_recycles_buffers() {
        let pool: StatePool<Vec<u64>> = StatePool::with_capacity(2);
        let src = vec![1, 2, 3];
        let a = pool.copy_of(&src);
        assert_eq!(a, src);
        pool.recycle(a);
        assert_eq!(pool.spares(), 1);
        let b = pool.copy_of(&vec![9, 9]);
        assert_eq!(b, vec![9, 9]);
        assert_eq!(pool.spares(), 0);
        // Capacity bounds retained spares.
        pool.recycle(vec![1]);
        pool.recycle(vec![2]);
        pool.recycle(vec![3]);
        assert_eq!(pool.spares(), 2);
    }
}
